"""Figure 8: IPC for 2/4/8-wide processors, base and optimized layouts.

One benchmark per pipeline width; each regenerates the corresponding
sub-figure (harmonic-mean IPC of the four fetch architectures over the
benchmark suite) and checks the paper's headline orderings.
"""

import pytest

from conftest import FIGURE_SUITE, write_result
from repro.experiments.figures import figure8_data, figure8_text
from repro.experiments.runner import run_matrix


def _run_width(width, sim_budget):
    return run_matrix(
        FIGURE_SUITE, widths=(width,),
        instructions=sim_budget["instructions"],
        warmup=sim_budget["warmup"],
        scale=sim_budget["scale"],
        jobs=sim_budget["jobs"],
    )


@pytest.mark.parametrize("width", [2, 4, 8])
def test_figure8(benchmark, width, sim_budget, results_dir):
    matrix = benchmark.pedantic(
        _run_width, args=(width, sim_budget), rounds=1, iterations=1,
    )
    text = figure8_text(matrix, FIGURE_SUITE, widths=(width,))
    write_result(results_dir, f"fig8_{width}wide", text)

    data = figure8_data(matrix, FIGURE_SUITE, widths=(width,))[width]
    for arch, per_layout in data.items():
        benchmark.extra_info[f"{arch}_base_ipc"] = round(per_layout[False], 3)
        benchmark.extra_info[f"{arch}_opt_ipc"] = round(per_layout[True], 3)

    # Shape assertions (scaled-down analogues of the paper's claims).
    if width == 2:
        # Fig 8a: little advantage to high-end front-ends on a narrow
        # pipe — the four engines bunch together.
        opt = [per[True] for per in data.values()]
        assert max(opt) / min(opt) < 1.25
    if width == 8:
        # Fig 8c: streams clearly beat the EV8 with optimized layouts
        # and stay within reach of the trace cache.
        assert data["stream"][True] >= data["ev8"][True] * 0.97
        assert data["stream"][True] >= data["trace"][True] * 0.85
    # Layout optimization never hurts on the harmonic mean.
    for arch, per_layout in data.items():
        assert per_layout[True] >= per_layout[False] * 0.9
