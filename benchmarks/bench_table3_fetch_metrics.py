"""Table 3: branch misprediction rate and fetch IPC, 8-wide processor.

Regenerates both halves of Table 3 (base and optimized layouts) over
the benchmark suite and asserts the orderings the paper reports.
"""

from conftest import FIGURE_SUITE, write_result
from repro.experiments.runner import run_matrix
from repro.experiments.tables import table3_text


def _run(sim_budget):
    return run_matrix(
        FIGURE_SUITE, widths=(8,),
        instructions=sim_budget["instructions"],
        warmup=sim_budget["warmup"],
        scale=sim_budget["scale"],
        jobs=sim_budget["jobs"],
    )


def _aggregate(matrix, arch, optimized):
    results = [matrix.get(arch, b, 8, optimized) for b in FIGURE_SUITE]
    branches = sum(r.branches for r in results)
    mispredicts = sum(r.mispredictions for r in results)
    fetched = sum(r.fetched_instructions for r in results)
    cycles = sum(r.fetch_cycles for r in results)
    return mispredicts / max(branches, 1), fetched / max(cycles, 1)


def test_table3(benchmark, sim_budget, results_dir):
    matrix = benchmark.pedantic(_run, args=(sim_budget,), rounds=1,
                                iterations=1)
    write_result(results_dir, "table3_fetch_metrics",
                 table3_text(matrix, FIGURE_SUITE))

    metrics = {
        (arch, opt): _aggregate(matrix, arch, opt)
        for arch in ("ev8", "ftb", "stream", "trace")
        for opt in (False, True)
    }
    for (arch, opt), (mispred, fipc) in metrics.items():
        layout = "opt" if opt else "base"
        benchmark.extra_info[f"{arch}_{layout}_mispred%"] = round(
            100 * mispred, 2)
        benchmark.extra_info[f"{arch}_{layout}_fetch_ipc"] = round(fipc, 2)

    # Paper's Table 3 orderings (optimized layouts):
    # fetch width — trace cache and streams above the EV8/FTB pair.
    assert metrics[("trace", True)][1] > metrics[("ftb", True)][1]
    assert metrics[("stream", True)][1] > metrics[("ftb", True)][1] * 0.98
    # base layouts: the trace cache dominates decisively.
    assert metrics[("trace", False)][1] > metrics[("stream", False)][1]
    # misprediction rate — the EV8's 2bcgskew trails the
    # stream predictor on optimized codes.
    assert (metrics[("stream", True)][0]
            <= metrics[("ev8", True)][0] * 1.1)
    # layout optimization must not degrade stream prediction.
    assert (metrics[("stream", True)][0]
            <= metrics[("stream", False)][0] * 1.25)
