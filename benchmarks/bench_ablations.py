"""Design-choice ablations the paper discusses.

* FTQ depth (§3.3): the FTQ buys predictor/cache rate decoupling.
* Selective trace storage (§4.1): storing purely sequential ("blue")
  traces wastes trace cache capacity.
* Partial matching (§4.1 footnote): the paper found it *hurts* with
  layout-optimized codes — we verify it at least does not help.
* Stream predictor cascade (§3.2): path correlation vs. a single
  address-indexed table.
* Layout statistics (§3.2): the not-taken alignment claim.
"""

import pytest

from conftest import write_result
from repro.experiments.ablations import (
    cascade_ablation,
    ftq_depth_sweep,
    trace_storage_ablation,
)
from repro.experiments.configs import simulate
from repro.isa.streams import stream_statistics
from repro.isa.trace import TraceWalker
from repro.isa.workloads import prepare_program, ref_trace_seed

BENCH = "gzip"


def test_ftq_depth(benchmark, sim_budget, results_dir):
    def run():
        out = {}
        for depth in (1, 4):
            from dataclasses import replace
            from repro.common.params import default_machine
            from repro.experiments.configs import build_processor
            program = prepare_program(BENCH, optimized=True,
                                      scale=sim_budget["scale"])
            base = default_machine(8)
            machine = replace(base, core=replace(base.core,
                                                 ftq_entries=depth))
            processor = build_processor(
                "stream", program, 8, machine=machine,
                trace_seed=ref_trace_seed(BENCH),
            )
            out[depth] = processor.run(
                sim_budget["instructions"], warmup=sim_budget["warmup"]
            ).ipc
        return out

    ipcs = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "ablation_ftq_depth",
                 ftq_depth_sweep(BENCH, (1, 2, 4, 8),
                                 instructions=sim_budget["instructions"],
                                 scale=sim_budget["scale"]))
    benchmark.extra_info.update(
        {f"ftq{k}_ipc": round(v, 3) for k, v in ipcs.items()}
    )
    # The 4-entry FTQ of Table 2 must not lose to a depth-1 queue.
    assert ipcs[4] >= ipcs[1] * 0.97


def test_selective_trace_storage(benchmark, sim_budget, results_dir):
    def run():
        program = prepare_program(BENCH, optimized=True,
                                  scale=sim_budget["scale"])
        out = {}
        for name, kwargs in (
            ("selective", dict(selective_storage=True)),
            ("store_all", dict(selective_storage=False)),
            ("partial", dict(selective_storage=True, partial_matching=True)),
        ):
            result = simulate(
                "trace", BENCH, width=8, optimized=True,
                instructions=sim_budget["instructions"],
                warmup=sim_budget["warmup"], scale=sim_budget["scale"],
                program=program, **kwargs,
            )
            stats = result.engine_stats
            hits = stats.get("tc_hits", 0)
            misses = stats.get("tc_misses", 0)
            out[name] = (result.ipc, hits / max(hits + misses, 1))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "ablation_trace_storage",
                 trace_storage_ablation(
                     BENCH, instructions=sim_budget["instructions"],
                     scale=sim_budget["scale"]))
    for name, (ipc, hit_rate) in results.items():
        benchmark.extra_info[f"{name}_ipc"] = round(ipc, 3)
        benchmark.extra_info[f"{name}_tc_hit"] = round(hit_rate, 3)

    # Selective storage must be at least as good as storing everything
    # (it frees capacity for the traces the I-cache cannot serve).
    assert results["selective"][0] >= results["store_all"][0] * 0.95
    # Partial matching must not help on optimized codes (paper footnote).
    assert results["partial"][0] <= results["selective"][0] * 1.05


def test_stream_cascade(benchmark, sim_budget, results_dir):
    from dataclasses import replace as dc_replace
    from repro.fetch.stream_predictor import StreamPredictorConfig

    def run():
        program = prepare_program(BENCH, optimized=True,
                                  scale=sim_budget["scale"])
        out = {}
        for name, config in (
            ("cascade", StreamPredictorConfig()),
            ("address_only", dc_replace(StreamPredictorConfig(),
                                        second_entries=4, second_assoc=1)),
        ):
            result = simulate(
                "stream", BENCH, width=8, optimized=True,
                instructions=sim_budget["instructions"],
                warmup=sim_budget["warmup"], scale=sim_budget["scale"],
                program=program, predictor_config=config,
            )
            out[name] = result.branch_misprediction_rate
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "ablation_stream_cascade",
                 cascade_ablation(BENCH,
                                  instructions=sim_budget["instructions"],
                                  scale=sim_budget["scale"]))
    benchmark.extra_info.update(
        {f"{k}_mispred": round(100 * v, 2) for k, v in rates.items()}
    )
    # Path correlation is where the loop-exit / overlapping-stream
    # accuracy comes from: removing it must not improve prediction.
    assert rates["cascade"] <= rates["address_only"] * 1.05


def test_layout_statistics(benchmark, sim_budget, results_dir):
    """§3.2: '~80% of conditional branch instances are not taken' after
    layout optimization, versus roughly half before."""

    def run():
        out = {}
        for optimized in (False, True):
            program = prepare_program(BENCH, optimized=optimized,
                                      scale=sim_budget["scale"])
            out[optimized] = stream_statistics(
                TraceWalker(program, ref_trace_seed(BENCH)),
                sim_budget["instructions"],
            )
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for optimized, s in stats.items():
        layout = "optimized" if optimized else "baseline"
        lines.append(
            f"{layout:10s} not-taken={1 - s['taken_fraction']:.2%} "
            f"avg stream={s['avg_stream_length']:.1f} "
            f"avg block={s['avg_block_length']:.1f}"
        )
    write_result(results_dir, "ablation_layout_stats", "\n".join(lines))

    benchmark.extra_info["base_not_taken"] = round(
        1 - stats[False]["taken_fraction"], 3)
    benchmark.extra_info["opt_not_taken"] = round(
        1 - stats[True]["taken_fraction"], 3)

    # Optimization must push conditionals decisively towards not-taken
    # and lengthen streams past the paper's 16-instruction average; the
    # absolute not-taken level varies with the sampled code at small
    # workload scales.
    assert (stats[True]["taken_fraction"]
            < 0.75 * stats[False]["taken_fraction"])
    assert stats[True]["avg_stream_length"] > 16.0
    assert (stats[True]["avg_stream_length"]
            > 1.4 * stats[False]["avg_stream_length"])
