"""Figure 7 / §3.4: instruction misalignment vs. cache line width.

The stream engine reads a single line per cycle; narrow lines split
streams across line boundaries and cut the effective fetch width.  The
paper adopts very wide lines (4x the pipe width) for exactly this
reason.  This benchmark sweeps the L1I line size and regenerates the
fetch-width curve.
"""

from dataclasses import replace

from conftest import write_result
from repro.common.params import CacheParams, default_machine
from repro.experiments.ablations import line_width_sweep
from repro.experiments.configs import build_processor
from repro.isa.workloads import prepare_program, ref_trace_seed

BENCH = "gzip"
LINES = (16, 32, 64, 128, 256)


def _sweep(sim_budget):
    program = prepare_program(BENCH, optimized=True,
                              scale=sim_budget["scale"])
    fetch_widths = {}
    for line_bytes in LINES:
        base = default_machine(8)
        machine = replace(
            base,
            memory=replace(
                base.memory,
                il1=CacheParams(64 * 1024, 2, line_bytes),
            ),
        )
        processor = build_processor(
            "stream", program, 8, machine=machine,
            trace_seed=ref_trace_seed(BENCH),
        )
        result = processor.run(sim_budget["instructions"],
                               warmup=sim_budget["warmup"])
        fetch_widths[line_bytes] = result.fetch_ipc
    return fetch_widths


def test_figure7_line_width(benchmark, sim_budget, results_dir):
    fetch_widths = benchmark.pedantic(_sweep, args=(sim_budget,),
                                      rounds=1, iterations=1)
    text = line_width_sweep(
        BENCH, LINES, instructions=sim_budget["instructions"],
        scale=sim_budget["scale"],
    )
    write_result(results_dir, "fig7_line_width", text)
    benchmark.extra_info.update(
        {f"line{k}B_fetch_ipc": round(v, 2) for k, v in fetch_widths.items()}
    )

    # Wider lines must widen fetch: the narrowest line pays heavy
    # misalignment; the paper's 128B line recovers most of it.
    assert fetch_widths[16] < fetch_widths[128]
    assert fetch_widths[128] >= fetch_widths[64] * 0.95
