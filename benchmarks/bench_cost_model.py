"""Table 1 (cost column): quantified state and complexity accounting.

Not a simulation benchmark — it times the (cheap) accounting and
asserts the structural cost claims of §3.1, writing the rendered table
alongside the other results.
"""

from conftest import write_result
from repro.experiments.cost_model import cost_comparison, cost_table_text


def test_cost_model(benchmark, results_dir):
    reports = benchmark.pedantic(cost_comparison, rounds=1, iterations=1)
    write_result(results_dir, "table1_cost_column", cost_table_text())

    by_name = {r.name: r for r in reports}
    for name, report in by_name.items():
        benchmark.extra_info[f"{name}_kib"] = round(report.total_kib, 1)

    # §3.1 structural claims.
    assert by_name["stream"].instruction_paths == 1
    assert by_name["stream"].predictors == 1
    assert by_name["stream"].special_stores == 0
    assert by_name["trace"].instruction_paths == 2
    assert by_name["trace"].predictors == 2
    # The trace cache is the most expensive engine overall.
    assert by_name["trace"].total_bits == max(
        r.total_bits for r in reports
    )
