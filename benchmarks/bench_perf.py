#!/usr/bin/env python
"""Simulator performance benchmark: the repo's perf trajectory anchor.

Measures three things:

* **simulated instructions per second** for each fetch engine (gzip,
  optimized layout, 8-wide) in both engine modes — ``accel`` (the
  exec-compiled kernels of :mod:`repro.accel`) and ``interp`` (the
  interpreted paths); results are bit-identical, only speed differs;
* **matrix wall-clock** for the default ``run_matrix`` perf workload
  (gzip + twolf, both layouts, all four engines, 100k instructions),
  serial and — when this host has more than one CPU — parallel, plus
  the **per-worker pool setup overhead** so "is jobs=N worth it here?"
  can be answered from the report, and the **per-job dispatch
  overhead** of the fault-tolerant pools (``repro.exec``) both paths
  now run through, so "did the fault machinery slow the fault-free
  path?" is answerable too;
* **service latency** through :mod:`repro.serve` — an in-process
  daemon on an ephemeral port answers the same one-cell matrix query
  cold (simulated) and warm (store-hit replay), so the report states
  what the wire protocol, admission and store probe cost on top of raw
  simulation (schema 5);
* **observability overhead** (schema 6): the per-cell cost of the
  disabled-mode ``repro.obs`` hook, stated as a fraction of the
  fastest quick cell in both engine modes, plus an on/off
  bit-identity check;
* **cluster dispatch overhead** (schema 7): a small matrix through
  :mod:`repro.cluster` against two in-process daemons, cold
  (simulated remotely) and warm (store-hit round trips), next to the
  same matrix run locally — what fleet dispatch costs per cell on top
  of the local pools;
* with ``--store DIR``, the artifact-store warm-vs-cold matrix.

The full run writes ``BENCH_perf.json`` at the repo root; that file is
committed and becomes the baseline every future PR is measured against.
``SEED_BASELINE`` pins the pre-optimization (seed) numbers and
``PR3_BASELINE`` the PR 3 (pre-accelerator) numbers measured on the
reference container, so the report states both the cumulative speedup
and the accelerator's contribution.  Reported speedups are normalized
by the calibration workload's drift, comparing code against code
rather than one machine epoch against another.

``--quick`` is the CI smoke mode: a few seconds of engine-only
measurement **in both engine modes**, compared against the committed
baseline's ``quick_engines`` (accel) and ``quick_engines_interp``
sections, plus the per-engine accel/interp ratio and the default-matrix
**chain hit rate** gated against the committed ``chain.floor`` (schema
4).  A regression of more than ``REGRESSION_TOLERANCE`` (30%) on any
engine in either mode — or a chain hit rate below the floor, or an
observability hook costing more than ``OBS_OVERHEAD_LIMIT`` (2%) of
the fastest cell, or results diverging with recording on vs off —
fails loudly (exit code 1).

``--store DIR`` measurements never feed the regression gate, and the
``--quick`` gate never touches a store — the gate always measures cold
simulation.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full run
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_perf.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_perf.py --store /tmp/bench-store
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.experiments.configs import ARCHITECTURES, build_processor  # noqa: E402
from repro.experiments.runner import run_matrix  # noqa: E402
from repro.isa.workloads import prepare_program, ref_trace_seed  # noqa: E402

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
)
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_perf.json")

#: The default run_matrix perf workload (see measure_matrix).
MATRIX_BENCHMARKS = ("gzip", "twolf")
MATRIX_INSTRUCTIONS = 100_000
MATRIX_SCALE = 0.5

#: Engine ips workload (see measure_engine_ips).
ENGINE_BENCHMARK = "gzip"
ENGINE_INSTRUCTIONS = 30_000
QUICK_INSTRUCTIONS = 8_000

#: Serve latency workload (see measure_serve_latency): one small cell,
#: so the warm request is dominated by service overhead, not payload.
SERVE_INSTRUCTIONS = 3_000

#: Fail --quick when any engine drops below baseline/1.3 (>30% slower).
REGRESSION_TOLERANCE = 1.30

#: Fail --quick when the disabled-mode observability hook costs more
#: than this fraction of even the *fastest* quick-mode cell.  The obs
#: layer instruments at cell boundaries only, so its per-cell cost is
#: a fixed few microseconds regardless of cell size; gating against
#: the quick workload's smallest cell is the strictest version of the
#: "near-zero on the hot path" contract.
OBS_OVERHEAD_LIMIT = 0.02

#: Default worker cap for the parallel matrix measurement.  Fork-server
#: pool setup costs a few hundred milliseconds per measurement; beyond
#: four workers the default matrix's per-worker share is too small for
#: more processes to help, and on a single-CPU host a pool is pure
#: overhead (run_matrix caps the effective worker count at cpu_count,
#: so jobs=1 there and the parallel measurement is skipped).
DEFAULT_JOBS = max(1, min(4, os.cpu_count() or 1))

#: Performance of the seed (pre-optimization) tree on the reference
#: container, measured with exactly the workloads and best-of-N
#: protocol below, together with the calibration workload's duration
#: in the same measurement epoch.  Pinned so the perf trajectory is
#: always reported relative to where it started.
SEED_BASELINE = {
    "engine_ips": {
        "ev8": 117_479,
        "ftb": 96_818,
        "stream": 85_939,
        "trace": 57_696,
    },
    "matrix_serial_seconds": 19.9,
    "calibration_seconds": 0.0889,
}

#: The PR 3 tree (persistent store, pre-accelerator) on the reference
#: container — the baseline the accelerator's ">= 1.5x engine
#: throughput" target is measured against.
PR3_BASELINE = {
    "engine_ips": {
        "ev8": 347_527,
        "ftb": 254_631,
        "stream": 292_124,
        "trace": 176_833,
    },
    "calibration_seconds": 0.07972,
}

#: The PR 4 tree (exec-compiled kernels, pre-chaining) on the reference
#: container — the baseline the chained-template scheme's ">= 1.15x
#: per-engine throughput" target is measured against.
PR4_BASELINE = {
    "engine_ips": {
        "ev8": 465_204,
        "ftb": 327_756,
        "stream": 398_402,
        "trace": 261_300,
    },
    "calibration_seconds": 0.08269,
}


def _best_of(reps, fn):
    best = None
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best


def _calibration_workload():
    """A fixed, simulator-independent interpreter workload (~100 ms).

    Timing it alongside the real measurements captures how fast the
    *machine* currently runs Python; the regression gate divides that
    drift out, so a globally slow or throttled host does not read as a
    simulator regression (a real hot-path regression does not slow
    this loop, so it still trips the gate).
    """
    d = {}
    acc = 0
    for i in range(600_000):
        k = (i * 2654435761) & 0xFFFF
        acc += d.get(k, 0)
        d[k] = acc & 0xFFFFFF
    return acc


def measure_calibration(reps: int = 3) -> float:
    return _best_of(reps, _calibration_workload)


def _measure_one_engine(program, arch: str, instructions: int,
                        reps: int, engine_mode: str = "accel") -> dict:
    def run_once():
        processor = build_processor(
            arch, program, 8,
            benchmark=ENGINE_BENCHMARK, optimized=True,
            trace_seed=ref_trace_seed(ENGINE_BENCHMARK),
            engine_mode=engine_mode,
        )
        processor.run(instructions)
    seconds = _best_of(reps, run_once)
    return {
        "instructions": instructions,
        "seconds": round(seconds, 4),
        "ips": round(instructions / seconds),
    }


#: The one engine-measurement program image, linked lazily and shared
#: by the warm pass and every engine measurement (full and quick, both
#: modes).  Sharing one image matters beyond link time: the schedule-
#: template store is keyed weakly by Program identity, so only
#: measurements over the *same* image ride the same warm templates.
_ENGINE_PROGRAM = None


def _engine_program():
    global _ENGINE_PROGRAM
    if _ENGINE_PROGRAM is None:
        _ENGINE_PROGRAM = prepare_program(ENGINE_BENCHMARK, optimized=True,
                                          scale=MATRIX_SCALE)
    return _ENGINE_PROGRAM


def measure_engine_ips(instructions: int, reps: int = 2,
                       engine_mode: str = "accel") -> dict:
    """Simulated-instructions-per-second per engine (gzip, opt, 8-wide)."""
    program = _engine_program()
    return {
        arch: _measure_one_engine(program, arch, instructions, reps,
                                  engine_mode=engine_mode)
        for arch in ARCHITECTURES
    }


def warm_shared_caches(instructions: int) -> None:
    """Run every engine once so shared pure caches reach steady state.

    Schedule templates, DOLC hash memos and trace records are shared
    across processors (they memoize pure functions), so whichever
    measurement runs *first* would otherwise pay their construction
    while later ones ride warm — skewing any accel-vs-interp
    comparison.  One explicit warm pass puts every subsequent
    measurement on the same fully-warm footing, which is also the
    steady state a real sweep runs in.
    """
    program = _engine_program()
    for arch in ARCHITECTURES:
        processor = build_processor(
            arch, program, 8,
            benchmark=ENGINE_BENCHMARK, optimized=True,
            trace_seed=ref_trace_seed(ENGINE_BENCHMARK),
            engine_mode="accel",
        )
        processor.run(instructions)


def _pool_noop() -> int:
    return os.getpid()


def _pool_identity(i: int) -> int:
    return i


def measure_worker_setup(jobs: int, reps: int = 3) -> float:
    """Wall-clock of spinning up (and draining) one worker pool.

    This is the fixed cost ``jobs=N`` must amortize before parallelism
    can win; reporting it explicitly makes "why is jobs=2 not faster
    here?" answerable from the report instead of a mystery.  Measured
    on the same :class:`~repro.exec.pool.ForkServerPool` that
    ``run_matrix`` dispatches through.
    """
    from repro.exec import ForkServerPool, Job

    from repro.experiments.runner import _worker_init

    def spin():
        with ForkServerPool(jobs, initializer=_worker_init) as pool:
            pool.run(_pool_noop, [Job(i) for i in range(jobs)])

    return _best_of(reps, spin)


def measure_pool_overhead(n_jobs: int = 200, reps: int = 3) -> dict:
    """Per-job bookkeeping cost of the fault-tolerant pools (µs/job).

    No-op jobs make the pools' own overhead — retry accounting, the
    dispatch loop, a pipe round-trip per job for the forked backend —
    the entire measurement.  Against a real simulation cell (tens of
    milliseconds at minimum) these must be noise; the report states
    them so "did the fault machinery slow the fault-free path?" is
    answerable by inspection.  The forked number includes the one-off
    pool spawn amortized over ``n_jobs``, matching how a sweep pays it.
    """
    from repro.exec import ForkServerPool, Job, SerialPool

    def serial():
        SerialPool().run(_pool_identity,
                         [Job(i, (i,)) for i in range(n_jobs)])

    serial_seconds = _best_of(reps, serial)

    def forked():
        with ForkServerPool(1) as pool:
            pool.run(_pool_identity, [Job(i, (i,)) for i in range(n_jobs)])

    forked_seconds = _best_of(reps, forked)
    return {
        "jobs": n_jobs,
        "serial_us_per_job": round(serial_seconds / n_jobs * 1e6, 1),
        "fork_us_per_job": round(forked_seconds / n_jobs * 1e6, 1),
    }


def measure_matrix(jobs: int, reps: int = 3) -> dict:
    """Wall-clock of the default perf matrix, serial and parallel.

    Best-of-``reps`` per path: single-shot wall-clock on a shared box
    is too noisy to anchor a regression gate on.  The parallel
    measurement runs only when it can possibly win — more than one CPU
    and ``jobs > 1`` — and always ships with the measured per-pool
    setup overhead so the serial/parallel gap is interpretable.
    """
    kwargs = dict(
        benchmarks=MATRIX_BENCHMARKS, widths=(8,),
        instructions=MATRIX_INSTRUCTIONS, scale=MATRIX_SCALE,
    )
    # benchmarks x layouts x widths x architectures
    cells = len(MATRIX_BENCHMARKS) * 2 * 1 * len(ARCHITECTURES)
    serial_seconds = _best_of(reps, lambda: run_matrix(**kwargs))
    effective_jobs = max(1, min(jobs, os.cpu_count() or 1, cells))
    row = {
        "benchmarks": list(MATRIX_BENCHMARKS),
        "instructions": MATRIX_INSTRUCTIONS,
        "scale": MATRIX_SCALE,
        "cells": cells,
        "jobs": jobs,
        "effective_jobs": effective_jobs,
        "serial_seconds": round(serial_seconds, 2),
    }
    if effective_jobs > 1:
        row["worker_setup_seconds"] = round(
            measure_worker_setup(effective_jobs), 3
        )
        row["parallel_seconds"] = round(
            _best_of(reps, lambda: run_matrix(**kwargs, jobs=jobs)), 2
        )
    else:
        # A pool on this host can only add overhead (run_matrix caps
        # workers at cpu_count); record why the measurement is absent.
        row["parallel_skipped"] = (
            f"single effective worker (cpu_count={os.cpu_count()}); "
            "a pool cannot beat the serial path here"
        )
    return row


def measure_chain_rates() -> dict:
    """Steady-state chain hit rates over the default perf matrix.

    Two serial, storeless, accel-mode passes over the default matrix:
    the first trains the shared per-image template stores and their
    transition tables (the equivalent of the first fraction of a long
    run), the second — measured from the per-cell ``result.extras``
    counters — reports the steady-state rate, which is the regime the
    chained-template scheme targets (the paper's streams replay the
    same short dynamic segments millions of times; a 100k-instruction
    cell spends its one cold pass mostly *installing* edges).
    Simulation is deterministic, so for a given code version these
    rates are too — the full run commits a floor a few points under its
    measurement and the ``--quick`` gate re-measures against it, so a
    refactor that silently knocks segments off the chained path fails
    loudly.
    """
    kwargs = dict(
        benchmarks=MATRIX_BENCHMARKS, widths=(8,),
        instructions=MATRIX_INSTRUCTIONS, scale=MATRIX_SCALE,
        engine_mode="accel",
    )
    run_matrix(**kwargs)  # training pass: install templates and edges
    matrix = run_matrix(**kwargs)
    segments = {}
    hits = {}
    for spec, res in matrix.results.items():
        x = res.extras
        segments[spec.arch] = segments.get(spec.arch, 0) + x["segments"]
        hits[spec.arch] = hits.get(spec.arch, 0) + x["chain_hits"]
    total_segments = sum(segments.values())
    total_hits = sum(hits.values())
    return {
        "benchmarks": list(MATRIX_BENCHMARKS),
        "instructions": MATRIX_INSTRUCTIONS,
        "scale": MATRIX_SCALE,
        "per_engine": {
            arch: round(hits[arch] / segments[arch], 4)
            for arch in sorted(segments)
        },
        "hit_rate": round(
            total_hits / total_segments if total_segments else 0.0, 4
        ),
    }


def measure_obs_hook(reps: int = 3, calls: int = 20_000) -> float:
    """Per-call seconds of the disabled-mode ``obs.observe_cell`` hook.

    This is the *entire* per-cell cost observability adds when no
    flight recorder is attached (the default): a handful of counter
    increments and one histogram observe.  Wall-clock A/B of whole
    runs cannot resolve a few microseconds against seconds of
    simulation, so the gate times the hook itself deterministically
    and divides by a measured cell duration instead.
    """
    from repro import obs

    program = _engine_program()
    processor = build_processor(
        "stream", program, 8,
        benchmark=ENGINE_BENCHMARK, optimized=True,
        trace_seed=ref_trace_seed(ENGINE_BENCHMARK),
    )
    result = processor.run(2_000)

    def hammer():
        for _ in range(calls):
            obs.observe_cell("accel", result, 0.01, 0.01)

    seconds = _best_of(reps, hammer)
    # The hammering inflated the core counters; zero them so a later
    # exposition of this process's registry reads clean.
    obs.reset_metrics()
    return seconds / calls


def check_obs_identity() -> bool:
    """Results must be bit-identical with recording on vs disabled.

    Two storeless runs of a tiny matrix: one with a flight recorder
    attached (events stream to disk), one under ``REPRO_OBS=0``.
    Observability is a window, never an input — any divergence here is
    a bug in the instrumentation, not noise.
    """
    import tempfile

    from repro import obs

    kwargs = dict(benchmarks=("gzip",), widths=(8,),
                  archs=("stream", "ev8"), layouts=(True,),
                  instructions=2_000, scale=0.3)
    root = tempfile.mkdtemp(prefix="bench-obs-")
    prior = os.environ.pop("REPRO_OBS", None)
    try:
        recorder = obs.sweep_recorder(os.path.join(root, "gate.events"))
        try:
            recorded = run_matrix(**kwargs)
        finally:
            if recorder is not None:
                obs.detach(recorder)
        os.environ["REPRO_OBS"] = "0"
        silent = run_matrix(**kwargs)
        return recorded.results == silent.results
    finally:
        if prior is None:
            os.environ.pop("REPRO_OBS", None)
        else:
            os.environ["REPRO_OBS"] = prior
        shutil.rmtree(root, ignore_errors=True)


def _obs_fractions(hook_seconds: float, engines_by_mode: dict) -> dict:
    """Hook cost as a fraction of each mode's fastest measured cell."""
    out = {}
    for mode, engines in engines_by_mode.items():
        fastest = min(row["seconds"] for row in engines.values())
        out[mode] = round(hook_seconds / fastest, 6)
    return out


def measure_serve_latency(reps: int = 5) -> dict:
    """Round-trip request latency through the experiment service.

    An in-process :class:`repro.serve.ExperimentServer` on an ephemeral
    port with a fresh throwaway store answers the same one-cell matrix
    query cold (simulated on first contact) and warm (pure store hit).
    The warm number is the service's overhead floor — connection setup,
    LDJSON framing, the admission probe and the result decode; the
    cold number adds one small simulation plus the artifact writes.
    The scheduler runs serially here so the cold number measures the
    service, not fork-pool spin-up (that cost is already reported as
    ``worker_setup_seconds``, and a long-lived daemon keeps its pool
    resident across requests anyway).  Informational only; never feeds
    the regression gate.
    """
    import tempfile

    from repro.serve import ExperimentServer, ServeClient

    root = tempfile.mkdtemp(prefix="bench-serve-")
    kwargs = dict(benchmarks=("gzip",), widths=(8,), archs=("stream",),
                  layouts=(True,), instructions=SERVE_INSTRUCTIONS,
                  warmup=SERVE_INSTRUCTIONS // 3, scale=MATRIX_SCALE)
    try:
        with ExperimentServer(store_root=os.path.join(root, "store"),
                              max_workers=1, use_fork_pool=False) as server:
            host, port = server.address
            client = ServeClient(host, port)
            ping_seconds = _best_of(reps, client.ping)
            t0 = time.perf_counter()
            client.run_matrix(**kwargs)
            cold_seconds = time.perf_counter() - t0
            warm_seconds = _best_of(
                reps, lambda: client.run_matrix(**kwargs)
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "instructions": SERVE_INSTRUCTIONS,
        "ping_ms": round(ping_seconds * 1e3, 2),
        "cold_ms": round(cold_seconds * 1e3, 1),
        "warm_ms": round(warm_seconds * 1e3, 2),
    }


def measure_cluster_latency(reps: int = 3) -> dict:
    """Per-cell dispatch overhead of the cluster pool vs local pools.

    Two in-process :class:`repro.serve.ExperimentServer` "nodes" on
    ephemeral ports with throwaway stores serve the same small matrix
    through ``run_matrix(cluster=...)`` cold (each node simulates its
    cells) and warm (pure store-hit round trips).  The same matrix is
    also run locally, so the report states what fleet dispatch —
    connection setup, one-cell framing, admission probes, result
    decode and ingest bookkeeping — costs per cell on top of the
    local serial pool.  Informational only; never feeds the
    regression gate.
    """
    import tempfile

    from repro.serve import ExperimentServer

    kwargs = dict(benchmarks=("gzip",), widths=(8,),
                  archs=("stream", "ev8"), layouts=(True,),
                  instructions=SERVE_INSTRUCTIONS,
                  warmup=SERVE_INSTRUCTIONS // 3, scale=MATRIX_SCALE)
    cells = 2
    local_seconds = _best_of(reps, lambda: run_matrix(**kwargs))
    root = tempfile.mkdtemp(prefix="bench-cluster-")
    try:
        with ExperimentServer(store_root=os.path.join(root, "a"),
                              max_workers=1,
                              use_fork_pool=False) as node_a, \
                ExperimentServer(store_root=os.path.join(root, "b"),
                                 max_workers=1,
                                 use_fork_pool=False) as node_b:
            fleet = ["%s:%d" % node_a.address, "%s:%d" % node_b.address]
            t0 = time.perf_counter()
            run_matrix(cluster=fleet, **kwargs)
            cold_seconds = time.perf_counter() - t0
            warm_seconds = _best_of(
                reps, lambda: run_matrix(cluster=fleet, **kwargs)
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "instructions": SERVE_INSTRUCTIONS,
        "cells": cells,
        "nodes": 2,
        "local_ms": round(local_seconds * 1e3, 1),
        "cold_ms": round(cold_seconds * 1e3, 1),
        "warm_ms": round(warm_seconds * 1e3, 2),
        # The marginal cost of sending one already-computed cell
        # through the fleet instead of reading it locally.
        "warm_ms_per_cell": round(warm_seconds / cells * 1e3, 2),
        "cold_overhead_ms_per_cell": round(
            (cold_seconds - local_seconds) / cells * 1e3, 1),
    }


def measure_remote_store_latency(reps: int = 3) -> dict:
    """Per-artifact latency of the federated store's three outcomes.

    One in-process daemon holds a fixed-size artifact; a
    :class:`~repro.store.remote.tiered.TieredStore` client measures
    what each read costs: a **local hit** (the artifact already landed
    in the local layer — the steady state), a **peer hit** (local
    miss, remote read-through fill: one round trip plus the base64
    decode, oid re-hash and atomic local put), and a **peer miss**
    (absent everywhere: one round trip that answers ``found: false``
    before the sweep recomputes).  Each peer-hit reading uses a fresh
    local root, since the first fill makes every later read local —
    that is the point of the tier.  Informational only; never feeds
    the regression gate.
    """
    import tempfile

    from repro.serve import ExperimentServer
    from repro.store.remote.tiered import TieredStore
    from repro.store.store import ArtifactStore

    payload = bytes(range(256)) * 256  # 64 KiB, deterministic
    fp = "fe" * 32
    absent_fp = "ab" * 32
    root = tempfile.mkdtemp(prefix="bench-remote-store-")
    tiers = []
    try:
        peer_root = os.path.join(root, "peer")
        with ExperimentServer(store_root=peer_root, max_workers=1,
                              use_fork_pool=False) as server:
            address = "%s:%d" % server.address
            ArtifactStore(peer_root).put("result", fp, payload,
                                         {"bench": True})

            def _tier(name):
                tier = TieredStore(os.path.join(root, name), address,
                                   replicate_async=False)
                tiers.append(tier)
                return tier

            probe = _tier("tier-miss")
            # Absent on both sides: every call pays the round trip.
            miss_seconds = _best_of(
                reps, lambda: probe.get("result", absent_fp))

            fill_times = []
            for i in range(reps):
                tier = _tier(f"tier-fill-{i}")
                t0 = time.perf_counter()
                got = tier.get("result", fp)
                fill_times.append(time.perf_counter() - t0)
                assert got == payload
            # The last fill's tier now holds the artifact locally.
            local_seconds = _best_of(
                reps, lambda: tiers[-1].get("result", fp))
    finally:
        for tier in tiers:
            tier.close(timeout=1.0)
        shutil.rmtree(root, ignore_errors=True)
    return {
        "payload_bytes": len(payload),
        "local_hit_ms": round(local_seconds * 1e3, 3),
        "peer_hit_ms": round(min(fill_times) * 1e3, 2),
        "peer_miss_ms": round(miss_seconds * 1e3, 2),
    }


def measure_store_matrix(store_dir: str, reps: int = 3) -> dict:
    """Warm-vs-cold wall-clock of the default matrix via the store.

    The cold run populates a *fresh* store (the ``bench-store``
    subdirectory of ``store_dir`` is wiped first) and pays the
    serialization cost on top of simulation; the warm runs are pure
    cache-hit replays.  Results stay bit-identical either way — this
    measures the artifact store's payoff, it does not feed the
    regression gate.
    """
    from repro.experiments.runner import reset_program_cache
    from repro.store import ArtifactStore

    root = os.path.join(os.path.abspath(store_dir), "bench-store")
    shutil.rmtree(root, ignore_errors=True)
    kwargs = dict(
        benchmarks=MATRIX_BENCHMARKS, widths=(8,),
        instructions=MATRIX_INSTRUCTIONS, scale=MATRIX_SCALE,
        store=root,
    )
    # Drop the in-process image/trace cache warmed by the earlier
    # matrix measurements, so "cold" genuinely pays program generation,
    # linking and the trace walk — what a fresh process would pay.
    reset_program_cache()
    t0 = time.perf_counter()
    run_matrix(**kwargs)
    cold_seconds = time.perf_counter() - t0
    warm_seconds = _best_of(reps, lambda: run_matrix(**kwargs))
    stats = ArtifactStore(root).stats()
    return {
        "root": root,
        "cold_seconds": round(cold_seconds, 2),
        "warm_seconds": round(warm_seconds, 3),
        "warm_speedup": round(cold_seconds / warm_seconds, 1),
        "objects": stats["objects"],
        "object_bytes": stats["object_bytes"],
    }


def _clamped_drift(calibration: float, baseline_seconds: float) -> float:
    # Drift > 1 means this host is currently slower than it was in the
    # baseline measurement epoch; the baseline would run proportionally
    # slower today, so speedups are computed against the drift-adjusted
    # baseline.  Clamped tightly: beyond ~±30% the calibration is
    # telling us the host is unstable, and inflating the trajectory
    # from a noisy sample is worse than under-reporting it.
    return min(1.3, max(0.85, calibration / baseline_seconds))


def full_run(jobs: int, output: str, store_dir=None) -> dict:
    warm_shared_caches(ENGINE_INSTRUCTIONS)
    calibration = measure_calibration()
    # Best-of-4 for the committed sections: the reference container's
    # clock blips in multi-second throttle windows, and a blip landing
    # inside a best-of-2 pair reads as a phantom per-engine regression.
    # Deeper best-of only sharpens the estimate of the same quantity.
    engines = measure_engine_ips(ENGINE_INSTRUCTIONS, reps=4)
    engines_interp = measure_engine_ips(ENGINE_INSTRUCTIONS, reps=4,
                                        engine_mode="interp")
    quick_engines = measure_engine_ips(QUICK_INSTRUCTIONS, reps=3)
    quick_engines_interp = measure_engine_ips(QUICK_INSTRUCTIONS, reps=3,
                                              engine_mode="interp")
    matrix = measure_matrix(jobs)
    pool_overhead = measure_pool_overhead()
    serve = measure_serve_latency()
    cluster = measure_cluster_latency()
    remote_store = measure_remote_store_latency()
    chain = measure_chain_rates()
    hook_seconds = measure_obs_hook()
    obs_row = {
        "hook_us_per_cell": round(hook_seconds * 1e6, 2),
        # Fraction of the *fastest quick-mode cell* — the strictest
        # denominator the quick gate will ever divide by.
        "overhead_fraction": _obs_fractions(hook_seconds, {
            "accel": quick_engines,
            "interp": quick_engines_interp,
        }),
        "limit": OBS_OVERHEAD_LIMIT,
        "bit_identical": check_obs_identity(),
    }
    # The committed floor the --quick gate re-measures against: a few
    # points of slack absorb warmth differences between the full run's
    # and the quick run's in-process measurement order.
    chain["floor"] = round(chain["hit_rate"] - 0.03, 3)

    seed_ips = SEED_BASELINE["engine_ips"]
    pr3_ips = PR3_BASELINE["engine_ips"]
    pr4_ips = PR4_BASELINE["engine_ips"]
    seed_matrix = SEED_BASELINE["matrix_serial_seconds"]
    drift = _clamped_drift(calibration, SEED_BASELINE["calibration_seconds"])
    drift_pr3 = _clamped_drift(calibration,
                               PR3_BASELINE["calibration_seconds"])
    drift_pr4 = _clamped_drift(calibration,
                               PR4_BASELINE["calibration_seconds"])
    speedups = {
        "engine_ips_vs_seed": {
            arch: round(engines[arch]["ips"] * drift / seed_ips[arch], 2)
            for arch in engines
        },
        "engine_ips_vs_pr3": {
            arch: round(engines[arch]["ips"] * drift_pr3 / pr3_ips[arch], 2)
            for arch in engines
        },
        "engine_ips_vs_pr4": {
            arch: round(engines[arch]["ips"] * drift_pr4 / pr4_ips[arch], 2)
            for arch in engines
        },
        "accel_vs_interp": {
            arch: round(engines[arch]["ips"]
                        / engines_interp[arch]["ips"], 2)
            for arch in engines
        },
        "single_process_vs_seed": round(
            seed_matrix * drift / matrix["serial_seconds"], 2
        ),
    }
    if "parallel_seconds" in matrix:
        speedups["parallel_vs_seed"] = round(
            seed_matrix * drift / matrix["parallel_seconds"], 2
        )
    report = {
        "schema": 8,
        "calibration_seconds": round(calibration, 5),
        "calibration_drift_vs_seed": round(drift, 3),
        "calibration_drift_vs_pr3": round(drift_pr3, 3),
        "calibration_drift_vs_pr4": round(drift_pr4, 3),
        "engines": engines,
        "engines_interp": engines_interp,
        "quick_engines": quick_engines,
        "quick_engines_interp": quick_engines_interp,
        "matrix": matrix,
        "pool": pool_overhead,
        "serve": serve,
        "cluster": cluster,
        "remote_store": remote_store,
        "chain": chain,
        "obs": obs_row,
        "seed_baseline": SEED_BASELINE,
        "pr3_baseline": PR3_BASELINE,
        "pr4_baseline": PR4_BASELINE,
        "speedups": speedups,
    }
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"wrote {output}")
    for arch, row in engines.items():
        print(f"  {arch:7s} accel {row['ips']:>9,d} instr/s "
              f"({speedups['engine_ips_vs_seed'][arch]:.2f}x seed, "
              f"{speedups['engine_ips_vs_pr4'][arch]:.2f}x PR4, "
              f"{speedups['accel_vs_interp'][arch]:.2f}x interp "
              f"[{engines_interp[arch]['ips']:,d}], "
              f"chain {chain['per_engine'][arch]:.3f})")
    print(f"  chain hit rate  {chain['hit_rate']:.4f} on the default "
          f"matrix (committed floor {chain['floor']:.3f})")
    print(f"  matrix serial   {matrix['serial_seconds']:6.2f}s "
          f"({speedups['single_process_vs_seed']:.2f}x seed)")
    if "parallel_seconds" in matrix:
        print(f"  matrix jobs={jobs}   {matrix['parallel_seconds']:6.2f}s "
              f"({speedups['parallel_vs_seed']:.2f}x seed, pool setup "
              f"{matrix['worker_setup_seconds']:.2f}s)")
    else:
        print(f"  matrix jobs={jobs}   skipped: {matrix['parallel_skipped']}")
    print(f"  pool overhead   "
          f"{pool_overhead['serial_us_per_job']:.0f}us/job serial, "
          f"{pool_overhead['fork_us_per_job']:.0f}us/job forked "
          f"(no-op jobs; a simulation cell is >=4 orders larger)")
    print(f"  serve latency   ping {serve['ping_ms']:.1f}ms; 1-cell "
          f"matrix cold {serve['cold_ms']:.0f}ms -> warm "
          f"{serve['warm_ms']:.1f}ms (store-hit replay over the wire)")
    print(f"  cluster 2-node  {cluster['cells']}-cell matrix local "
          f"{cluster['local_ms']:.0f}ms, cold {cluster['cold_ms']:.0f}ms "
          f"(+{cluster['cold_overhead_ms_per_cell']:.0f}ms/cell) -> warm "
          f"{cluster['warm_ms_per_cell']:.1f}ms/cell dispatch overhead")
    print(f"  remote store    "
          f"{remote_store['payload_bytes'] // 1024}KiB artifact: local "
          f"hit {remote_store['local_hit_ms']:.2f}ms, peer hit "
          f"{remote_store['peer_hit_ms']:.1f}ms (read-through fill), "
          f"peer miss {remote_store['peer_miss_ms']:.1f}ms")
    print(f"  obs hook        {obs_row['hook_us_per_cell']:.2f}us/cell "
          f"({obs_row['overhead_fraction']['accel'] * 100:.3f}% of the "
          f"fastest accel cell, "
          f"{obs_row['overhead_fraction']['interp'] * 100:.3f}% interp; "
          f"bit-identical on/off: {obs_row['bit_identical']})")
    if store_dir:
        # Measured and reported after the JSON above was written:
        # `output` defaults to the committed baseline, and store timings
        # (plus a host-local root path) are a measurement, not a
        # baseline — see "Artifact store" in benchmarks/README.md.  The
        # row still lands on the returned dict for programmatic callers.
        row = measure_store_matrix(store_dir)
        report["store"] = row
        print(f"  store cold      {row['cold_seconds']:6.2f}s -> warm "
              f"{row['warm_seconds']:6.3f}s "
              f"({row['warm_speedup']:.0f}x cache-hit speedup, "
              f"{row['objects']} objects, {row['object_bytes']:,d} bytes)")
    return report


def quick_run(baseline_path: str) -> int:
    """CI smoke: short measurements in both modes vs the baseline.

    The accelerated and interpreted paths regress independently (a
    kernel-only bug leaves interp untouched and vice versa), so the
    gate measures and compares both.
    """
    warm_shared_caches(QUICK_INSTRUCTIONS)
    currents = {
        "accel": measure_engine_ips(QUICK_INSTRUCTIONS, reps=3),
        "interp": measure_engine_ips(QUICK_INSTRUCTIONS, reps=3,
                                     engine_mode="interp"),
    }
    # The per-engine accel/interp ratio makes a kernel-only regression
    # readable straight off the quick report (the raw ips alone cannot
    # separate "the host is slow" from "the accelerator stopped
    # accelerating").
    print("accel vs interp (quick workload):")
    for arch in currents["accel"]:
        a_ips = currents["accel"][arch]["ips"]
        i_ips = currents["interp"][arch]["ips"]
        print(f"  {arch:7s} accel {a_ips:>9,d} / interp {i_ips:>9,d} "
              f"instr/s = {a_ips / i_ips:.2f}x")
    if not os.path.exists(baseline_path):
        print(f"no baseline at {baseline_path}; nothing to gate against")
        return 0
    with open(baseline_path) as fh:
        report = json.load(fh)
    baselines = {
        "accel": report.get("quick_engines", {}),
        # Schema-1 baselines predate the accelerator; their single
        # quick_engines section was measured on the interpreted path.
        "interp": report.get("quick_engines_interp",
                             report.get("quick_engines", {})),
    }
    # Normalize out machine-speed drift: if the host currently runs the
    # fixed calibration workload at X times the baseline duration, the
    # engine floors scale by X too (clamped so a wildly off calibration
    # can neither mask a real regression nor fail a healthy tree).
    # Asymmetric on purpose: a slower host relaxes the floors, but a
    # "faster" calibration reading never tightens them — calibration
    # and simulator throughput do not track perfectly, and the gate
    # must not fail a healthy tree on a lucky calibration sample.
    drift = 1.0
    base_calib = report.get("calibration_seconds")
    if base_calib:
        drift = min(2.0, max(1.0, measure_calibration() / base_calib))
        print(f"machine drift vs baseline: {drift:.2f}x (floors /= drift)")

    def floor_for(base_ips: float) -> float:
        return base_ips / REGRESSION_TOLERANCE / drift

    suspects = []
    for mode, current in currents.items():
        baseline = baselines[mode]
        for arch, row in current.items():
            base = baseline.get(arch, {}).get("ips")
            if base is None:
                continue
            floor = floor_for(base)
            status = "ok" if row["ips"] >= floor else "suspect"
            print(f"  {mode:6s} {arch:7s} {row['ips']:>9,d} instr/s "
                  f"(baseline {base:,d}, floor {floor:,.0f}) {status}")
            if row["ips"] < floor:
                suspects.append((mode, arch))
    if suspects:
        # A transient load burst can depress one measurement; re-measure
        # the suspects with more repetitions before failing the build.
        names = ", ".join(f"{m}:{a}" for m, a in suspects)
        print(f"re-measuring suspects: {names}")
        program = _engine_program()
        failed = []
        for mode, arch in suspects:
            row = _measure_one_engine(program, arch, QUICK_INSTRUCTIONS,
                                      reps=5, engine_mode=mode)
            base = baselines[mode][arch]["ips"]
            floor = floor_for(base)
            status = "ok" if row["ips"] >= floor else "REGRESSION"
            print(f"  {mode:6s} {arch:7s} {row['ips']:>9,d} instr/s "
                  f"(baseline {base:,d}, floor {floor:,.0f}) {status}")
            if row["ips"] < floor:
                failed.append(f"{mode}:{arch}")
        if failed:
            print(f"perf regression "
                  f">{(REGRESSION_TOLERANCE - 1) * 100:.0f}% "
                  f"on: {', '.join(failed)}")
            return 1

    # Observability gate: the disabled-mode per-cell hook must stay
    # invisible next to even the fastest quick cell, in both engine
    # modes.  Measured directly (microseconds per call) rather than by
    # wall-clock A/B, which cannot resolve 2% under host noise.
    hook_seconds = measure_obs_hook()
    fractions = _obs_fractions(hook_seconds, currents)
    print(f"  obs hook {hook_seconds * 1e6:.2f}us/cell:")
    obs_failed = []
    for mode, fraction in sorted(fractions.items()):
        status = "ok" if fraction < OBS_OVERHEAD_LIMIT else "REGRESSION"
        print(f"    {mode:6s} {fraction * 100:.3f}% of the fastest cell "
              f"(limit {OBS_OVERHEAD_LIMIT * 100:.0f}%) {status}")
        if fraction >= OBS_OVERHEAD_LIMIT:
            obs_failed.append(mode)
    if obs_failed:
        print(f"obs hook overhead exceeds "
              f"{OBS_OVERHEAD_LIMIT * 100:.0f}% of a cell "
              f"on: {', '.join(obs_failed)}")
        return 1
    if not check_obs_identity():
        print("results diverge with observability on vs off "
              "(instrumentation is contaminating the simulation)")
        return 1
    print("  obs on/off bit-identity: ok")

    # Chain-hit-rate gate: unlike the ips floors this is a property of
    # the *code*, not the host — simulation is deterministic — so a
    # measurement below the committed floor means a refactor knocked
    # segments off the chained path.
    from repro.core.backend import chains_enabled_default

    chain_base = report.get("chain")
    if chain_base is None:
        print("baseline has no chain section (schema < 3); "
              "chain gate skipped")
    elif not chains_enabled_default():
        print("chains disabled via $REPRO_CHAINS; chain gate skipped")
    else:
        rates = measure_chain_rates()
        floor = chain_base.get("floor", 0.0)
        status = "ok" if rates["hit_rate"] >= floor else "REGRESSION"
        print(f"  chain hit rate {rates['hit_rate']:.4f} on the default "
              f"matrix (floor {floor:.3f}) {status}")
        if rates["hit_rate"] < floor:
            print("chain hit rate fell below the committed floor")
            return 1
    print("quick perf smoke: ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fast engine-only smoke vs the committed "
                             "baseline; fails on >30%% regression")
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                        help="workers for the parallel matrix measurement "
                             f"(default: min(4, cpu_count) = {DEFAULT_JOBS})")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where the full run writes its JSON report")
    parser.add_argument("--baseline", default=DEFAULT_OUTPUT,
                        help="baseline JSON the --quick mode compares to")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="also measure the warm-vs-cold artifact-store "
                             "matrix under DIR (full runs only; the --quick "
                             "gate always measures cold simulation)")
    args = parser.parse_args(argv)
    if args.quick:
        # The regression gate stays store-free on purpose: a cache hit
        # would mask a real engine regression.
        return quick_run(args.baseline)
    full_run(args.jobs, args.output, store_dir=args.store)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
