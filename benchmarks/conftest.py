"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and writes
the rendered rows into ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture.  Simulation sizes are scaled for laptop wall
clock; pass ``--repro-instructions`` / ``--repro-scale`` to enlarge.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmarks used for the suite-level (harmonic mean) figures; a
#: representative spread of footprint and branch character.
FIGURE_SUITE = ("gzip", "gcc", "eon", "vortex", "twolf")


def pytest_addoption(parser):
    parser.addoption("--repro-instructions", type=int, default=40_000)
    parser.addoption("--repro-scale", type=float, default=0.5)
    parser.addoption("--repro-jobs", type=int, default=1,
                     help="worker processes for run_matrix sharding")


@pytest.fixture(scope="session")
def sim_budget(request):
    n = request.config.getoption("--repro-instructions")
    return {"instructions": n, "warmup": n // 3,
            "scale": request.config.getoption("--repro-scale"),
            "jobs": request.config.getoption("--repro-jobs")}


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> None:
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
