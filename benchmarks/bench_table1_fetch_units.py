"""Table 1: fetch-unit size comparison across the suite.

Measures, on identical executed traces, the average size of each
architecture's fetch unit: dynamic basic blocks (5-6 instructions in
the paper), FTB fetch blocks, traces (~14), and instruction streams
(16-20+, the largest high-level-aware unit).
"""

from conftest import write_result
from repro.experiments.tables import fetch_unit_sizes, table1_text
from repro.isa.workloads import SPEC_BENCHMARKS


def _measure(sim_budget):
    return table1_text(
        SPEC_BENCHMARKS,
        n_instructions=sim_budget["instructions"],
        scale=sim_budget["scale"],
    )


def test_table1(benchmark, sim_budget, results_dir):
    text = benchmark.pedantic(_measure, args=(sim_budget,), rounds=1,
                              iterations=1)
    write_result(results_dir, "table1_fetch_units", text)

    # Aggregate shape on the optimized layouts (Table 1's comparison).
    totals = {"basic_block": 0.0, "fetch_block": 0.0, "stream": 0.0,
              "trace": 0.0}
    for bench in SPEC_BENCHMARKS:
        sizes = fetch_unit_sizes(
            bench, optimized=True,
            n_instructions=sim_budget["instructions"] // 2,
            scale=sim_budget["scale"],
        )
        for key in totals:
            totals[key] += sizes[key]
    n = len(SPEC_BENCHMARKS)
    means = {key: value / n for key, value in totals.items()}

    benchmark.extra_info.update({k: round(v, 2) for k, v in means.items()})

    # Paper Table 1: basic block 5-6; streams are the largest
    # software-visible unit (20+ on layout-optimized codes).
    assert 3.0 < means["basic_block"] < 9.0
    assert means["stream"] > means["basic_block"] * 2
    assert means["stream"] > means["trace"] * 0.9
    assert means["trace"] <= 16.0  # hard cap by construction
