"""Figure 9: per-benchmark IPC, 8-wide processor, optimized layouts.

Runs all eleven SPECint stand-ins and regenerates the per-benchmark bar
chart as a table, asserting the qualitative properties the paper calls
out: the stream architecture is at or near the top for most codes and
trades wins with the trace cache.
"""

from conftest import write_result
from repro.experiments.figures import figure9_data, figure9_text
from repro.experiments.runner import run_matrix
from repro.isa.workloads import SPEC_BENCHMARKS


def _run(sim_budget):
    return run_matrix(
        SPEC_BENCHMARKS, widths=(8,), layouts=(True,),
        instructions=sim_budget["instructions"],
        warmup=sim_budget["warmup"],
        scale=sim_budget["scale"],
        jobs=sim_budget["jobs"],
    )


def test_figure9(benchmark, sim_budget, results_dir):
    matrix = benchmark.pedantic(_run, args=(sim_budget,), rounds=1,
                                iterations=1)
    text = figure9_text(matrix, SPEC_BENCHMARKS)
    write_result(results_dir, "fig9_per_benchmark", text)

    data = figure9_data(matrix, SPEC_BENCHMARKS)
    benchmark.extra_info["hmean_stream"] = round(data["hmean"]["stream"], 3)
    benchmark.extra_info["hmean_trace"] = round(data["hmean"]["trace"], 3)

    # Streams trade wins with the other engines across the suite
    # (paper: best in 5 of 11, second in all but one).  Exact ranks at
    # ~1% IPC differences are noise at bench scale, so assert the
    # robust version: streams win outright somewhere, place top-2 on
    # several codes, and are never far from the per-benchmark leader.
    wins = 0
    top2 = 0
    for bench in SPEC_BENCHMARKS:
        per_arch = data[bench]
        ranking = sorted(per_arch, key=per_arch.get, reverse=True)
        wins += ranking[0] == "stream"
        top2 += "stream" in ranking[:2]
        # Paper: second-best in all but one benchmark; we allow one
        # crafty-like outlier by bounding the worst-case gap instead.
        assert per_arch["stream"] > 0.8 * per_arch[ranking[0]]
    assert wins >= 1
    assert top2 >= 3

    # Per-benchmark IPCs span a wide range (Fig. 9's 2..6 axis).
    ipcs = [data[b]["stream"] for b in SPEC_BENCHMARKS]
    assert max(ipcs) > 2 * min(ipcs)
