#!/usr/bin/env python
"""The paper's real argument: performance *per cost*.

Quantifies Table 1's cost/complexity column for the four Table 2
configurations and combines it with measured IPC into the
"performance per KiB of fetch-engine state" view that motivates the
stream architecture: near-trace-cache performance from a basic-block
cost structure (one instruction path, one predictor, no special store).

Run:  python examples/cost_complexity.py
"""

from repro.experiments.configs import ARCH_LABELS, simulate
from repro.experiments.cost_model import cost_comparison, cost_table_text
from repro.isa.workloads import prepare_program

BENCH = "gzip"
N = 60_000
WARMUP = 20_000
SCALE = 0.6


def main() -> None:
    print(cost_table_text())
    print()

    program = prepare_program(BENCH, optimized=True, scale=SCALE)
    costs = {r.name: r for r in cost_comparison()}
    print(f"Performance vs. cost ({BENCH}, 8-wide, optimized layout):")
    for arch in ("ev8", "ftb", "stream", "trace"):
        result = simulate(
            arch, BENCH, width=8, optimized=True,
            instructions=N, warmup=WARMUP, scale=SCALE, program=program,
        )
        report = costs[arch]
        print(
            f"  {ARCH_LABELS[arch]:15s} IPC={result.ipc:5.2f}   "
            f"state={report.total_kib:6.1f} KiB   "
            f"IPC/KiB={result.ipc / report.total_kib:6.4f}   "
            f"paths={report.instruction_paths} "
            f"predictors={report.predictors}"
        )
    print()
    print("The stream engine's pitch (§3.1): trace-cache-class IPC with")
    print("a single instruction path, a single predictor, and no")
    print("special-purpose instruction store.")


if __name__ == "__main__":
    main()
