#!/usr/bin/env python
"""Code layout case study: what `spike`-style optimization does.

For a large-footprint benchmark (gcc-like), compares the baseline and
profile-optimized layouts on: stream length, taken-branch rate, layout
quality (fall-through rate of profiled edges), I-cache behaviour, and
finally the IPC of all four fetch architectures — a miniature of the
paper's base-vs-optimized axis.

Run:  python examples/layout_study.py
"""

from repro.experiments.configs import ARCH_LABELS, simulate
from repro.isa.layout import layout_quality, natural_order, optimized_order
from repro.isa.streams import stream_statistics
from repro.isa.trace import TraceWalker, profile_edges
from repro.isa.workloads import (
    benchmark_spec,
    build_benchmark,
    prepare_program,
    ref_trace_seed,
    TRAIN_SALT,
)

BENCH = "gcc"
SCALE = 0.5
N = 60_000
WARMUP = 20_000


def main() -> None:
    spec = benchmark_spec(BENCH)
    cfg = build_benchmark(BENCH, scale=SCALE)
    profile = profile_edges(cfg, seed=spec.seed ^ TRAIN_SALT,
                            n_blocks=60_000)

    q_base = layout_quality(cfg, natural_order(cfg), profile)
    q_opt = layout_quality(cfg, optimized_order(cfg, profile), profile)
    print(f"Layout quality (profiled edges that fall through):")
    print(f"  baseline : {q_base:.2%}")
    print(f"  optimized: {q_opt:.2%}\n")

    for optimized in (False, True):
        layout = "optimized" if optimized else "baseline"
        program = prepare_program(BENCH, optimized=optimized, scale=SCALE)
        stats = stream_statistics(
            TraceWalker(program, ref_trace_seed(BENCH)), 50_000
        )
        print(f"{layout} layout ({program.code_bytes // 1024} KiB of code):")
        print(f"  average stream length : "
              f"{stats['avg_stream_length']:.1f} instructions")
        print(f"  conditional taken rate: {stats['taken_fraction']:.2%}")

        for arch in ("ev8", "ftb", "stream", "trace"):
            result = simulate(
                arch, BENCH, width=8, optimized=optimized,
                instructions=N, warmup=WARMUP, scale=SCALE, program=program,
            )
            il1 = result.memory_stats["il1_miss_rate"]
            print(f"    {ARCH_LABELS[arch]:15s} IPC={result.ipc:5.2f}  "
                  f"fetch={result.fetch_ipc:5.2f}  "
                  f"L1I miss={100 * il1:5.2f}%")
        print()

    print("Expected shape (paper §4.2): every engine gains from the")
    print("optimized layout, and the stream front-end gains the most —")
    print("longer streams mean fewer, more accurate predictions.")


if __name__ == "__main__":
    main()
