#!/usr/bin/env python
"""A sweep across a two-daemon fleet, surviving a node kill.

Boots two local ``python -m repro.serve`` daemons, runs a matrix
through ``run_matrix(cluster=...)`` so the cells spread across both,
then SIGKILLs one daemon and runs again: the pool's health machine
marks the node dead, redispatches its cells to the survivor, and the
results stay bit-identical to a local run throughout.

    python examples/cluster_sweep.py

Against a real fleet, skip the bootstrapping and just pass addresses:

    repro-experiments fig8 --cluster host1:7777,host2:7777
    run_matrix(..., cluster="host1:7777,host2:7777")
"""

import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.cluster import ClusterPool, HealthPolicy  # noqa: E402
from repro.exec import FaultPolicy  # noqa: E402
from repro.experiments.runner import run_matrix  # noqa: E402
from repro.serve.__main__ import _Daemon  # noqa: E402

MATRIX = dict(benchmarks=("gzip",), widths=(4, 8),
              archs=("stream", "ev8"), layouts=(True,),
              instructions=20_000, warmup=5_000, scale=0.4)


def sweep(pool: ClusterPool, label: str, base) -> None:
    t0 = time.perf_counter()
    out = run_matrix(cluster=pool, **MATRIX)
    dt = time.perf_counter() - t0
    ok = "bit-identical" if out.results == base.results else "DIVERGED!"
    print(f"{label}: {len(out.results)} cells in {dt:5.2f}s ({ok})")
    for worker in pool.worker_stats()["workers"]:
        print(f"  {worker['node']:>21}  {worker['state']:>9}  "
              f"completed {worker['completed']}  "
              f"breaker trips {worker['breaker_trips']}")


def main() -> None:
    print("local baseline...")
    base = run_matrix(**MATRIX)

    with tempfile.TemporaryDirectory() as store_root:
        print("booting two daemons on ephemeral ports...")
        with _Daemon(store_root) as a, _Daemon(store_root) as b:
            pool = ClusterPool(
                [a.address, b.address],
                policy=FaultPolicy(retries=2, backoff=0.1),
                # Snappy demo thresholds; defaults are more patient.
                health_policy=HealthPolicy(dead_after=2,
                                           probe_backoff=0.5),
                node_slots=1,
            )
            sweep(pool, "fleet sweep (cold)", base)

            print(f"\nSIGKILL {a.address}; sweeping again...")
            a.kill()
            sweep(pool, "fleet sweep (one node dead)", base)

            print("\nfleet heartbeat:", pool.heartbeat())
            b.drain_and_wait()


if __name__ == "__main__":
    main()
