#!/usr/bin/env python
"""Figure 1 of the paper, reconstructed by hand.

Builds the paper's example control-flow graph — a loop containing an
if-then-else where profile data says A -> B -> D is the frequent path —
lays it out so the hot path falls through, and enumerates the
instruction streams that the executed trace actually produces.

Run:  python examples/streams_by_hand.py
"""

from collections import Counter

from repro.common.types import BranchKind
from repro.isa.behavior import Bernoulli, LoopTrip
from repro.isa.cfg import ControlFlowGraph
from repro.isa.layout import natural_order
from repro.isa.program import link
from repro.isa.streams import extract_streams
from repro.isa.trace import TraceWalker


def build_figure1_cfg() -> ControlFlowGraph:
    """The loop/hammock of Fig. 1: A -> (B | C) -> D -> A."""
    cfg = ControlFlowGraph()
    main = cfg.new_function("main")
    a = cfg.new_block(main, 4, BranchKind.COND, behavior=Bernoulli(0.10))
    b = cfg.new_block(main, 5, BranchKind.NONE)
    d = cfg.new_block(main, 4, BranchKind.COND,
                      behavior=LoopTrip(8.0, jitter=0.0))
    c = cfg.new_block(main, 3, BranchKind.JUMP)
    # Profile: A -> B -> D is frequent, so B is A's fall-through and C
    # is "mapped somewhere else, reached through a taken branch".
    a.succ_true = c.bid       # infrequent side
    a.succ_false = b.bid      # frequent side (falls through)
    b.succ_false = d.bid
    c.succ_true = d.bid       # C jumps back into D
    d.succ_true = a.bid       # loop back edge
    restart = cfg.new_block(main, 1, BranchKind.JUMP)
    restart.succ_true = a.bid
    d.succ_false = restart.bid
    cfg.entry_bid = a.bid
    cfg.validate()
    return cfg


def main() -> None:
    cfg = build_figure1_cfg()
    # Natural creation order already matches the Fig. 1 layout: A B D C.
    program = link(cfg, natural_order(cfg), seed=1)

    names = {}
    for bid, label in zip((0, 1, 2, 3, 4), "ABDC*"):
        names[program.addr_of_bid[bid]] = label

    print("Code layout (Fig. 1):")
    for lb in program.linear_blocks:
        label = names.get(lb.addr, "stub")
        print(f"  {lb.addr:#07x}  block {label:4s} size={lb.size} "
              f"{lb.kind.name}")

    walker = TraceWalker(program, seed=42)
    dyns = [next(walker) for _ in range(400)]
    streams = Counter()
    for stream in extract_streams(iter(dyns)):
        members = []
        cursor = stream.start_addr
        remaining = stream.length
        while remaining > 0:
            lb, off = program.block_containing(cursor)
            members.append(names.get(lb.addr, "?"))
            take = lb.size - off
            cursor += take * 4
            remaining -= take
        streams["".join(members)] += 1

    print("\nObserved instruction streams (start block sequences):")
    for shape, count in streams.most_common():
        print(f"  {shape:10s} x{count}")
    print("\nThe frequent stream is B..D-like through the fall-through")
    print("path; C appears only in the infrequent streams — matching")
    print("the four streams enumerated in Fig. 1 of the paper.")


if __name__ == "__main__":
    main()
