#!/usr/bin/env python
"""Fetch-width anatomy: who delivers how many instructions per cycle.

Reproduces the Table 3 discussion on one benchmark: the trace cache
fetches past taken branches, the stream engine fetches whole sequential
streams through a wide-line I-cache, the FTB is bounded by fetch-block
size, and the EV8 by its aligned fetch slot.  Also reports each
engine's fetch-unit size measured on the same trace (Table 1).

Run:  python examples/fetch_width_study.py [benchmark]
"""

import sys

from repro.experiments.configs import ARCH_LABELS, simulate
from repro.experiments.tables import fetch_unit_sizes
from repro.isa.workloads import SPEC_BENCHMARKS, prepare_program

BENCH = sys.argv[1] if len(sys.argv) > 1 else "crafty"
N = 70_000
WARMUP = 25_000
SCALE = 0.6


def main() -> None:
    if BENCH not in SPEC_BENCHMARKS:
        raise SystemExit(f"unknown benchmark {BENCH!r}: {SPEC_BENCHMARKS}")

    sizes = fetch_unit_sizes(BENCH, optimized=True, scale=SCALE)
    print(f"Fetch-unit sizes on optimized {BENCH} (Table 1 measurement):")
    print(f"  dynamic basic block : {sizes['basic_block']:5.1f} instructions")
    print(f"  FTB fetch block     : {sizes['fetch_block']:5.1f}")
    print(f"  trace (<=16, <=3 br): {sizes['trace']:5.1f}")
    print(f"  instruction stream  : {sizes['stream']:5.1f}")
    print()

    program = prepare_program(BENCH, optimized=True, scale=SCALE)
    print(f"Effective fetch width, 8-wide machine ({BENCH}, optimized):")
    for arch in ("ev8", "ftb", "stream", "trace"):
        result = simulate(
            arch, BENCH, width=8, optimized=True,
            instructions=N, warmup=WARMUP, scale=SCALE, program=program,
        )
        bar = "#" * round(result.fetch_ipc * 5)
        print(f"  {ARCH_LABELS[arch]:15s} {result.fetch_ipc:5.2f}  {bar}")
    print()
    print("Table 3's shape: the trace cache leads, streams close the")
    print("gap without any extra instruction storage, and the two")
    print("basic-block-bounded engines trail.")


if __name__ == "__main__":
    main()
