#!/usr/bin/env python
"""Talking to the experiment daemon: cold and warm matrix requests.

Asks a running ``python -m repro.serve`` daemon for a small matrix
twice.  The first (cold) request simulates on the daemon and persists
every cell to its store; the second (warm) request is answered from
the store without simulating — both bit-identical to a local
``run_matrix``.  A second client asking the same cells while the cold
request is still running would be coalesced onto the in-flight work,
not queued behind it; `status` shows those counters.

With no daemon address on the command line, the example boots an
in-process server on an ephemeral port with a throwaway store so it is
self-contained:

    python examples/serve_client.py              # in-process server
    python -m repro.serve --store /tmp/s --port 7777 &
    python examples/serve_client.py 7777         # real daemon
"""

import os
import shutil
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.experiments.runner import run_matrix  # noqa: E402
from repro.serve import ExperimentServer, ServeClient  # noqa: E402

BENCHMARKS = ("gzip",)
KWARGS = dict(widths=(8,), instructions=20_000, scale=0.4)


def ask(client: ServeClient, label: str) -> "object":
    t0 = time.perf_counter()
    matrix = client.run_matrix(BENCHMARKS, **KWARGS)
    dt = time.perf_counter() - t0
    print(f"{label}: {len(matrix.results)} cells in {dt:6.2f}s")
    return matrix


def main() -> None:
    tmp_store = None
    server = None
    if len(sys.argv) > 1:
        client = ServeClient.at(sys.argv[1])
    else:
        tmp_store = tempfile.mkdtemp(prefix="repro-serve-example-")
        server = ExperimentServer(store_root=tmp_store).start()
        client = ServeClient(*server.address)
        print(f"no address given; started an in-process server on "
              f"{server.address[0]}:{server.address[1]}")
    try:
        ping = client.ping()
        print(f"daemon pid {ping['pid']}, protocol v{ping['version']}")

        cold = ask(client, "cold request (daemon simulates + persists)")
        warm = ask(client, "warm request (served from the daemon's store)")
        local = run_matrix(BENCHMARKS, **KWARGS)
        print("served cells bit-identical to a local run: "
              f"{cold.results == warm.results == local.results}")

        status = client.status()
        cells = status["cells"]
        queue = status["queue"]
        print(f"daemon status: up {status['uptime']:.1f}s, "
              f"{status['requests']} requests; "
              f"{cells['computed']} computed, {cells['coalesced']} "
              f"coalesced, {cells['failed']} failed, "
              f"{cells['in_flight']} in flight; queue "
              f"{queue['backlog']}/{queue['limit']}; pool "
              f"{status['pool']['kind']} x{status['pool']['workers']}")

        # The metrics op serves the same counters (plus store, exec and
        # core families) in Prometheus text format — point a scraper at
        # it, or grep it like any text:
        metrics = client.metrics()
        for line in metrics.splitlines():
            if line.startswith(("repro_serve_requests_total",
                                "repro_serve_cells_total")):
                print(f"  {line}")

        # The same knob from the CLI: any matrix command accepts
        # --serve HOST:PORT, and run_matrix(serve=...) falls back to a
        # local run (one warning) when no daemon answers there.
        address = f"{client.host}:{client.port}"
        via = run_matrix(BENCHMARKS, **KWARGS, serve=address)
        print(f"run_matrix(serve={address!r}) matches: "
              f"{via.results == local.results}")
    finally:
        if server is not None:
            server.stop()
        if tmp_store is not None:
            shutil.rmtree(tmp_store, ignore_errors=True)


if __name__ == "__main__":
    main()
