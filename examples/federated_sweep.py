#!/usr/bin/env python
"""Two daemons sharing artifacts through the federated store.

Daemon A simulates a matrix cold into its own store.  Daemon B boots
with ``--store-peers`` pointing at A and serves the *same* matrix
without simulating anything: each cell arrives by read-through fill —
fetched from A, oid-verified, landed atomically in B's local store,
then served.  Then A is SIGKILLed and B serves the matrix again,
purely from the local copies the fills left behind: losing every peer
costs nothing that already landed, and can never cost correctness.

    python examples/federated_sweep.py

Against a real fleet, skip the bootstrapping and just pass peers:

    python -m repro.serve --store /data/store --store-peers host1:7777
    repro-experiments fig8 --store cache/ --store-peers host1:7777
    run_matrix(..., store="cache/", peers="host1:7777")
"""

import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.experiments.runner import run_matrix  # noqa: E402
from repro.serve.__main__ import _Daemon  # noqa: E402

MATRIX = dict(benchmarks=("gzip",), widths=(4, 8),
              archs=("stream", "ev8"), layouts=(True,),
              instructions=20_000, warmup=5_000, scale=0.4)


def sweep(daemon: _Daemon, label: str, base) -> None:
    t0 = time.perf_counter()
    out = daemon.client.run_matrix(**MATRIX)
    dt = time.perf_counter() - t0
    ok = "bit-identical" if out.results == base.results else "DIVERGED!"
    status = daemon.client.status()
    line = (f"{label}: {len(out.results)} cells in {dt:5.2f}s "
            f"({ok}); simulated {status['cells']['computed']}")
    remote = status.get("store", {}).get("remote")
    if remote:
        peer = remote["peers"][0]
        line += (f", peer {peer['peer']} [{peer['state']}] "
                 f"hits {peer['hits']} errors {peer['errors']}")
    print(line)


def main() -> None:
    print("local baseline...")
    base = run_matrix(**MATRIX)

    with tempfile.TemporaryDirectory() as root_a, \
            tempfile.TemporaryDirectory() as root_b:
        print("booting daemon A (cold store)...")
        with _Daemon(root_a) as a:
            sweep(a, "daemon A (simulates cold)", base)

            print(f"booting daemon B with --store-peers {a.address}...")
            with _Daemon(root_b, "--store-peers", a.address) as b:
                sweep(b, "daemon B (read-through)", base)

                print(f"\nSIGKILL {a.address}; asking B again...")
                a.kill()
                sweep(b, "daemon B (peer dead)", base)
                b.drain_and_wait()


if __name__ == "__main__":
    main()
