#!/usr/bin/env python
"""Quickstart: simulate the stream fetch architecture on one benchmark.

Builds the synthetic `gzip` workload in both code layouts, runs the
paper's stream front-end (Fig. 4) on an 8-wide machine, and prints the
three headline metrics of the evaluation: IPC, effective fetch width,
and branch misprediction rate.

Run:  python examples/quickstart.py
"""

from repro import simulate

N_INSTRUCTIONS = 60_000
WARMUP = 20_000


def main() -> None:
    print("Stream fetch architecture on synthetic SPECint 'gzip'")
    print("=" * 60)
    for optimized in (False, True):
        layout = "optimized" if optimized else "baseline "
        result = simulate(
            "stream", "gzip", width=8, optimized=optimized,
            instructions=N_INSTRUCTIONS, warmup=WARMUP, scale=0.6,
        )
        print(
            f"{layout} layout:  IPC={result.ipc:5.2f}   "
            f"fetch IPC={result.fetch_ipc:5.2f}   "
            f"mispredict={100 * result.branch_misprediction_rate:5.2f}%"
        )
        stats = result.engine_stats
        streams = stats.get("streams_committed", 0)
        if streams:
            avg = stats.get("stream_instructions", 0) / streams
            print(f"                   average committed stream: "
                  f"{avg:.1f} instructions")
    print()
    print("Layout optimization lengthens streams, which is exactly the")
    print("property the next stream predictor exploits (paper §3.2).")


if __name__ == "__main__":
    main()
