#!/usr/bin/env python
"""Watching a sweep through `repro.obs`: metrics + flight recorder.

Runs a small matrix against a throwaway store, then shows the three
faces of the observability layer:

* the **metrics registry** — process-global counters the store, the
  executor and the core run loop published into while the sweep ran,
  rendered in Prometheus text format;
* the sweep's **flight recorder** — the LDJSON event file written next
  to its journal (``runs/<sweep-fp>.events``), holding the typed
  ``sweep_begin`` / ``cell`` / ``retry`` / ``sweep_end`` events;
* the **summary view** the CLI exposes as
  ``repro-experiments obs summary`` / ``python -m repro.obs``.

Observability never changes results: the second run below proves the
matrix is bit-identical with recording disabled (``REPRO_OBS=0``).

    python examples/observed_sweep.py
"""

import os
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import obs  # noqa: E402
from repro.experiments.runner import run_matrix  # noqa: E402
from repro.obs.inspect import summarize  # noqa: E402

BENCHMARKS = ("gzip",)
KWARGS = dict(widths=(8,), instructions=20_000, scale=0.4)


def main() -> None:
    store = tempfile.mkdtemp(prefix="repro-obs-example-")
    try:
        observed = run_matrix(BENCHMARKS, store=store, **KWARGS)
        print(f"simulated {len(observed.results)} cells\n")

        # 1. Metrics: every layer published into the shared registry.
        print("-- selected metrics (Prometheus text format) --")
        for line in obs.render_prometheus().splitlines():
            if line.startswith(("repro_core_cells_total",
                                "repro_store_hits_total",
                                "repro_store_misses_total",
                                "repro_exec_jobs_total")):
                print(line)
        print()

        # 2. The flight recorder rode along next to the sweep journal.
        runs = os.path.join(store, "runs")
        events_file = next(
            os.path.join(runs, name)
            for name in sorted(os.listdir(runs))
            if name.endswith(".events")
        )
        events = obs.read_events(events_file)
        print(f"-- flight recorder {os.path.basename(events_file)} "
              f"({len(events)} events) --")
        for event in events[:3]:
            print(f"  {event['ev']:12s} "
                  f"{ {k: v for k, v in event.items() if k not in ('ev', 'ts')} }")
        print("  ...")

        # 3. The same file through the CLI's summary view
        #    (repro-experiments obs summary / python -m repro.obs).
        print()
        print(summarize(events_file, events))

        # Observability is a window, never an input: rerunning with
        # recording disabled yields bit-identical results.
        os.environ["REPRO_OBS"] = "0"
        try:
            silent = run_matrix(BENCHMARKS, **KWARGS)
        finally:
            del os.environ["REPRO_OBS"]
        print()
        print(f"bit-identical with REPRO_OBS=0: "
              f"{silent.results == observed.results}")
    finally:
        shutil.rmtree(store, ignore_errors=True)


if __name__ == "__main__":
    main()
