#!/usr/bin/env python
"""Incremental experiment runs: the Figure 8 matrix against a store.

Runs a small Figure-8-style matrix (two benchmarks x two layouts x two
widths x all four fetch engines) twice against an on-disk artifact
store.  The cold run simulates every cell and populates the store with
linked program images, dynamic trace records and per-cell results; the
warm run resolves every cell's fingerprint in the store and returns a
bit-identical matrix without simulating anything.

The store lives in ``.repro-store/`` next to the repo (git-ignored) by
default; pass a directory argument to put it elsewhere.  Layout, GC
policy and the ``repro-experiments cache`` maintenance commands are
documented in benchmarks/README.md ("Artifact store").

Run:  python examples/cached_matrix.py [store-dir]
"""

import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.experiments.runner import run_matrix  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402

BENCHMARKS = ("gzip", "twolf")
KWARGS = dict(widths=(2, 8), instructions=20_000, scale=0.4)


def run_once(label: str, store: str) -> "object":
    t0 = time.perf_counter()
    matrix = run_matrix(BENCHMARKS, **KWARGS, store=store)
    dt = time.perf_counter() - t0
    cells = len(matrix.results)
    print(f"{label}: {cells} cells in {dt:6.2f}s")
    return matrix


def main() -> None:
    store = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", ".repro-store"
    )
    print(f"artifact store: {os.path.abspath(store)}")
    cold = run_once("cold run (simulate + populate)", store)
    warm = run_once("warm run (served from store)  ", store)

    identical = all(
        cold.results[spec] == warm.results[spec] for spec in cold.results
    )
    print(f"warm matrix bit-identical to cold: {identical}")

    stats = ArtifactStore(store).stats()
    print("store contents:")
    for kind, row in sorted(stats["kinds"].items()):
        print(f"  {kind:8s} {row['entries']:4d} entries "
              f"{row['bytes']:>10,d} bytes")
    print(f"  ({stats['objects']} objects, {stats['object_bytes']:,d} bytes "
          f"on disk; prune with 'repro-experiments cache gc')")

    # The store keys on every input: a different width sweep below
    # would simulate only the cells not already present.
    example = cold.get("stream", "gzip", 8, True)
    print(f"\nsample cell  stream/gzip/8-wide/optimized: "
          f"IPC={example.ipc:.2f}")


if __name__ == "__main__":
    main()
