#!/usr/bin/env python
"""Predictor duel: the four prediction mechanisms head to head.

Runs every architecture over several benchmarks and compares branch
misprediction rates and the *number of predictions made* — the paper's
§4.3 argument: stream-level sequencing means fewer predictions, less
table pressure, and implicit (free) prediction of every not-taken
branch crossed by a stream.

Run:  python examples/predictor_duel.py
"""

from repro.experiments.configs import ARCH_LABELS, simulate
from repro.isa.workloads import prepare_program

BENCHMARKS = ("gzip", "crafty", "vortex")
N = 70_000
WARMUP = 25_000
SCALE = 0.6


def main() -> None:
    for bench in BENCHMARKS:
        program = prepare_program(bench, optimized=True, scale=SCALE)
        print(f"{bench} (optimized layout, 8-wide)")
        for arch in ("ev8", "ftb", "stream", "trace"):
            result = simulate(
                arch, bench, width=8, optimized=True,
                instructions=N, warmup=WARMUP, scale=SCALE, program=program,
            )
            stats = result.engine_stats
            if arch == "ev8":
                predictions = stats.get("cond_predictions", 0)
                unit = "per-branch"
            elif arch == "ftb":
                predictions = stats.get("ftb_hits", 0) + stats.get(
                    "ftb_misses", 0)
                unit = "per fetch block"
            elif arch == "stream":
                predictions = stats.get("stream_pred_hits", 0) + stats.get(
                    "stream_pred_misses", 0)
                unit = "per stream"
            else:
                predictions = stats.get("trace_pred_hits", 0) + stats.get(
                    "trace_pred_misses", 0)
                unit = "per trace"
            print(
                f"  {ARCH_LABELS[arch]:15s} "
                f"mispred={100 * result.branch_misprediction_rate:5.2f}%  "
                f"predictions={predictions:7d} ({unit})"
            )
        print()
    print("Fewer predictions at a larger granularity is the stream")
    print("predictor's structural advantage (paper §4.3).")


if __name__ == "__main__":
    main()
