"""The Table 2 memory hierarchy: L1I + L1D + unified L2 + memory.

Latency model: an access pays the hit latency of the first level that
holds the data.  On an L1 miss the line is filled into L1 (and into L2 if
it also missed there).  The instruction side fetches whole (potentially
very wide) L1I lines; when an L1I line is wider than an L2 line, each
constituent L2 line is probed and the worst latency applies — the
single-ported wide read the paper adopts in §3.4.
"""

from __future__ import annotations

from repro.common.params import MemoryParams
from repro.memory.cache import Cache


class MemoryHierarchy:
    """Owns the caches and answers latency queries."""

    __slots__ = ("params", "il1", "dl1", "l2",
                 "_il1_hit", "_dl1_hit", "_l2_lat", "_mem_lat")

    def __init__(self, params: MemoryParams) -> None:
        self.params = params
        self.il1 = Cache(params.il1, "L1I")
        self.dl1 = Cache(params.dl1, "L1D")
        self.l2 = Cache(params.l2, "L2")
        # Latency constants, hoisted out of the per-access paths.
        self._il1_hit = params.il1.hit_latency
        self._dl1_hit = params.dl1.hit_latency
        self._l2_lat = params.l2_latency
        self._mem_lat = params.memory_latency

    # ------------------------------------------------------------------
    # instruction side
    # ------------------------------------------------------------------
    def fetch_line(self, addr: int) -> int:
        """Fetch the L1I line containing ``addr``; returns latency."""
        if self.il1.access(addr):
            return self._il1_hit
        return self._il1_hit + self._fill_from_l2_instr(addr)

    def _fill_from_l2_instr(self, addr: int) -> int:
        il1_line = self.params.il1.line_bytes
        l2_line = self.params.l2.line_bytes
        start = addr - (addr % il1_line)
        worst = 0
        l2_access = self.l2.access
        for chunk in range(start, start + il1_line, l2_line):
            if l2_access(chunk):
                latency = self._l2_lat
            else:
                latency = self._l2_lat + self._mem_lat
            if latency > worst:
                worst = latency
        return worst

    def instruction_prefetch(self, addr: int) -> None:
        """Fill an L1I line without charging latency (wrong-path effect).

        Wrong-path fetches still move lines into the cache; the paper's
        simulator models exactly this pollution/prefetch side effect.
        """
        if not self.il1.probe(addr):
            self.il1.fill(addr)
            l2_line = self.params.l2.line_bytes
            il1_line = self.params.il1.line_bytes
            start = addr - (addr % il1_line)
            for chunk in range(start, start + il1_line, l2_line):
                self.l2.access(chunk)

    # ------------------------------------------------------------------
    # data side
    # ------------------------------------------------------------------
    def data_access(self, addr: int, is_store: bool = False) -> int:
        """Load/store latency through L1D -> L2 -> memory."""
        if self.dl1.access(addr):
            return self._dl1_hit
        if self.l2.access(addr):
            return self._dl1_hit + self._l2_lat
        return self._dl1_hit + self._l2_lat + self._mem_lat

    # ------------------------------------------------------------------
    def stats_summary(self) -> dict:
        il1, dl1, l2 = self.il1, self.dl1, self.l2
        return {
            "il1_accesses": il1.accesses,
            "il1_misses": il1.misses,
            "il1_miss_rate": il1.miss_rate,
            "dl1_accesses": dl1.accesses,
            "dl1_misses": dl1.misses,
            "dl1_miss_rate": dl1.miss_rate,
            "l2_accesses": l2.accesses,
            "l2_misses": l2.misses,
            "l2_miss_rate": l2.miss_rate,
        }
