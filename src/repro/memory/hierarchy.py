"""The Table 2 memory hierarchy: L1I + L1D + unified L2 + memory.

Latency model: an access pays the hit latency of the first level that
holds the data.  On an L1 miss the line is filled into L1 (and into L2 if
it also missed there).  The instruction side fetches whole (potentially
very wide) L1I lines; when an L1I line is wider than an L2 line, each
constituent L2 line is probed and the worst latency applies — the
single-ported wide read the paper adopts in §3.4.
"""

from __future__ import annotations

from repro.common.params import MemoryParams
from repro.memory.cache import Cache


class MemoryHierarchy:
    """Owns the caches and answers latency queries."""

    def __init__(self, params: MemoryParams) -> None:
        self.params = params
        self.il1 = Cache(params.il1, "L1I")
        self.dl1 = Cache(params.dl1, "L1D")
        self.l2 = Cache(params.l2, "L2")

    # ------------------------------------------------------------------
    # instruction side
    # ------------------------------------------------------------------
    def fetch_line(self, addr: int) -> int:
        """Fetch the L1I line containing ``addr``; returns latency."""
        if self.il1.access(addr):
            return self.params.il1.hit_latency
        return self.params.il1.hit_latency + self._fill_from_l2_instr(addr)

    def _fill_from_l2_instr(self, addr: int) -> int:
        il1_line = self.params.il1.line_bytes
        l2_line = self.params.l2.line_bytes
        start = addr - (addr % il1_line)
        worst = 0
        for chunk in range(start, start + il1_line, l2_line):
            if self.l2.access(chunk):
                latency = self.params.l2_latency
            else:
                latency = self.params.l2_latency + self.params.memory_latency
            worst = max(worst, latency)
        return worst

    def instruction_prefetch(self, addr: int) -> None:
        """Fill an L1I line without charging latency (wrong-path effect).

        Wrong-path fetches still move lines into the cache; the paper's
        simulator models exactly this pollution/prefetch side effect.
        """
        if not self.il1.probe(addr):
            self.il1.fill(addr)
            l2_line = self.params.l2.line_bytes
            il1_line = self.params.il1.line_bytes
            start = addr - (addr % il1_line)
            for chunk in range(start, start + il1_line, l2_line):
                self.l2.access(chunk)

    # ------------------------------------------------------------------
    # data side
    # ------------------------------------------------------------------
    def data_access(self, addr: int, is_store: bool = False) -> int:
        """Load/store latency through L1D -> L2 -> memory."""
        if self.dl1.access(addr):
            return self.params.dl1.hit_latency
        latency = self.params.dl1.hit_latency
        if self.l2.access(addr):
            latency += self.params.l2_latency
        else:
            latency += self.params.l2_latency + self.params.memory_latency
        return latency

    # ------------------------------------------------------------------
    def stats_summary(self) -> dict:
        return {
            "il1_accesses": self.il1.stats["accesses"],
            "il1_misses": self.il1.stats["misses"],
            "il1_miss_rate": self.il1.miss_rate,
            "dl1_accesses": self.dl1.stats["accesses"],
            "dl1_misses": self.dl1.stats["misses"],
            "dl1_miss_rate": self.dl1.miss_rate,
            "l2_accesses": self.l2.stats["accesses"],
            "l2_misses": self.l2.stats["misses"],
            "l2_miss_rate": self.l2.miss_rate,
        }
