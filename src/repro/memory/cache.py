"""A classic set-associative cache with true-LRU replacement.

Used for the L1 instruction cache (with the very wide lines the stream
architecture relies on, §3.4), the L1 data cache, the unified L2, and as
the storage array of the trace cache (which indexes by trace id rather
than address, but shares the geometry/LRU mechanics).

The cache sits on the simulator's hottest path (every fetch cycle and
every load/store probes one), so the event counters are plain integer
slot attributes rather than a string-keyed bag; they are exported in
:class:`~repro.common.stats.CounterBag` form only when statistics are
summarized.
"""

from __future__ import annotations

from typing import List

from repro.common.params import CacheParams
from repro.common.stats import CounterBag


class Cache:
    """Set-associative LRU cache keyed by line address.

    ``access`` combines probe + fill (the common case in a simulator);
    ``probe`` and ``fill`` are exposed separately for engines that need
    to model a miss without immediately filling (e.g. selective trace
    storage deciding not to insert).
    """

    __slots__ = (
        "params",
        "name",
        "accesses",
        "misses",
        "evictions",
        "_sets",
        "_offset_bits",
        "_index_mask",
        "_tag_shift",
        "_assoc",
    )

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.params = params
        self.name = name
        self.accesses = 0
        self.misses = 0
        self.evictions = 0
        # Each set is an MRU-first list of tags; LRU is the last element.
        self._sets: List[List[int]] = [[] for _ in range(params.num_sets)]
        self._offset_bits = params.line_bytes.bit_length() - 1
        self._index_mask = params.num_sets - 1
        # When num_sets == 1 the mask is 0 and the shift is 0: every line
        # maps to set 0 and the whole line address is the tag, so the
        # general expressions below already cover the degenerate case.
        self._tag_shift = self._index_mask.bit_length()
        self._assoc = params.assoc

    # ------------------------------------------------------------------
    def line_address(self, addr: int) -> int:
        return addr >> self._offset_bits

    def _locate(self, addr: int) -> tuple[List[int], int]:
        line = addr >> self._offset_bits
        return self._sets[line & self._index_mask], line >> self._tag_shift

    # ------------------------------------------------------------------
    def access(self, addr: int) -> bool:
        """Probe and update LRU; fill on miss.  Returns hit?"""
        line = addr >> self._offset_bits
        ways = self._sets[line & self._index_mask]
        tag = line >> self._tag_shift
        self.accesses += 1
        # MRU fast path: consecutive touches of one line are the common
        # case and need no list reshuffle (remove + reinsert at 0 would
        # be an identity operation).
        if ways and ways[0] == tag:
            return True
        try:
            ways.remove(tag)
        except ValueError:
            self.misses += 1
            ways.insert(0, tag)
            if len(ways) > self._assoc:
                ways.pop()
                self.evictions += 1
            return False
        ways.insert(0, tag)
        return True

    def access_tail(self, ways: List[int], tag: int) -> bool:
        """Non-MRU remainder of :meth:`access`.

        The accelerator kernels inline the MRU fast path and the access
        counter at their probe sites and fall back here for reordering
        hits and miss fills — counter and LRU semantics are exactly
        those of :meth:`access` (which stays the canonical entry point).
        """
        try:
            ways.remove(tag)
        except ValueError:
            self.misses += 1
            ways.insert(0, tag)
            if len(ways) > self._assoc:
                ways.pop()
                self.evictions += 1
            return False
        ways.insert(0, tag)
        return True

    def probe(self, addr: int) -> bool:
        """Check residency without changing any state."""
        ways, tag = self._locate(addr)
        return tag in ways

    def fill(self, addr: int) -> None:
        """Insert a line (MRU position), evicting the LRU if needed."""
        ways, tag = self._locate(addr)
        if tag in ways:
            ways.remove(tag)
        ways.insert(0, tag)
        if len(ways) > self._assoc:
            ways.pop()
            self.evictions += 1

    def invalidate_all(self) -> None:
        for ways in self._sets:
            ways.clear()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CounterBag:
        """The event counters in mergeable :class:`CounterBag` form.

        Built on demand: the raw counters are integer slots so the hot
        probe path never touches a dictionary.
        """
        return CounterBag({
            "accesses": self.accesses,
            "misses": self.misses,
            "evictions": self.evictions,
        })

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.params
        return (
            f"Cache({self.name}: {p.size_bytes // 1024}KB {p.assoc}-way "
            f"{p.line_bytes}B lines)"
        )
