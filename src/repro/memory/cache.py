"""A classic set-associative cache with true-LRU replacement.

Used for the L1 instruction cache (with the very wide lines the stream
architecture relies on, §3.4), the L1 data cache, the unified L2, and as
the storage array of the trace cache (which indexes by trace id rather
than address, but shares the geometry/LRU mechanics).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.params import CacheParams
from repro.common.stats import CounterBag


class Cache:
    """Set-associative LRU cache keyed by line address.

    ``access`` combines probe + fill (the common case in a simulator);
    ``probe`` and ``fill`` are exposed separately for engines that need
    to model a miss without immediately filling (e.g. selective trace
    storage deciding not to insert).
    """

    __slots__ = ("params", "name", "stats", "_sets", "_offset_bits", "_index_mask")

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.params = params
        self.name = name
        self.stats = CounterBag()
        # Each set is an MRU-first list of tags; LRU is the last element.
        self._sets: List[List[int]] = [[] for _ in range(params.num_sets)]
        self._offset_bits = params.line_bytes.bit_length() - 1
        self._index_mask = params.num_sets - 1

    # ------------------------------------------------------------------
    def line_address(self, addr: int) -> int:
        return addr >> self._offset_bits

    def _locate(self, addr: int) -> tuple[List[int], int]:
        line = self.line_address(addr)
        index = line & self._index_mask
        tag = line >> (self._index_mask.bit_length())
        # num_sets may be 1 (index_mask == 0): every line maps to set 0.
        if self._index_mask == 0:
            tag = line
            index = 0
        return self._sets[index], tag

    # ------------------------------------------------------------------
    def access(self, addr: int) -> bool:
        """Probe and update LRU; fill on miss.  Returns hit?"""
        ways, tag = self._locate(addr)
        self.stats.add("accesses")
        try:
            ways.remove(tag)
        except ValueError:
            self.stats.add("misses")
            ways.insert(0, tag)
            if len(ways) > self.params.assoc:
                ways.pop()
                self.stats.add("evictions")
            return False
        ways.insert(0, tag)
        return True

    def probe(self, addr: int) -> bool:
        """Check residency without changing any state."""
        ways, tag = self._locate(addr)
        return tag in ways

    def fill(self, addr: int) -> None:
        """Insert a line (MRU position), evicting the LRU if needed."""
        ways, tag = self._locate(addr)
        if tag in ways:
            ways.remove(tag)
        ways.insert(0, tag)
        if len(ways) > self.params.assoc:
            ways.pop()
            self.stats.add("evictions")

    def invalidate_all(self) -> None:
        for ways in self._sets:
            ways.clear()

    # ------------------------------------------------------------------
    @property
    def miss_rate(self) -> float:
        return self.stats.rate("misses", "accesses")

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.params
        return (
            f"Cache({self.name}: {p.size_bytes // 1024}KB {p.assoc}-way "
            f"{p.line_bytes}B lines)"
        )
