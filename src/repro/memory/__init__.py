"""Memory hierarchy substrate: set-associative caches and latencies."""

from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["Cache", "MemoryHierarchy"]
