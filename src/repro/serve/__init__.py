"""A crash-tolerant experiment service over the artifact store.

``python -m repro.serve --store DIR --port N`` runs a long-lived daemon
that answers experiment-matrix queries over a line-delimited-JSON
socket protocol, turning the per-run machinery this repo already has
into a resident service:

* **admission + coalescing** — requests decompose into per-cell result
  fingerprints, warm cells answer straight from the store, and
  concurrent identical cold requests collapse onto one in-flight
  simulation per cell (:mod:`repro.serve.scheduler`);
* **backpressure + deadlines** — a bounded cold-cell backlog rejects
  excess load with a typed ``overloaded`` error, and per-request
  deadlines return partial results instead of blocking forever;
* **degradation + restart** — worker pools crash, get rebuilt with
  backoff, and eventually pin to serial execution; every finished cell
  is stored and journaled before any client sees it, so a SIGKILLed
  daemon restarts and re-simulates only what is missing.

``python -m repro.serve selftest`` drives those claims end to end
against a real daemon subprocess under injected faults.
"""

from repro.serve.client import (
    ServeClient,
    ServeDraining,
    ServeError,
    ServeOverloaded,
    ServeUnavailable,
    parse_address,
)
from repro.serve.protocol import MatrixQuery, ProtocolError
from repro.serve.scheduler import (
    Draining,
    ExperimentScheduler,
    MatrixTicket,
    Overloaded,
)
from repro.serve.server import ExperimentServer

__all__ = [
    "Draining",
    "ExperimentScheduler",
    "ExperimentServer",
    "MatrixQuery",
    "MatrixTicket",
    "Overloaded",
    "ProtocolError",
    "ServeClient",
    "ServeDraining",
    "ServeError",
    "ServeOverloaded",
    "ServeUnavailable",
    "parse_address",
]
