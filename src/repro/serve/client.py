"""Client side of the serve protocol.

:class:`ServeClient` speaks one request per connection (the daemon is
connection-per-thread; short connections keep a slow client from
pinning a handler thread between requests) and surfaces the protocol's
typed errors as typed exceptions, so callers can distinguish "back off"
(:class:`ServeOverloaded`), "daemon going away" (:class:`ServeDraining`)
and "no daemon there at all" (:class:`ServeUnavailable`) — the
distinction :func:`repro.experiments.runner.run_matrix`'s ``serve=``
path uses to fall back to local execution.

:meth:`ServeClient.run_matrix` mirrors the local
:func:`~repro.experiments.runner.run_matrix` contract: it returns a
:class:`~repro.experiments.runner.RunMatrixResult` whose cells are
bit-identical to a local run (the daemon ships the store's own result
encoding), raises :class:`~repro.exec.policy.SweepError` naming cells
that failed or missed the deadline after delivering everything that
completed, and streams ``progress`` in deterministic spec order.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.net import (
    TRANSIENT_CONNECT_ERRNOS,
    connect_with_retries,
    parse_hostport,
)
from repro.core.results import SimulationResult
from repro.exec.policy import FaultPolicy, SweepError
from repro.serve import protocol

__all__ = [
    "DEFAULT_MATRIX_TIMEOUT",
    "ServeClient",
    "ServeDraining",
    "ServeError",
    "ServeOverloaded",
    "ServeUnavailable",
    "parse_address",
]

#: Default read-timeout for matrix requests whose query carries no
#: deadline.  Without it ``timeout=None`` waits forever on a daemon
#: that accepted the connection and then hung — a cluster dispatch
#: must always come back with *something* so the pool can redispatch.
DEFAULT_MATRIX_TIMEOUT = 600.0

#: Back-compat alias; the canonical set lives in ``repro.common.net``
#: now that the remote-store client shares the same retry policy.
_TRANSIENT_CONNECT_ERRNOS = TRANSIENT_CONNECT_ERRNOS


class ServeError(Exception):
    """Any client-visible failure talking to a serve daemon."""


class ServeUnavailable(ServeError):
    """No daemon reachable at the address (or it hung up mid-request)."""


class ServeOverloaded(ServeError):
    """The daemon refused admission; back off and retry (or run local)."""


class ServeDraining(ServeError):
    """The daemon is shutting down and no longer admits work."""


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` or bare ``"port"`` -> ``(host, port)``."""
    try:
        return parse_hostport(address)
    except ValueError:
        raise ServeError(f"bad serve address {address!r} "
                         f"(want host:port)") from None


class ServeClient:
    """A daemon handle; methods open one connection per request."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 connect_timeout: float = 5.0,
                 connect_retries: int = 2,
                 connect_backoff: float = 0.2,
                 matrix_timeout: Optional[float] = DEFAULT_MATRIX_TIMEOUT,
                 ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.connect_retries = max(0, int(connect_retries))
        self.connect_backoff = connect_backoff
        self.matrix_timeout = matrix_timeout
        self._backoff_policy = FaultPolicy(
            timeout=None, retries=self.connect_retries,
            backoff=connect_backoff, backoff_max=2.0,
        )

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def at(cls, address: str, **kwargs: Any) -> "ServeClient":
        host, port = parse_address(address)
        return cls(host, port, **kwargs)

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        """Connect with bounded retries on transient refusals.

        ECONNREFUSED/ECONNRESET during the handshake get
        ``connect_retries`` more chances, spaced by the same
        deterministically-jittered exponential backoff the pools use
        (keyed on the address, so a fleet of clients does not retry in
        lockstep).  Everything else raises immediately.  The loop
        itself lives in :func:`repro.common.net.connect_with_retries`,
        shared with the remote-store client.
        """
        try:
            return connect_with_retries(
                self.host, self.port, timeout=self.connect_timeout,
                policy=self._backoff_policy, key=self.address,
            )
        except OSError as exc:
            raise ServeUnavailable(
                f"no serve daemon at {self.address} ({exc})"
            ) from None

    def request(self, message: Dict[str, Any],
                timeout: Optional[float] = None) -> Dict[str, Any]:
        """One request/response round trip; raises typed errors.

        ``timeout`` bounds the wait for the *response* (connection
        establishment has its own ``connect_timeout`` and retry
        budget); None waits indefinitely — matrix requests bound
        themselves via :attr:`matrix_timeout` or the protocol-level
        ``deadline`` instead, so the daemon answers with partial
        results rather than the socket going dark.
        """
        sock = self._connect()
        try:
            sock.settimeout(timeout)
            with sock.makefile("rwb") as stream:
                protocol.write_message(stream, message, target=self.address)
                try:
                    response = protocol.read_message(
                        stream, target=self.address)
                except protocol.ProtocolError as exc:
                    raise ServeError(f"bad response: {exc}") from None
        except socket.timeout:
            raise ServeError(
                f"daemon at {self.host}:{self.port} did not answer "
                f"within {timeout}s"
            ) from None
        except OSError as exc:
            raise ServeUnavailable(
                f"connection to {self.host}:{self.port} failed ({exc})"
            ) from None
        finally:
            sock.close()
        if response is None:
            raise ServeUnavailable(
                f"daemon at {self.host}:{self.port} hung up mid-request"
            )
        if response.get("ok"):
            return response
        code = response.get("error")
        message_text = response.get("message", "")
        if code == protocol.ERROR_OVERLOADED:
            raise ServeOverloaded(message_text)
        if code == protocol.ERROR_DRAINING:
            raise ServeDraining(message_text)
        raise ServeError(f"{code}: {message_text}")

    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"}, timeout=self.connect_timeout)

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"}, timeout=self.connect_timeout)

    def metrics(self) -> str:
        """The daemon's metrics in Prometheus text exposition format."""
        response = self.request({"op": "metrics"},
                                timeout=self.connect_timeout)
        return response.get("text", "")

    def drain(self) -> Dict[str, Any]:
        return self.request({"op": "drain"}, timeout=self.connect_timeout)

    def matrix(self, query: protocol.MatrixQuery) -> Dict[str, Any]:
        """The raw matrix response (``cells`` undecoded)."""
        # A deadline-carrying query bounds the socket wait with a bit
        # of slack for transfer time; a deadline-less one falls back to
        # the client-level matrix_timeout (which may be None for the
        # old unbounded behavior, but defaults bounded).
        if query.deadline is not None:
            timeout: Optional[float] = query.deadline + 30.0
        else:
            timeout = self.matrix_timeout
        return self.request(query.to_wire(), timeout=timeout)

    def run_matrix(
        self,
        benchmarks: Sequence[str],
        widths: Sequence[int] = (8,),
        archs: Optional[Sequence[str]] = None,
        layouts: Sequence[bool] = (False, True),
        instructions: int = 100_000,
        warmup: Optional[int] = None,
        scale: float = 1.0,
        engine_mode: Optional[str] = None,
        deadline: Optional[float] = None,
        progress: Optional[Callable[[SimulationResult], None]] = None,
    ) -> "Any":
        """Remote ``run_matrix``: same arguments, same result contract."""
        from repro.experiments.configs import ARCHITECTURES
        from repro.experiments.runner import (
            RunMatrixResult,
            RunSpec,
            matrix_specs,
        )

        if archs is None:
            archs = tuple(ARCHITECTURES)
        query = protocol.MatrixQuery(
            benchmarks=tuple(benchmarks), widths=tuple(widths),
            archs=tuple(archs), layouts=tuple(layouts),
            instructions=instructions,
            warmup=instructions // 3 if warmup is None else warmup,
            scale=float(scale), engine_mode=engine_mode, deadline=deadline,
        )
        response = self.matrix(query)
        cells = response.get("cells")
        specs = matrix_specs(query.benchmarks, query.widths, query.archs,
                             query.layouts)
        if not isinstance(cells, list) or len(cells) != len(specs):
            raise ServeError(
                f"daemon answered {len(cells) if isinstance(cells, list) else 'no'} "
                f"cells for a {len(specs)}-cell matrix"
            )
        out = RunMatrixResult(instructions=instructions, scale=query.scale)
        failures: Dict[Any, List[str]] = {}
        for spec, cell in zip(specs, cells):
            wire_spec = RunSpec(cell.get("arch"), cell.get("benchmark"),
                                cell.get("width"), cell.get("optimized"))
            if wire_spec != spec:
                raise ServeError(
                    f"daemon cell order diverged: expected {spec}, "
                    f"got {wire_spec}"
                )
            status = cell.get("status")
            if status == protocol.CELL_OK:
                result = protocol.decode_result(cell["result"])
                out.add(spec, result)
                if progress is not None:
                    progress(result)
            elif status == protocol.CELL_DEADLINE:
                failures[spec] = [
                    f"deadline: not finished within {deadline}s"
                ]
            else:
                failures[spec] = [cell.get("error") or "failed"]
        if failures:
            raise SweepError(failures, completed=len(out.results))
        return out
