"""Admission, coalescing and execution for the experiment daemon.

:class:`ExperimentScheduler` is the daemon's core, independent of any
socket: connection handlers :meth:`~ExperimentScheduler.submit` a
validated :class:`~repro.serve.protocol.MatrixQuery` and block on the
returned :class:`MatrixTicket`; a single executor thread drains the
cell queue through a persistent worker pool.  The layering puts every
robustness mechanism this repo already has under one long-lived roof:

**Admission.**  A query decomposes into per-cell result fingerprints
(:func:`~repro.experiments.runner.cell_fingerprints` — the same
identity the store and sweep journals key on).  Cells already in the
store are answered from it without touching the queue.  The rest claim
entries in a :class:`~repro.store.pending.PendingRegistry`: the first
request to want a cold cell *owns* it (one queue entry), every
concurrent identical request *coalesces* onto the in-flight cell — N
clients asking for the same cold matrix cost one simulation per cell.
Admission is refused with :class:`Overloaded` when the owned-cell
backlog would exceed ``queue_limit`` (subscribing to in-flight cells is
always admitted — coalescing is how an overloaded daemon converges),
and with :class:`Draining` once shutdown began.

**Deadlines.**  A request's deadline bounds :meth:`MatrixTicket.wait`,
not the work: on expiry the ticket reports unfinished cells as
``deadline`` (alongside every finished one) and releases its claims, so
queued cells nobody else wants are dropped unrun, while cells already
computing still finish into the store for the next request.

**Pool watchdog.**  Batches run through a resident
:class:`~repro.exec.pool.ForkServerPool` (crash isolation + hard
attempt deadlines), rebuilt on the next batch if a sweep left it
degraded or broken — with exponentially backed-off delay, and after
``max_pool_strikes`` consecutive strikes the scheduler pins itself to a
:class:`~repro.exec.pool.SerialPool` for the rest of its life (one
warning).  The module-level program cache lives in the parent, so pool
churn never relinks images.

**Durability.**  Each settled cell is stored and journaled *before* its
registry cell resolves, so by the time any client sees a result it
would survive SIGKILL; restart recovery is then just the admission
probe finding the cells in the store.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import deque
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.accel import resolve_engine_mode
from repro.common.warnonce import warn_once
from repro.exec.journal import SweepJournal, sweep_fingerprint
from repro.exec.policy import FaultPolicy, SweepError
from repro.exec.pool import ForkServerPool, Job, Pool, SerialPool
from repro.experiments.runner import (
    RunSpec,
    _default_cache,
    _result_meta,
    _run_cell_worker,
    _worker_init,
    cell_fingerprints,
    matrix_specs,
    program_fingerprints,
)
from repro.serve.protocol import (
    CELL_DEADLINE,
    CELL_FAILED,
    CELL_OK,
    MatrixQuery,
)
from repro.store import ArtifactCache, PendingCell, PendingRegistry
from repro.store.store import ArtifactStore

__all__ = ["Draining", "ExperimentScheduler", "MatrixTicket", "Overloaded"]

#: How many times one queued cell may survive a pool-machinery failure
#: before it is failed outright instead of requeued.
MAX_CELL_DISPATCHES = 3


class Overloaded(Exception):
    """Admission refused: the cold-cell backlog is at capacity."""


class Draining(Exception):
    """Admission refused: the scheduler is shutting down."""


class _CellTask:
    """One owned cold cell on the executor queue."""

    __slots__ = ("fp", "spec", "args", "fallback", "cell", "dispatches")

    def __init__(self, fp: str, spec: RunSpec, args: Tuple,
                 fallback: Optional[Tuple], cell: PendingCell) -> None:
        self.fp = fp
        self.spec = spec
        self.args = args
        self.fallback = fallback
        self.cell = cell
        self.dispatches = 0


class CellOutcome:
    """One cell of a ticket's answer."""

    __slots__ = ("spec", "fp", "status", "source", "result", "error")

    def __init__(self, spec: RunSpec, fp: str, status: str, source: str,
                 result: Any = None, error: Optional[str] = None) -> None:
        self.spec = spec
        self.fp = fp
        self.status = status          # CELL_OK | CELL_FAILED | CELL_DEADLINE
        self.source = source          # "store" | "computed" | "coalesced"
        self.result = result
        self.error = error


class MatrixTicket:
    """A submitted request: wait on it for per-cell outcomes.

    ``wait`` returns outcomes in the query's deterministic spec order
    (:func:`~repro.experiments.runner.matrix_specs`), which is what the
    wire protocol streams back.
    """

    def __init__(
        self,
        scheduler: "ExperimentScheduler",
        query: MatrixQuery,
        specs: List[RunSpec],
        fps: Dict[RunSpec, str],
        warm: Dict[RunSpec, Any],
        claims: Dict[RunSpec, Tuple[PendingCell, bool]],
    ) -> None:
        self._scheduler = scheduler
        self.query = query
        self.specs = specs
        self.fps = fps
        self._warm = warm
        self._claims = claims
        self._admitted = time.monotonic()
        self._waited = False

    def _remaining(self) -> Optional[float]:
        if self.query.deadline is None:
            return None
        return max(0.0, self.query.deadline
                   - (time.monotonic() - self._admitted))

    def wait(self) -> List[CellOutcome]:
        """Block (up to the query deadline) and collect every cell.

        Single-shot: releases this ticket's registry claims, so the
        scheduler may drop queued cells nobody else is waiting for.
        """
        if self._waited:
            raise RuntimeError("ticket already waited on")
        self._waited = True
        outcomes: List[CellOutcome] = []
        for spec in self.specs:
            fp = self.fps[spec]
            if spec in self._warm:
                outcomes.append(CellOutcome(
                    spec, fp, CELL_OK, "store", result=self._warm[spec]
                ))
                continue
            cell, owner = self._claims[spec]
            source = "computed" if owner else "coalesced"
            if cell.wait(self._remaining()):
                status, value, error = cell.outcome()
                if status == "ok":
                    outcomes.append(CellOutcome(
                        spec, fp, CELL_OK, source, result=value
                    ))
                else:
                    outcomes.append(CellOutcome(
                        spec, fp, CELL_FAILED, source, error=error
                    ))
            else:
                outcomes.append(CellOutcome(spec, fp, CELL_DEADLINE, source))
            self._scheduler._release_claim(fp, cell)
        return outcomes


class ExperimentScheduler:
    """The daemon's admission/coalescing/execution core (socket-free)."""

    def __init__(
        self,
        store_root: Optional[str] = None,
        max_workers: int = 1,
        queue_limit: int = 256,
        policy: Optional[FaultPolicy] = None,
        max_pool_strikes: int = 3,
        pool_backoff: float = 0.5,
        use_fork_pool: Optional[bool] = None,
        store_peers: object = None,
    ) -> None:
        self.store_root = store_root
        self.max_workers = max(1, max_workers)
        self.queue_limit = queue_limit
        self.policy = policy or FaultPolicy()
        self.max_pool_strikes = max_pool_strikes
        self.pool_backoff = pool_backoff
        if use_fork_pool is None:
            import multiprocessing
            use_fork_pool = \
                multiprocessing.get_start_method(allow_none=False) == "fork"
        self._use_fork_pool = use_fork_pool

        if store_root is not None and store_peers:
            # Federated daemon: admission probes read through to the
            # peers, settled cells replicate write-behind.  Workers
            # keep plain local stores (the parent owns all store I/O
            # that matters: admission happens here and settled results
            # are put here).
            from repro.store.remote.tiered import TieredStore
            store: ArtifactStore = TieredStore(store_root, store_peers)
        elif store_root is not None:
            store = ArtifactStore(store_root)
        self._artifacts: Optional[ArtifactCache] = (
            ArtifactCache(store) if store_root is not None else None
        )
        #: Daemon-lifetime flight recorder at ``runs/daemon.events``
        #: (requests overlap inside shared batches, so per-request
        #: recorders would misattribute cells; one stream per daemon is
        #: the honest granularity).  None when storeless or REPRO_OBS=0.
        self._recorder = (
            obs.sweep_recorder(self._artifacts.store.events_path("daemon"))
            if self._artifacts is not None else None
        )
        self._registry = PendingRegistry()
        self._lock = threading.Condition()
        self._queue: deque = deque()
        #: Owned cells admitted but not yet settled (queued + in-flight)
        #: — the quantity ``queue_limit`` bounds.
        self._backlog = 0
        self._draining = False

        #: fp -> journals awaiting that cell (guarded by _journal_lock).
        self._journals: Dict[str, List[SweepJournal]] = {}
        self._journal_lock = threading.Lock()

        # pool state (executor thread only, except status reads)
        self._pool: Optional[Pool] = None
        self._pool_kind = "none"
        self._pool_strikes = 0
        self._pool_rebuilds = 0
        self._serial_pinned = not self._use_fork_pool
        #: Per-scheduler warn-once registry (one pinned notice per
        #: scheduler, matching the retired per-instance flag).
        self._warn_keys: Set[str] = set()

        # counters (status surface)
        self.started = time.monotonic()
        self.requests = 0
        self.cells_computed = 0
        self.cells_failed = 0
        self.cells_dropped = 0

        self._thread = threading.Thread(
            target=self._executor_loop, name="serve-executor", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, query: MatrixQuery) -> MatrixTicket:
        """Admit one query; raises :class:`Overloaded` / :class:`Draining`.

        Store probing happens before any admission state is touched, so
        a fully-warm request costs no queue capacity at all.
        """
        specs = matrix_specs(query.benchmarks, query.widths, query.archs,
                             query.layouts)
        program_fps = program_fingerprints(specs, query.scale)
        fps = cell_fingerprints(specs, query.instructions, query.warmup,
                                query.scale, program_fps=program_fps)

        warm: Dict[RunSpec, Any] = {}
        if self._artifacts is not None:
            for spec in specs:
                hit = self._artifacts.result(fps[spec])
                if hit is not None:
                    warm[spec] = hit

        cold = [spec for spec in specs if spec not in warm]
        mode = resolve_engine_mode(query.engine_mode)

        with self._lock:
            if self._draining:
                raise Draining("scheduler is draining")
            if query.deadline is not None and query.deadline <= 0:
                raise Overloaded("deadline already expired at admission")
            claims: Dict[RunSpec, Tuple[PendingCell, bool]] = {
                spec: self._registry.claim(fps[spec]) for spec in cold
            }
            owned = [spec for spec, (_, owner) in claims.items() if owner]
            if self._backlog + len(owned) > self.queue_limit:
                for spec, (cell, _) in claims.items():
                    self._registry.release(fps[spec], cell)
                raise Overloaded(
                    f"cold-cell backlog {self._backlog} + {len(owned)} "
                    f"would exceed queue_limit={self.queue_limit}"
                )
            self.requests += 1
            obs.SERVE_ADMISSIONS.inc()
            coalesced = len(cold) - len(owned)
            if coalesced:
                obs.SERVE_COALESCED.inc(coalesced)
            obs.record_event(
                "admit", cells=len(specs), warm=len(warm),
                owned=len(owned), coalesced=coalesced,
            )
            journal = self._make_journal(specs, fps, warm, owned)
            for spec in specs:  # deterministic queue order
                if spec not in claims or not claims[spec][1]:
                    continue  # warm, or coalesced onto another request
                cell, _ = claims[spec]
                args = (spec, query.instructions, query.warmup, query.scale,
                        program_fps[(spec.benchmark, spec.optimized)], mode)
                fallback = (
                    args[:-1] + ("interp",) if mode == "accel" else None
                )
                self._queue.append(
                    _CellTask(fps[spec], spec, args, fallback, cell)
                )
                if journal is not None:
                    with self._journal_lock:
                        self._journals.setdefault(fps[spec], []) \
                            .append(journal)
            self._backlog += len(owned)
            obs.SERVE_QUEUE_DEPTH.set(self._backlog)
            self._lock.notify_all()

        return MatrixTicket(self, query, specs, fps, warm, claims)

    def _make_journal(
        self,
        specs: List[RunSpec],
        fps: Dict[RunSpec, str],
        warm: Dict[RunSpec, Any],
        owned: List[RunSpec],
    ) -> Optional[SweepJournal]:
        """One sweep journal per admitted request (store-backed only).

        Warm cells are journaled immediately; owned cold cells append as
        they settle, so a SIGKILLed daemon leaves behind an honest
        partial journal whose missing lines are exactly the unfinished
        cells.  Fully-warm requests whose journal is thereby complete
        need no registration at all.
        """
        if self._artifacts is None or (not owned and not warm):
            return None
        journal = SweepJournal(
            self._artifacts.store, sweep_fingerprint(fps.values()),
            len(specs),
        )
        journal.read()
        with self._journal_lock:
            for spec in warm:
                journal.append(fps[spec])
        return journal

    def _release_claim(self, fp: str, cell: PendingCell) -> None:
        self._registry.release(fp, cell)

    # ------------------------------------------------------------------
    # executor
    # ------------------------------------------------------------------
    def _executor_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._draining:
                    self._lock.wait()
                if not self._queue and self._draining:
                    break
                batch = list(self._queue)
                self._queue.clear()
            runnable: List[_CellTask] = []
            for task in batch:
                if task.cell.abandoned():
                    # Every subscriber gave up before it started: drop
                    # it unrun (the registry already forgot the cell).
                    self._forget_journals(task.fp)
                    self.cells_dropped += 1
                    obs.SERVE_CELLS.inc(outcome="dropped")
                    self._settle_backlog(1)
                    continue
                task.cell.mark_started()
                runnable.append(task)
            if runnable:
                self._run_batch(runnable)
        self._teardown_pool()
        if self._recorder is not None:
            obs.record_event("drained", requests=self.requests,
                             computed=self.cells_computed)
            obs.detach(self._recorder)

    def _settle_backlog(self, n: int) -> None:
        with self._lock:
            self._backlog -= n
            obs.SERVE_QUEUE_DEPTH.set(self._backlog)

    def _forget_journals(self, fp: str) -> None:
        with self._journal_lock:
            self._journals.pop(fp, None)

    def _journal_settled(self, fp: str) -> None:
        with self._journal_lock:
            for journal in self._journals.pop(fp, []):
                journal.append(fp)

    def _prelink_images(self, runnable: List[_CellTask]) -> None:
        """Link or store-load each batch image once, in the parent.

        Freshly forked workers inherit the warm cache; resident or
        spawn workers at least find the image in the store instead of
        relinking.  The cache is module-level, so it survives pool
        churn — a rebuilt pool never pays linking again.
        """
        cache = _default_cache()
        seen = set()
        for task in runnable:
            spec, scale, key = task.spec, task.args[3], task.args[4]
            image = (spec.benchmark, spec.optimized, scale)
            if image in seen:
                continue
            seen.add(image)
            try:
                cache.get(spec.benchmark, spec.optimized, scale, key=key,
                          artifacts=self._artifacts)
            except Exception as exc:
                # Linking failures surface per-cell through the pool
                # (with retries/fallback), not as a batch abort.
                warnings.warn(
                    f"repro.serve: pre-linking {image} failed ({exc}); "
                    f"workers will link on demand",
                    RuntimeWarning, stacklevel=2,
                )

    def _ensure_pool(self) -> Pool:
        if self._pool is not None:
            fork = isinstance(self._pool, ForkServerPool)
            if not fork or not (self._pool.closed or self._pool.degraded):
                return self._pool
            # A sweep left the fork pool degraded or torn down: retire
            # it and rebuild below.
            self._retire_pool(strike=True)
        if self._serial_pinned:
            self._pool = SerialPool(policy=self.policy)
            self._pool_kind = "serial"
            return self._pool
        if self._pool_rebuilds:
            # Exponential backoff between pool builds — a host that
            # keeps killing workers gets geometrically quieter retries.
            delay = min(self.pool_backoff * (2 ** (self._pool_strikes - 1))
                        if self._pool_strikes else 0.0, 30.0)
            if delay > 0:
                time.sleep(delay)
        self._pool = ForkServerPool(
            self.max_workers, initializer=_worker_init,
            initargs=(self.store_root,), policy=self.policy,
        )
        self._pool_rebuilds += 1
        self._pool_kind = "fork"
        return self._pool

    def _retire_pool(self, strike: bool) -> None:
        if self._pool is not None:
            try:
                self._pool.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        self._pool = None
        self._pool_kind = "none"
        if not strike:
            return
        self._pool_strikes += 1
        if self._pool_strikes >= self.max_pool_strikes \
                and not self._serial_pinned:
            self._serial_pinned = True
            warn_once(
                "serve.pinned",
                f"repro.serve: {self._pool_strikes} consecutive worker "
                f"pools failed; running all further cells serially in "
                f"the daemon process",
                stacklevel=3, registry=self._warn_keys,
            )

    def _teardown_pool(self) -> None:
        self._retire_pool(strike=False)

    def _run_batch(self, runnable: List[_CellTask]) -> None:
        # Job keys carry the spec (readable logs, fault-plan matching by
        # cell name) and the fp (uniqueness when two requests queue the
        # same spec under different parameters).
        by_key = {(task.spec, task.fp): task for task in runnable}
        self._prelink_images(runnable)
        jobs = [Job((task.spec, task.fp), task.args,
                    fallback_args=task.fallback) for task in runnable]

        def on_completed(job: Job, result: Any) -> None:
            task = by_key[job.key]
            if self._artifacts is not None:
                spec = task.spec
                self._artifacts.put_result(
                    task.fp, result,
                    meta=_result_meta(spec, task.args[1], task.args[2],
                                      task.args[3]),
                )
            self._journal_settled(task.fp)
            self._registry.resolve(task.fp, result)
            self.cells_computed += 1
            obs.SERVE_CELLS.inc(outcome="computed")
            self._settle_backlog(1)

        try:
            pool = self._ensure_pool()
            pool.run(_run_cell_worker, jobs, completed=on_completed)
        except SweepError as exc:
            # The pool machinery worked; these cells exhausted their
            # per-cell fault budget (retries + engine fallback).
            for key, messages in exc.failures.items():
                self._fail_task(by_key[key],
                                messages[-1] if messages else "failed")
        except Exception as exc:
            # The pool itself broke.  Requeue unsettled cells (bounded
            # per cell) and strike the pool; the next batch rebuilds it.
            self._retire_pool(strike=True)
            requeue: List[_CellTask] = []
            for task in runnable:
                if task.cell.settled:
                    continue
                task.dispatches += 1
                if task.dispatches >= MAX_CELL_DISPATCHES:
                    self._fail_task(
                        task,
                        f"pool failed {task.dispatches} times "
                        f"({type(exc).__name__}: {exc})",
                    )
                else:
                    requeue.append(task)
            if requeue:
                with self._lock:
                    self._queue.extendleft(reversed(requeue))
                    self._lock.notify_all()
            return
        if isinstance(self._pool, ForkServerPool) and self._pool.degraded:
            # The sweep finished but only by degrading to serial: retire
            # the carcass now so status never advertises a dead pool.
            self._retire_pool(strike=True)
        else:
            self._pool_strikes = 0

    def _fail_task(self, task: _CellTask, error: str) -> None:
        self._forget_journals(task.fp)
        self._registry.fail(task.fp, error)
        self.cells_failed += 1
        obs.SERVE_CELLS.inc(outcome="failed")
        obs.record_event(
            "cell_failed", cell=str(task.spec), fp=task.fp, error=error,
        )
        self._settle_backlog(1)

    # ------------------------------------------------------------------
    # health + lifecycle
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The health surface (everything JSON-serializable)."""
        cache = _default_cache()
        trace_records = sum(
            len(program._trace_records) for program in cache._cache.values()
        )
        pool = self._pool
        store: Dict[str, Any] = {"root": self.store_root}
        if self._artifacts is not None:
            store["hits"] = dict(self._artifacts.hits)
            store["misses"] = dict(self._artifacts.misses)
            remote_stats = getattr(self._artifacts.store,
                                   "remote_stats", None)
            if callable(remote_stats):
                store["remote"] = remote_stats()
        with self._lock:
            queue = {
                "backlog": self._backlog,
                "queued": len(self._queue),
                "limit": self.queue_limit,
            }
        return {
            "uptime": time.monotonic() - self.started,
            "draining": self._draining,
            "requests": self.requests,
            "cells": {
                "computed": self.cells_computed,
                "failed": self.cells_failed,
                "dropped": self.cells_dropped,
                "coalesced": self._registry.coalesced,
                "pending": self._registry.depth(),
                # Owned cells handed to the pool but not yet settled —
                # the backlog minus what still sits in the queue.
                "in_flight": max(0, queue["backlog"] - queue["queued"]),
            },
            "queue": queue,
            "pool": {
                "kind": self._pool_kind,
                "workers": self.max_workers,
                "alive": (pool.alive_workers
                          if isinstance(pool, ForkServerPool) else 0),
                "builds": self._pool_rebuilds,
                "strikes": self._pool_strikes,
                "serial_pinned": self._serial_pinned,
                # Uniform utilization surface (attempts dispatched /
                # completed, per slot for worker-backed pools) — the
                # same shape ClusterPool reports per node.
                "utilization": (pool.worker_stats()
                                if pool is not None else None),
            },
            "resident": {
                "programs": len(cache._cache),
                "trace_records": trace_records,
            },
            "store": store,
        }

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, finish (and journal) everything queued.

        Returns True once the executor exited; False on timeout (the
        executor keeps finishing in the background either way).
        """
        with self._lock:
            self._draining = True
            self._lock.notify_all()
        self._thread.join(timeout)
        if self._artifacts is not None:
            close = getattr(self._artifacts.store, "close", None)
            if callable(close):
                close()  # bounded write-behind flush, then stop
        return not self._thread.is_alive()
