"""The experiment daemon's socket front end.

A thin, threaded TCP layer over :class:`ExperimentScheduler`: one
handler thread per connection, each looping over LDJSON requests (see
:mod:`repro.serve.protocol`).  All experiment logic — admission,
coalescing, pools, journals — lives in the scheduler; this module only
maps wire messages to scheduler calls and exceptions to typed error
responses, so every scheduler behaviour is testable without a socket.

Shutdown is graceful by construction: ``drain`` (the wire op, or
SIGTERM in the ``__main__`` runner) stops admission first, lets the
executor finish and journal everything already queued, and only then
stops accepting connections — a client that made it past admission
always gets its response.
"""

from __future__ import annotations

import os
import socketserver
import threading
import time
from typing import Any, Dict, Optional

from repro import obs
from repro.serve import protocol
from repro.serve.scheduler import Draining, ExperimentScheduler, Overloaded

__all__ = ["ExperimentServer"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a sequence of request/response message pairs."""

    server: "_TCPServer"

    def handle(self) -> None:
        while True:
            try:
                message = protocol.read_message(
                    self.rfile, max_bytes=self.server.max_frame_bytes)
            except protocol.FrameTooLarge as exc:
                self._respond(protocol.error_response(
                    protocol.ERROR_FRAME_TOO_LARGE, str(exc),
                    limit=self.server.max_frame_bytes,
                ))
                return  # the oversized line is still in the stream
            except protocol.ProtocolError as exc:
                self._respond(protocol.error_response(
                    protocol.ERROR_BAD_REQUEST, str(exc)
                ))
                return  # framing is gone; the stream cannot be resynced
            except OSError:
                return
            if message is None:
                return
            try:
                response = self.server.dispatch(message)
            except protocol.ProtocolError as exc:
                response = protocol.error_response(
                    protocol.ERROR_BAD_REQUEST, str(exc)
                )
            except Overloaded as exc:
                response = protocol.error_response(
                    protocol.ERROR_OVERLOADED, str(exc)
                )
            except Draining as exc:
                response = protocol.error_response(
                    protocol.ERROR_DRAINING, str(exc)
                )
            except Exception as exc:
                response = protocol.error_response(
                    protocol.ERROR_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                )
            if not self._respond(response):
                return

    def _respond(self, response: Dict[str, Any]) -> bool:
        try:
            protocol.write_message(self.wfile, response)
            return True
        except OSError:
            return False  # client went away; its cells still finish


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, scheduler: ExperimentScheduler,
                 max_frame_bytes: Optional[int] = None) -> None:
        super().__init__(address, _Handler)
        self.scheduler = scheduler
        self.max_frame_bytes = (protocol.MAX_LINE_BYTES
                                if max_frame_bytes is None
                                else int(max_frame_bytes))
        self.started = time.monotonic()
        self._drain_started = threading.Event()

    # ------------------------------------------------------------------
    def dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op in protocol._OPS:
            obs.SERVE_REQUESTS.inc(op=op)
        if op == "ping":
            from repro.store.remote import version_salt
            return {
                "ok": True, "op": "ping", "pid": os.getpid(),
                "version": protocol.PROTOCOL_VERSION,
                "max_frame": self.max_frame_bytes,
                "store_version": version_salt(),
            }
        if op == "status":
            status = self.scheduler.status()
            status.update(
                ok=True, op="status", pid=os.getpid(),
                version=protocol.PROTOCOL_VERSION,
            )
            return status
        if op == "metrics":
            # Prometheus text covering this process's registry — store,
            # exec, serve, accel and core families alike, since they
            # all share the process-global registry.
            return {"ok": True, "op": "metrics",
                    "content_type": obs.PROMETHEUS_CONTENT_TYPE,
                    "text": obs.render_prometheus()}
        if op == "drain":
            self.begin_drain()
            return {"ok": True, "op": "drain", "draining": True}
        if op == "matrix":
            started = time.perf_counter()
            try:
                return self._matrix(message)
            finally:
                obs.SERVE_REQUEST_SECONDS.observe(
                    time.perf_counter() - started
                )
        if op in ("store_has", "store_get", "store_put"):
            # Lazy import: the remote subpackage pulls cluster.health,
            # which imports back through serve — fine at dispatch time,
            # a cycle at module import time.
            from repro.store.remote import ops as remote_ops
            artifacts = getattr(self.scheduler, "_artifacts", None)
            store = artifacts.store if artifacts is not None else None
            return remote_ops.handle(store, message)
        raise protocol.ProtocolError(f"unknown op: {op!r}")

    def _matrix(self, message: Dict[str, Any]) -> Dict[str, Any]:
        query = protocol.parse_matrix_query(message)
        ticket = self.scheduler.submit(query)   # Overloaded/Draining here
        cells = []
        for outcome in ticket.wait():
            cell: Dict[str, Any] = protocol.spec_to_wire(outcome.spec)
            cell["status"] = outcome.status
            cell["fingerprint"] = outcome.fp
            if outcome.status == protocol.CELL_OK:
                cell["source"] = outcome.source
                cell["result"] = protocol.encode_result(outcome.result)
            elif outcome.status == protocol.CELL_FAILED:
                cell["error"] = outcome.error
            cells.append(cell)
        complete = all(
            cell["status"] == protocol.CELL_OK for cell in cells
        )
        return {"ok": True, "op": "matrix", "complete": complete,
                "cells": cells}

    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admission now; finish queued work; then stop serving.

        Idempotent.  The heavy lifting runs on a helper thread so the
        requesting connection still gets its acknowledgement.
        """
        if self._drain_started.is_set():
            return
        self._drain_started.set()

        def _drain() -> None:
            self.scheduler.drain()
            self.shutdown()

        threading.Thread(target=_drain, name="serve-drain",
                         daemon=True).start()

    @property
    def draining(self) -> bool:
        return self._drain_started.is_set()


class ExperimentServer:
    """A running daemon: scheduler + threaded TCP front end.

    Usable in-process (tests, the perf harness spin one up on an
    ephemeral port in a background thread) or via
    ``python -m repro.serve`` for a real daemon.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        scheduler: Optional[ExperimentScheduler] = None,
        max_frame_bytes: Optional[int] = None,
        **scheduler_kwargs: Any,
    ) -> None:
        self.scheduler = scheduler or ExperimentScheduler(**scheduler_kwargs)
        self._server = _TCPServer((host, port), self.scheduler,
                                  max_frame_bytes=max_frame_bytes)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` — resolves an ephemeral port 0."""
        return self._server.server_address[:2]

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Serve on the calling thread until drained or shut down."""
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()

    def start(self) -> "ExperimentServer":
        """Serve on a background thread (in-process embedding)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            name="serve-accept", daemon=True,
        )
        self._thread.start()
        return self

    def drain(self) -> None:
        """Graceful stop: no new work, finish the queue, stop serving."""
        self._server.begin_drain()

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Drain and wait for a background :meth:`start` to wind down."""
        self.drain()
        if self._thread is not None:
            self._thread.join(timeout)
        self._server.server_close()

    def __enter__(self) -> "ExperimentServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
