"""The serve wire protocol: line-delimited JSON over a stream socket.

One request, one response, each a single JSON object on its own
``\\n``-terminated line.  A connection may carry any number of
request/response pairs in sequence.  Binary payloads (simulation
results) travel base64-encoded in the store's own object-file encoding
(:mod:`repro.store.serialize`), so a daemon answer is **bit-identical**
to a local ``run_matrix`` by construction — the client decodes exactly
the bytes a store hit would have produced.

Requests::

    {"op": "ping"}
    {"op": "status"}
    {"op": "metrics"}
    {"op": "drain"}
    {"op": "matrix", "benchmarks": [...], "widths": [...],
     "archs": [...], "layouts": [...], "instructions": N,
     "warmup": N | null, "scale": F, "engine_mode": "accel"|"interp"|null,
     "deadline": SECONDS | null}
    {"op": "store_has", "version": SALT, "kind": K, "fps": [...] | null}
    {"op": "store_get", "version": SALT, "kind": K, "fp": FP}
    {"op": "store_put", "version": SALT, "kind": K, "fp": FP,
     "oid": OID, "data": BASE64, "meta": {...} | null}

The ``store_*`` ops (:mod:`repro.store.remote`) expose the daemon's
local artifact store to federated peers; ``version`` is the
``FORMAT_VERSION:code_version`` salt, so peers of a different code
generation are detected at the first request rather than mixing
incompatible artifacts.

Responses carry ``{"ok": true, ...}`` or a **typed error**
``{"ok": false, "error": CODE, "message": ...}`` with ``CODE`` one of

``bad_request``
    The request line did not parse or validate; nothing was admitted.
``overloaded``
    Admission control refused the request (queue at capacity, or its
    deadline cannot be met); nothing was queued.  Back off and retry.
``draining``
    The daemon is shutting down and no longer admits work.
``internal``
    The daemon hit an unexpected error serving this request.
``frame_too_large``
    The request line exceeded the daemon's frame limit (advertised as
    ``max_frame`` in the ``ping`` response); the connection is closed
    after the error, since the remainder of the oversized line is
    unparseable.
``integrity``
    A ``store_put`` payload failed oid verification (flipped bit in
    transit or a lying client); nothing was stored.
``version_skew``
    A ``store_*`` request's ``version`` salt does not match the
    daemon's; the response carries the daemon's ``version`` so the
    peer can warn once and stop asking.
``no_store``
    A ``store_*`` request reached a storeless daemon.

A ``matrix`` response's ``cells`` list follows the deterministic
enumeration of :func:`repro.experiments.runner.matrix_specs`; each
entry reports its own ``status`` — ``"ok"`` (with the encoded result
and a ``source`` of ``store`` / ``computed`` / ``coalesced``),
``"failed"`` (the cell exhausted the daemon's fault policy) or
``"deadline"`` (the request's deadline expired first; the daemon may
still finish and store the cell for the next request).
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass
from typing import IO, Any, Dict, List, Optional, Sequence, Tuple

from repro.core.results import SimulationResult
from repro.store import serialize
from repro.store.serialize import ArtifactDecodeError

PROTOCOL_VERSION = 1

#: One request or response line may not exceed this (a full-suite
#: matrix response with base64 results fits comfortably; an unbounded
#: line is a memory DoS on either side).
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Typed error codes (the closed set clients may dispatch on).
ERROR_BAD_REQUEST = "bad_request"
ERROR_OVERLOADED = "overloaded"
ERROR_DRAINING = "draining"
ERROR_INTERNAL = "internal"
ERROR_FRAME_TOO_LARGE = "frame_too_large"
ERROR_INTEGRITY = "integrity"
ERROR_VERSION_SKEW = "version_skew"
ERROR_NO_STORE = "no_store"

#: Per-cell statuses in a matrix response.
CELL_OK = "ok"
CELL_FAILED = "failed"
CELL_DEADLINE = "deadline"

_OPS = ("ping", "status", "metrics", "matrix", "drain",
        "store_has", "store_get", "store_put")


class ProtocolError(Exception):
    """A malformed or oversized message (maps to ``bad_request``)."""


class FrameTooLarge(ProtocolError):
    """A message line exceeded the frame limit (``frame_too_large``).

    Subclasses :class:`ProtocolError` so existing catch-all handling
    keeps working; servers catch it first to answer with the typed
    code and the limit that was exceeded.
    """


#: Late-bound network fault-injection seam.  ``repro.exec.faults``
#: points this at its handler when an active ``$REPRO_FAULTS`` plan
#: carries ``net_*`` kinds; otherwise it stays ``None`` and framing
#: pays one attribute test per message.  Called as
#: ``hook(direction, target, stream, data)`` with ``direction`` in
#: ``("write", "read")``, ``target`` the caller-supplied routing label
#: (the client passes ``"host:port"``; servers pass ``""``) and
#: ``data`` the encoded line about to be written (``b""`` for reads).
#: A truthy return means the hook consumed the write (nothing more is
#: sent); it may also sleep or raise ``OSError`` subclasses to emulate
#: refused/reset/slow links.
_net_fault_hook = None


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def write_message(stream: IO[bytes], message: Dict[str, Any],
                  target: str = "") -> None:
    """Serialize one message as a JSON line and flush it."""
    data = json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode("utf-8") + b"\n"
    hook = _net_fault_hook
    if hook is not None and hook("write", target, stream, data):
        return
    stream.write(data)
    stream.flush()


def read_message(stream: IO[bytes],
                 target: str = "",
                 max_bytes: Optional[int] = None,
                 ) -> Optional[Dict[str, Any]]:
    """Read one JSON-line message; None on a clean EOF.

    ``max_bytes`` caps the line length (default: the module-level
    :data:`MAX_LINE_BYTES`, looked up at call time so tests can lower
    it); servers pass their configured/negotiated limit.  Raises
    :class:`FrameTooLarge` on an oversized line and
    :class:`ProtocolError` on non-JSON bytes or a line that is not a
    JSON object.
    """
    hook = _net_fault_hook
    if hook is not None:
        hook("read", target, stream, b"")
    limit = MAX_LINE_BYTES if max_bytes is None else max_bytes
    line = stream.readline(limit + 1)
    if not line:
        return None
    if len(line) > limit:
        raise FrameTooLarge(
            f"message exceeds {limit} bytes"
        )
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def error_response(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    """A typed failure response."""
    out: Dict[str, Any] = {"ok": False, "error": code, "message": message}
    out.update(extra)
    return out


# ----------------------------------------------------------------------
# result payloads
# ----------------------------------------------------------------------
def encode_result(result: SimulationResult) -> str:
    """A result as base64 text of its store object encoding."""
    return base64.b64encode(serialize.dump_result(result)).decode("ascii")


def decode_result(payload: str) -> SimulationResult:
    """Inverse of :func:`encode_result`.

    Raises :class:`ProtocolError` on undecodable payloads — a serving
    daemon of a different code version produces a different store
    format, and the client must fail loudly rather than mix results.
    """
    try:
        data = base64.b64decode(payload.encode("ascii"), validate=True)
    except (ValueError, binascii.Error) as exc:
        raise ProtocolError(f"bad result payload: {exc}") from None
    try:
        return serialize.load_result(data)
    except ArtifactDecodeError as exc:
        raise ProtocolError(str(exc)) from None


# ----------------------------------------------------------------------
# matrix queries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MatrixQuery:
    """One validated matrix request (the daemon's unit of admission)."""

    benchmarks: Tuple[str, ...]
    widths: Tuple[int, ...]
    archs: Tuple[str, ...]
    layouts: Tuple[bool, ...]
    instructions: int
    warmup: int
    scale: float
    engine_mode: Optional[str] = None
    #: Wall-clock seconds the *client* is willing to wait; None waits
    #: indefinitely.  On expiry the daemon answers with per-cell
    #: partial results instead of blocking.
    deadline: Optional[float] = None

    def to_wire(self) -> Dict[str, Any]:
        return {
            "op": "matrix",
            "benchmarks": list(self.benchmarks),
            "widths": list(self.widths),
            "archs": list(self.archs),
            "layouts": list(self.layouts),
            "instructions": self.instructions,
            "warmup": self.warmup,
            "scale": self.scale,
            "engine_mode": self.engine_mode,
            "deadline": self.deadline,
        }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _str_seq(value: Any, name: str) -> Tuple[str, ...]:
    _require(isinstance(value, (list, tuple)) and value,
             f"{name} must be a non-empty list of strings")
    _require(all(isinstance(v, str) for v in value),
             f"{name} must contain only strings")
    return tuple(value)


def parse_matrix_query(message: Dict[str, Any]) -> MatrixQuery:
    """Validate one ``matrix`` request into a :class:`MatrixQuery`.

    Validation is strict and typed on purpose: an unknown benchmark or
    architecture must come back as one ``bad_request`` response, not as
    a per-cell failure after the request consumed queue capacity.
    """
    from repro.experiments.configs import ARCHITECTURES
    from repro.isa.workloads import SPEC_BENCHMARKS

    benchmarks = _str_seq(message.get("benchmarks"), "benchmarks")
    unknown = [b for b in benchmarks if b not in SPEC_BENCHMARKS]
    _require(not unknown, f"unknown benchmark(s): {', '.join(unknown)}")

    archs = _str_seq(message.get("archs", list(ARCHITECTURES)), "archs")
    bad_archs = [a for a in archs if a not in ARCHITECTURES]
    _require(not bad_archs,
             f"unknown architecture(s): {', '.join(bad_archs)}")

    widths_raw = message.get("widths", [8])
    _require(isinstance(widths_raw, (list, tuple)) and widths_raw,
             "widths must be a non-empty list of positive integers")
    _require(all(isinstance(w, int) and not isinstance(w, bool) and w > 0
                 for w in widths_raw),
             "widths must be a non-empty list of positive integers")
    widths = tuple(widths_raw)

    layouts_raw = message.get("layouts", [False, True])
    _require(isinstance(layouts_raw, (list, tuple)) and layouts_raw
             and all(isinstance(v, bool) for v in layouts_raw),
             "layouts must be a non-empty list of booleans")
    layouts = tuple(layouts_raw)

    instructions = message.get("instructions", 100_000)
    _require(isinstance(instructions, int) and not
             isinstance(instructions, bool) and instructions > 0,
             "instructions must be a positive integer")

    warmup = message.get("warmup")
    if warmup is None:
        warmup = instructions // 3
    _require(isinstance(warmup, int) and not isinstance(warmup, bool)
             and warmup >= 0, "warmup must be a non-negative integer")

    scale = message.get("scale", 1.0)
    _require(isinstance(scale, (int, float)) and not
             isinstance(scale, bool) and scale > 0,
             "scale must be a positive number")

    engine_mode = message.get("engine_mode")
    _require(engine_mode in (None, "auto", "accel", "interp"),
             "engine_mode must be one of accel, interp, auto, null")

    deadline = message.get("deadline")
    _require(deadline is None or (isinstance(deadline, (int, float))
             and not isinstance(deadline, bool)),
             "deadline must be a number of seconds or null")

    return MatrixQuery(
        benchmarks=benchmarks, widths=widths, archs=archs,
        layouts=layouts, instructions=instructions, warmup=warmup,
        scale=float(scale), engine_mode=engine_mode,
        deadline=float(deadline) if deadline is not None else None,
    )


def spec_to_wire(spec: Any) -> Dict[str, Any]:
    """One RunSpec as its wire dict (field names match RunSpec)."""
    return {
        "arch": spec.arch,
        "benchmark": spec.benchmark,
        "width": spec.width,
        "optimized": spec.optimized,
    }
