"""``python -m repro.serve`` — run or selftest the experiment daemon.

Serve mode binds the daemon and prints one ready line
(``repro-serve: listening on HOST:PORT``) so wrappers started with
``--port 0`` can discover the ephemeral port.  SIGTERM and SIGINT both
drain: admission stops, queued cells finish into the store and their
journals, then the process exits 0.

``python -m repro.serve selftest`` boots real daemon subprocesses and
proves the service claims end to end: request coalescing (N concurrent
identical cold requests, one simulation per cell), worker crashes and
hangs degrading per the fault ladder without corrupting responses,
store I/O errors costing only caching, client deadlines yielding
partial results, SIGKILL + restart re-simulating only missing cells,
and drain exiting cleanly — all against injected ``$REPRO_FAULTS``
plans, all checked bit-identical against a local ``run_matrix``.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from repro.exec.faults import FAULTS_ENV, FaultSpec, encode_plan
from repro.exec.policy import FaultPolicy
from repro.serve.client import ServeClient, ServeOverloaded
from repro.serve.protocol import MatrixQuery
from repro.serve.server import ExperimentServer


def serve(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-lived experiment daemon over the artifact store.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 binds an ephemeral port)")
    parser.add_argument("--store", metavar="DIR",
                        default=os.environ.get("REPRO_STORE"),
                        help="artifact store root (default: $REPRO_STORE; "
                             "omit to serve without persistence)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for cold cells")
    parser.add_argument("--queue-limit", type=int, default=256,
                        help="max owned cold cells admitted at once")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-attempt wall-clock deadline (seconds)")
    parser.add_argument("--retries", type=int, default=2,
                        help="per-cell retry budget")
    parser.add_argument("--store-peers", metavar="HOST:PORT[,...]",
                        default=os.environ.get("REPRO_STORE_PEERS"),
                        help="federated store peers to read through to "
                             "and replicate into (default: "
                             "$REPRO_STORE_PEERS; needs --store)")
    args = parser.parse_args(argv)

    policy = FaultPolicy(timeout=args.timeout, retries=args.retries)
    server = ExperimentServer(
        host=args.host, port=args.port,
        store_root=args.store or None, max_workers=args.workers,
        queue_limit=args.queue_limit, policy=policy,
        store_peers=(args.store_peers or None) if args.store else None,
    )
    host, port = server.address
    print(f"repro-serve: listening on {host}:{port}", flush=True)
    if args.store:
        print(f"repro-serve: store at {args.store}", flush=True)
        if args.store_peers:
            print(f"repro-serve: store peers {args.store_peers}",
                  flush=True)
    elif args.store_peers:
        print("repro-serve: ignoring --store-peers (no --store)",
              flush=True)

    def _drain_signal(signum: int, frame: Any) -> None:
        print(f"repro-serve: received signal {signum}, draining",
              flush=True)
        server.drain()

    signal.signal(signal.SIGTERM, _drain_signal)
    signal.signal(signal.SIGINT, _drain_signal)
    server.serve_forever()
    print("repro-serve: drained, exiting", flush=True)
    return 0


# ======================================================================
# selftest
# ======================================================================
#: The selftest matrix: two cells so fault plans can target one of them
#: ("ev8") while the other ("stream") proves unaffected work survives.
MATRIX = dict(
    benchmarks=("gzip",),
    widths=(8,),
    archs=("stream", "ev8"),
    layouts=(True,),
    instructions=3000,
    warmup=1000,
    scale=0.3,
)
N_CELLS = 2


def free_port(host: str = "127.0.0.1") -> int:
    """Reserve an OS-assigned port and release it immediately.

    Fleet helper: a fault plan that partitions *one node* needs to
    name that node's ``host:port`` before its daemon boots, which an
    ephemeral ``--port 0`` cannot provide.  The release-then-rebind
    race is theoretical in the selftest harness (nothing else binds
    localhost ports between the two calls).
    """
    import socket

    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class _Daemon:
    """One daemon subprocess with ready-line port discovery.

    ``port=0`` (the default) binds an ephemeral port, discovered from
    the ready line; a fixed ``port`` (see :func:`free_port`) lets the
    caller know the daemon's address in advance — the cluster
    selftest's per-node fault plans need that.
    """

    def __init__(self, store: Optional[str], *extra: str,
                 faults: Optional[str] = None, port: int = 0) -> None:
        env = dict(os.environ)
        env.pop(FAULTS_ENV, None)
        env.pop("REPRO_STORE", None)  # hermetic: --store or nothing
        env.pop("REPRO_STORE_PEERS", None)  # peers come via extra argv
        if faults is not None:
            env[FAULTS_ENV] = faults
        # The subprocess must import repro however the parent did
        # (examples insert src/ into sys.path, not PYTHONPATH).
        import repro

        src_root = os.path.dirname(
            os.path.abspath(list(repro.__path__)[0]))
        path = env.get("PYTHONPATH", "")
        if src_root not in path.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + path if path else "")
            )
        cmd = [sys.executable, "-m", "repro.serve",
               "--host", "127.0.0.1", "--port", str(port)]
        if store is not None:
            cmd += ["--store", store]
        cmd += list(extra)
        # Own process group: a SIGKILL must take the pool workers down
        # with the daemon, or their inherited connection FDs keep the
        # "dead" node's sockets established.
        self.proc = subprocess.Popen(
            cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, start_new_session=True,
        )
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline()
        prefix = "repro-serve: listening on "
        if not line.startswith(prefix):
            self.proc.kill()
            raise AssertionError(f"daemon did not come up: {line!r}")
        host, _, port = line[len(prefix):].strip().rpartition(":")
        self.client = ServeClient(host, int(port))
        # Drain the remaining stdout on a reaper thread so a chatty
        # daemon can never block on a full pipe.
        threading.Thread(target=self.proc.stdout.read, daemon=True).start()

    @property
    def address(self) -> str:
        return f"{self.client.host}:{self.client.port}"

    def kill(self) -> None:
        self._kill_group()
        self.proc.wait(timeout=60)

    def drain_and_wait(self, timeout: float = 300.0) -> int:
        self.client.drain()
        return self.proc.wait(timeout=timeout)

    def _kill_group(self) -> None:
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            self.proc.kill()

    def __enter__(self) -> "_Daemon":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.proc.poll() is None:
            self._kill_group()
            self.proc.wait(timeout=60)


def _query(**overrides: Any) -> MatrixQuery:
    params = dict(MATRIX)
    params.update(overrides)
    return MatrixQuery(
        benchmarks=params["benchmarks"], widths=params["widths"],
        archs=params["archs"], layouts=params["layouts"],
        instructions=params["instructions"], warmup=params["warmup"],
        scale=params["scale"],
        engine_mode=params.get("engine_mode"),
        deadline=params.get("deadline"),
    )


def _assert_identical(remote, base) -> None:
    assert remote.results == base.results, \
        "daemon results differ from a local run_matrix"


def _check_coalesce(base) -> None:
    """N concurrent identical cold requests -> one simulation per cell."""
    with tempfile.TemporaryDirectory() as root, _Daemon(root) as daemon:
        n_clients = 4
        barrier = threading.Barrier(n_clients)
        outputs: List[Any] = [None] * n_clients

        def request(i: int) -> None:
            barrier.wait()
            outputs[i] = daemon.client.run_matrix(**MATRIX)

        threads = [threading.Thread(target=request, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        for out in outputs:
            assert out is not None, "a concurrent request never finished"
            _assert_identical(out, base)
        status = daemon.client.status()
        cells = status["cells"]
        assert cells["computed"] == N_CELLS, (
            f"expected exactly {N_CELLS} simulations for {n_clients} "
            f"concurrent identical requests, daemon ran "
            f"{cells['computed']}"
        )
        assert cells["coalesced"] >= N_CELLS, \
            f"no coalescing happened: {cells}"
        # Warm re-request: served from the store, nothing recomputed.
        again = daemon.client.run_matrix(**MATRIX)
        _assert_identical(again, base)
        status = daemon.client.status()
        assert status["cells"]["computed"] == N_CELLS
        assert daemon.drain_and_wait() == 0


def _check_worker_kill(base) -> None:
    """A SIGKILLed worker costs a retry, never a wrong response."""
    plan = encode_plan(FaultSpec("kill", match="ev8", times=1))
    with tempfile.TemporaryDirectory() as root, \
            _Daemon(root, "--retries", "2", faults=plan) as daemon:
        out = daemon.client.run_matrix(**MATRIX)
        _assert_identical(out, base)
        status = daemon.client.status()
        assert status["cells"]["failed"] == 0, status["cells"]
        assert daemon.drain_and_wait() == 0


def _check_hang_deadline(base) -> None:
    """A hung worker is killed at the attempt deadline and retried."""
    plan = encode_plan(FaultSpec("hang", match="ev8", times=1, seconds=120))
    with tempfile.TemporaryDirectory() as root, \
            _Daemon(root, "--timeout", "20", "--retries", "2",
                    faults=plan) as daemon:
        out = daemon.client.run_matrix(**MATRIX)
        _assert_identical(out, base)
        assert daemon.drain_and_wait() == 0


def _check_store_errors(base) -> None:
    """Store write errors cost caching, never the response."""
    plan = encode_plan(FaultSpec("store_err", match="result", times=2))
    with tempfile.TemporaryDirectory() as root, \
            _Daemon(root, faults=plan) as daemon:
        out = daemon.client.run_matrix(**MATRIX)
        _assert_identical(out, base)
        assert daemon.drain_and_wait() == 0


def _check_deadline_partial(base) -> None:
    """A request deadline yields typed partial results, not a hang."""
    # Every attempt of the ev8 cell hangs and there is no attempt
    # timeout, so only the client's deadline can end the wait.  (The
    # hang outlives the deadline by plenty but not forever, so a worker
    # orphaned by the SIGKILL scenarios exits on its own.)
    plan = encode_plan(FaultSpec("hang", match="ev8", times=10,
                                 seconds=60))
    with tempfile.TemporaryDirectory() as root, \
            _Daemon(root, faults=plan) as daemon:
        response = daemon.client.matrix(_query(deadline=20.0))
        assert not response["complete"]
        by_arch = {cell["arch"]: cell for cell in response["cells"]}
        assert by_arch["stream"]["status"] == "ok", by_arch["stream"]
        assert by_arch["ev8"]["status"] == "deadline", by_arch["ev8"]
        daemon.kill()  # the hung worker never finishes; no clean drain


def _check_restart_resume(base) -> None:
    """SIGKILL mid-sweep + restart re-simulates only missing cells."""
    plan = encode_plan(FaultSpec("hang", match="ev8", times=10,
                                 seconds=60))
    with tempfile.TemporaryDirectory() as root:
        with _Daemon(root, faults=plan) as daemon:
            response = daemon.client.matrix(_query(deadline=20.0))
            by_arch = {cell["arch"]: cell for cell in response["cells"]}
            assert by_arch["stream"]["status"] == "ok"
            assert by_arch["ev8"]["status"] == "deadline"
            daemon.kill()  # mid-sweep: ev8 still hanging

        # Fault-free restart over the same store: the finished cell
        # must come back from disk, only the lost one re-simulates.
        with _Daemon(root) as daemon:
            out = daemon.client.run_matrix(**MATRIX)
            _assert_identical(out, base)
            status = daemon.client.status()
            assert status["cells"]["computed"] == 1, (
                f"restart re-simulated {status['cells']['computed']} "
                f"cell(s), expected exactly the 1 lost to SIGKILL"
            )
            assert status["store"]["hits"]["result"] >= 1, status["store"]
            assert daemon.drain_and_wait() == 0


def _check_overloaded(base) -> None:
    """Admission control answers with a typed overloaded error."""
    with tempfile.TemporaryDirectory() as root, \
            _Daemon(root, "--queue-limit", "0") as daemon:
        try:
            daemon.client.run_matrix(**MATRIX)
        except ServeOverloaded:
            pass
        else:
            raise AssertionError(
                "queue_limit=0 daemon admitted a cold request"
            )
        # The daemon is refusing work, not broken: ping still answers
        # and drain still exits cleanly.
        assert daemon.client.ping()["ok"]
        assert daemon.drain_and_wait() == 0


def _check_drain(base) -> None:
    """Bare lifecycle: boot, ping, status, drain, clean exit."""
    with _Daemon(None) as daemon:  # no store: pure in-memory service
        ping = daemon.client.ping()
        assert ping["ok"] and ping["pid"] == daemon.proc.pid
        status = daemon.client.status()
        assert status["queue"]["backlog"] == 0
        assert not status["draining"]
        assert daemon.drain_and_wait() == 0


CHECKS: List[Tuple[str, Callable]] = [
    ("drain", _check_drain),
    ("coalesce", _check_coalesce),
    ("worker-kill", _check_worker_kill),
    ("hang-deadline", _check_hang_deadline),
    ("store-io-error", _check_store_errors),
    ("deadline-partial", _check_deadline_partial),
    ("restart-resume", _check_restart_resume),
    ("overloaded", _check_overloaded),
]


def selftest(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve selftest",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--only", metavar="NAME",
                        help="run a single scenario")
    parser.add_argument("--help-scenarios", action="store_true",
                        help="list the scenarios and exit")
    args = parser.parse_args(argv)
    if args.help_scenarios:
        for name, _ in CHECKS:
            print(name)
        return 0

    checks = CHECKS
    if args.only:
        checks = [(n, fn) for n, fn in CHECKS if n == args.only]
        if not checks:
            print(f"selftest: unknown scenario {args.only!r}",
                  file=sys.stderr)
            return 2

    from repro.experiments.runner import run_matrix

    print(f"selftest: local baseline matrix "
          f"({MATRIX['instructions']} instructions x {N_CELLS} cells)...",
          flush=True)
    base = run_matrix(**MATRIX)

    failed = 0
    for name, check in checks:
        print(f"selftest: {name}...", end=" ", flush=True)
        started = time.monotonic()
        try:
            check(base)
        except Exception as exc:
            failed += 1
            print(f"FAIL ({type(exc).__name__}: {exc})")
        else:
            print(f"ok ({time.monotonic() - started:.1f}s)")
    if failed:
        print(f"selftest: {failed} scenario(s) FAILED", file=sys.stderr)
        return 1
    print(f"selftest: {len(checks)} scenario(s) passed; every daemon "
          f"response bit-identical to a local run_matrix")
    return 0


def main(argv: List[str]) -> int:
    if argv and argv[0] == "selftest":
        return selftest(argv[1:])
    return serve(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
