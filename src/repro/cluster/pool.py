"""A :class:`~repro.exec.pool.Pool` backend that dispatches sweep
cells to a fleet of ``repro.serve`` daemons.

Each job is sent as a one-cell ``matrix`` request over the serve wire
protocol; the daemon answers with the store's canonical result
encoding, so a remote cell is **bit-identical** to a local simulation
by construction (and the raw wire bytes are kept so the caller can
ingest them into its own store verbatim, see
:meth:`ClusterPool.take_raw`).

Failure handling, end to end:

* **transport failures** (connection refused/reset, hung daemon,
  protocol garbage) count against the *node* — its
  :class:`~repro.cluster.health.NodeHealth` machine walks healthy →
  suspect → dead and trips a per-node circuit breaker — and the cell
  is **redispatched** to a surviving node without consuming its own
  retry budget (bounded by ``max_redispatches``; past that the
  failures start counting against the cell, so a poisoned fleet still
  terminates).  Redispatch is dedup-safe by construction: results are
  content-fingerprinted in the store, so a cell finished by a "dead"
  node that was merely partitioned is a later cache hit, never a
  conflict — and a late duplicate answer in one run is simply dropped
  (the first settlement won; both answers are bit-identical anyway).
* **remote cell failures** (the daemon's own fault policy gave up) and
  **deadline expiries** consume the cell's normal
  :class:`~repro.exec.policy.FaultPolicy` budget, exactly like a local
  attempt failing; the policy's ``timeout`` propagates as the
  per-request serve deadline.  Retries prefer a *different* node, so
  one slow node cannot capture a cell forever.
* **backpressure** (``overloaded``/``draining``) requeues the cell and
  counts as a node failure — a daemon that keeps refusing admission
  ends up breaker-open until a heartbeat ping finds it willing again.
* with the **whole fleet dead** (every breaker open and
  ``probe_rounds`` of heartbeat pings failed per node) the pool
  degrades — warn-once, obs-evented — to a local pool from
  ``fallback_factory`` (``run_matrix`` passes its own fork/serial
  choice) and finishes the remaining cells locally, still
  bit-identically.

The pool implements the standard :meth:`Pool.run` contract —
``completed`` fires in the caller's thread the moment each cell
settles, and :class:`~repro.exec.policy.SweepError` is raised only
after every cell settles — so ``run_matrix`` drives it exactly like
the local backends.
"""

from __future__ import annotations

import base64
import binascii
import heapq
import queue
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.common.warnonce import warn_once
from repro.exec.policy import FaultPolicy, SweepError
from repro.exec.pool import Job, Pool, SerialPool
from repro.serve import protocol
from repro.serve.client import (
    ServeClient,
    ServeDraining,
    ServeError,
    ServeOverloaded,
    ServeUnavailable,
)
from repro.store import serialize
from repro.store.serialize import ArtifactDecodeError

from .health import DEAD, HealthPolicy, NodeHealth

__all__ = ["ClusterNode", "ClusterPool"]


class ClusterNode:
    """One fleet member: an address, a client, and its health."""

    def __init__(self, address: str, client: ServeClient,
                 health_policy: Optional[HealthPolicy] = None) -> None:
        self.address = address
        self.client = client
        self.health = NodeHealth(address, health_policy)

    def __getattr__(self, name: str) -> Any:
        # Health state and stats read through (node.state, node.busy,
        # node.record_success, ...): the pool and its tests treat a
        # node as one object.
        return getattr(self.health, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterNode({self.address!r}, {self.health.state})"


class ClusterPool(Pool):
    """Dispatch sweep-cell jobs across ``repro.serve`` daemons.

    ``addresses`` is a sequence of ``"host:port"`` strings.  Jobs must
    follow the sweep-cell convention of
    :func:`repro.experiments.runner.run_matrix`: ``job.key`` is a
    ``RunSpec`` and ``job.args`` is ``(spec, instructions, warmup,
    scale, program_key, engine_mode)`` — the tuple
    ``_run_cell_worker`` takes, which is also everything a one-cell
    matrix query needs.  ``fn`` is used only on the local-fallback
    rung.

    ``node_slots`` bounds concurrent in-flight requests per node
    (daemons parallelize internally; a couple of outstanding requests
    keep a node busy without swamping its admission queue).
    """

    def __init__(
        self,
        addresses: Sequence[str],
        policy: Optional[FaultPolicy] = None,
        health_policy: Optional[HealthPolicy] = None,
        node_slots: int = 2,
        max_redispatches: int = 5,
        probe_rounds: int = 2,
        connect_timeout: float = 3.0,
        client_factory: Optional[Callable[[str], ServeClient]] = None,
        fallback_factory: Optional[Callable[[], Pool]] = None,
    ) -> None:
        super().__init__(policy)
        addresses = [a for a in addresses if a]
        if not addresses:
            raise ValueError("ClusterPool needs at least one node address")
        if client_factory is None:
            def client_factory(address: str) -> ServeClient:
                # The pool owns retries and backoff (that is what the
                # health machine is for); its clients fail fast.
                return ServeClient.at(
                    address, connect_timeout=connect_timeout,
                    connect_retries=0,
                )
        self.nodes: List[ClusterNode] = [
            ClusterNode(address, client_factory(address), health_policy)
            for address in addresses
        ]
        self.node_slots = max(1, node_slots)
        self.max_redispatches = max(0, max_redispatches)
        self.probe_rounds = max(1, probe_rounds)
        self._fallback_factory = fallback_factory or (
            lambda: SerialPool(policy=self.policy)
        )
        #: Wire bytes (store object encoding) per completed remote
        #: cell; absent for cells finished by the local fallback.
        self._raw: Dict[Any, bytes] = {}
        #: How each settled cell was obtained on the remote side
        #: (``store`` / ``computed`` / ``coalesced``; ``local`` for
        #: fallback cells).
        self.sources: Dict[Any, str] = {}
        self.redispatches = 0
        self.degraded_local = False
        self._generation = 0
        self._queue: "queue.Queue[Tuple]" = queue.Queue()

    # ------------------------------------------------------------------
    # public surfaces
    # ------------------------------------------------------------------
    def take_raw(self, key: Any) -> Optional[bytes]:
        """Pop the wire-encoded result bytes for a settled cell.

        ``run_matrix`` feeds these to the store's
        ``put_result_bytes`` ingest path so the local store entry is
        byte-for-byte what the daemon shipped.  None for cells the
        local fallback computed.
        """
        return self._raw.pop(key, None)

    def worker_stats(self) -> Dict[str, Any]:
        """The uniform utilization shape, one entry per node."""
        stats = super().worker_stats()
        stats["workers"] = [node.stats() for node in self.nodes]
        return stats

    def heartbeat(self) -> Dict[str, str]:
        """Ping every node once and update health; address -> state.

        Dead nodes are probed regardless of their breaker backoff —
        this is the explicit "is the fleet back?" poke for status
        surfaces and tests; the run loop itself respects the backoff.
        """
        now = time.monotonic()
        for node in self.nodes:
            try:
                node.client.ping()
            except Exception:
                if node.state == DEAD:
                    node.record_probe(now, alive=False)
                else:
                    node.record_failure(now)
            else:
                if node.state == DEAD:
                    node.record_probe(now, alive=True)
                else:
                    node.record_success()
        return {node.address: node.state for node in self.nodes}

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable,
        jobs: Sequence[Job],
        completed: Optional[Callable[[Job, Any], None]] = None,
    ) -> Dict[Any, Any]:
        jobs = list(jobs)
        total = len(jobs)
        results: Dict[Any, Any] = {}
        failures: Dict[Any, List[str]] = {}
        pending: deque = deque(jobs)
        delayed: List[Tuple[float, int, Job]] = []
        seq = 0
        settled: set = set()
        #: job key -> address that last tried it (retries prefer a
        #: different node).
        last_node: Dict[Any, str] = {}
        #: job key -> transport-failure redispatches so far.
        redispatched: Dict[Any, int] = {}
        self._generation += 1
        generation = self._generation
        for node in self.nodes:
            node.health.busy = 0

        def schedule_failure(job: Job, message: str) -> None:
            nonlocal seq
            action, delay = self._next_action(job, message)
            if action == "fail":
                failures[job.key] = job.failures
                settled.add(job.key)
                return
            if delay > 0:
                seq += 1
                heapq.heappush(
                    delayed, (time.monotonic() + delay, seq, job)
                )
            else:
                pending.append(job)

        def settle_ok(node: ClusterNode, job: Job, result: Any,
                      raw: Optional[bytes], source: str) -> None:
            node.health.completed += 1
            if job.key in settled:
                # A redispatched cell answered twice (the "dead" node
                # was merely slow or partitioned).  Results are
                # bit-identical by construction; the first one won.
                return
            settled.add(job.key)
            obs.EXEC_JOBS.inc(status="ok")
            obs.CLUSTER_CELLS.inc(outcome="ok")
            self.jobs_completed += 1
            results[job.key] = result
            if raw is not None:
                self._raw[job.key] = raw
            self.sources[job.key] = source
            if completed is not None:
                completed(job, result)

        def requeue_transport(node: ClusterNode, job: Job,
                              error: str) -> None:
            count = redispatched.get(job.key, 0) + 1
            redispatched[job.key] = count
            if count > self.max_redispatches:
                # A cell the whole fleet keeps dropping on the floor:
                # start charging its own budget so the sweep terminates.
                schedule_failure(
                    job, f"attempt {job.attempt}: transport: {error}"
                )
                return
            self.redispatches += 1
            obs.CLUSTER_REDISPATCHES.inc()
            obs.record_event(
                "cluster_redispatch", cell=str(job.key),
                node=node.address, error=error,
            )
            pending.appendleft(job)

        def handle(message: Tuple) -> None:
            gen, kind, node, job, payload = message
            if gen != generation:
                return  # a straggler thread from a previous run
            node.health.busy -= 1
            now = time.monotonic()
            if kind == "ok":
                result, raw, source = payload
                node.record_success()
                settle_ok(node, job, result, raw, source)
                return
            last_node[job.key] = node.address
            if kind == "cellfail":
                # The *node* worked; the cell itself failed remotely.
                node.record_success()
                obs.CLUSTER_CELLS.inc(outcome="failed")
                schedule_failure(
                    job, f"attempt {job.attempt}: remote: {payload}"
                )
            elif kind == "deadline":
                node.record_success()
                obs.CLUSTER_CELLS.inc(outcome="deadline")
                schedule_failure(
                    job,
                    f"attempt {job.attempt}: remote deadline: {payload}",
                )
            else:  # "net" / "busy"
                node.record_failure(now)
                obs.CLUSTER_CELLS.inc(outcome=kind)
                requeue_transport(node, job, str(payload))

        def pick_node(job: Job) -> Optional[ClusterNode]:
            candidates = [
                node for node in self.nodes
                if node.usable() and node.health.busy < self.node_slots
            ]
            if not candidates:
                return None
            avoid = last_node.get(job.key)
            preferred = [n for n in candidates if n.address != avoid]
            pool = preferred or candidates
            # Least-loaded, then least-used: spreads a fresh sweep
            # across the fleet instead of saturating node one first.
            return min(
                pool,
                key=lambda n: (n.health.busy, n.health.dispatched),
            )

        def in_flight() -> int:
            return sum(node.health.busy for node in self.nodes)

        while len(results) + len(failures) < total:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                pending.append(heapq.heappop(delayed)[2])

            # Heartbeat-probe dead nodes whose breaker backoff expired.
            for node in self.nodes:
                if node.due_for_probe(now):
                    self._probe(node)

            while pending:
                node = pick_node(pending[0])
                if node is None:
                    break
                self._dispatch(generation, node, pending.popleft())

            if not in_flight() and not pending:
                if delayed:
                    time.sleep(
                        max(0.0, delayed[0][0] - time.monotonic())
                    )
                    continue
                continue  # everything settled; loop condition exits

            if pending and not in_flight():
                # Work to do, nowhere to send it: every node is
                # breaker-open.  Wait out the earliest probe, and once
                # each node has failed enough heartbeats, give up on
                # the fleet and finish locally.
                if all(n.failed_probes >= self.probe_rounds
                       for n in self.nodes):
                    remaining = list(pending)
                    pending.clear()
                    remaining.extend(item[2] for item in delayed)
                    delayed.clear()
                    self._fallback_local(
                        fn, remaining, completed, results, failures,
                        settled,
                    )
                    continue
                next_probe = min(
                    (n.retry_at for n in self.nodes if n.state == DEAD),
                    default=now + 0.25,
                )
                time.sleep(min(1.0, max(0.0, next_probe - now)))
                continue

            # Wait for one completion (or a retry/probe becoming due).
            timeout = 0.25
            if delayed:
                timeout = min(
                    timeout, max(0.0, delayed[0][0] - time.monotonic())
                )
            try:
                handle(self._queue.get(timeout=max(0.01, timeout)))
            except queue.Empty:
                pass
            # Drain whatever else arrived while we were handling.
            while True:
                try:
                    handle(self._queue.get_nowait())
                except queue.Empty:
                    break

        if failures:
            raise SweepError(failures, completed=len(results))
        return results

    # ------------------------------------------------------------------
    # dispatch machinery
    # ------------------------------------------------------------------
    def _dispatch(self, generation: int, node: ClusterNode,
                  job: Job) -> None:
        node.health.busy += 1
        node.health.dispatched += 1
        self.jobs_dispatched += 1
        obs.CLUSTER_DISPATCHES.inc(node=node.address)
        thread = threading.Thread(
            target=self._request_cell,
            args=(generation, node, job),
            name=f"cluster-dispatch-{node.address}",
            daemon=True,
        )
        thread.start()

    def _request_cell(self, generation: int, node: ClusterNode,
                      job: Job) -> None:
        """One remote cell round trip; runs on a dispatch thread."""
        spec, instructions, warmup, scale, _program_key, mode = job.args
        query = protocol.MatrixQuery(
            benchmarks=(spec.benchmark,),
            widths=(spec.width,),
            archs=(spec.arch,),
            layouts=(spec.optimized,),
            instructions=instructions,
            warmup=warmup,
            scale=scale,
            engine_mode=mode,
            deadline=self.policy.timeout,
        )
        put = self._queue.put
        try:
            response = node.client.matrix(query)
        except (ServeOverloaded, ServeDraining) as exc:
            put((generation, "busy", node, job, str(exc)))
            return
        except ServeUnavailable as exc:
            put((generation, "net", node, job, str(exc)))
            return
        except ServeError as exc:
            # Garbage frames and response timeouts: the node is not
            # speaking the protocol usefully — treat it as sick.
            put((generation, "net", node, job, str(exc)))
            return
        except Exception as exc:  # pragma: no cover - defensive
            put((generation, "net", node, job,
                 f"{type(exc).__name__}: {exc}"))
            return
        cells = response.get("cells")
        if not isinstance(cells, list) or len(cells) != 1:
            put((generation, "net", node, job,
                 "daemon answered a malformed one-cell matrix"))
            return
        cell = cells[0]
        wire = (cell.get("arch"), cell.get("benchmark"),
                cell.get("width"), cell.get("optimized"))
        want = (spec.arch, spec.benchmark, spec.width, spec.optimized)
        if wire != want:
            put((generation, "net", node, job,
                 f"daemon answered cell {wire}, wanted {want}"))
            return
        status = cell.get("status")
        if status == protocol.CELL_OK:
            try:
                raw = base64.b64decode(
                    str(cell.get("result", "")).encode("ascii"),
                    validate=True,
                )
                result = serialize.load_result(raw)
            except (ValueError, binascii.Error,
                    ArtifactDecodeError) as exc:
                # Undecodable payload: a daemon of a different code
                # version.  Its answers cannot be trusted for
                # bit-identity — poison the node, not the cell.
                put((generation, "net", node, job,
                     f"undecodable result payload: {exc}"))
                return
            put((generation, "ok", node, job,
                 (result, raw, str(cell.get("source", "computed")))))
        elif status == protocol.CELL_DEADLINE:
            put((generation, "deadline", node, job,
                 f"not finished within {self.policy.timeout}s"))
        else:
            put((generation, "cellfail", node, job,
                 str(cell.get("error") or "failed")))

    def _probe(self, node: ClusterNode) -> None:
        """One heartbeat ping against a breaker-open node."""
        now = time.monotonic()
        try:
            node.client.ping()
        except Exception as exc:
            node.record_probe(now, alive=False)
            obs.record_event(
                "cluster_probe", node=node.address, alive=False,
                error=str(exc),
            )
        else:
            node.record_probe(now, alive=True)
            obs.record_event(
                "cluster_probe", node=node.address, alive=True,
            )

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def _fallback_local(
        self,
        fn: Callable,
        jobs: List[Job],
        completed: Optional[Callable[[Job, Any], None]],
        results: Dict[Any, Any],
        failures: Dict[Any, List[str]],
        settled: set,
    ) -> None:
        """The ladder's last rung: finish the remainder on this host."""
        self.degraded_local = True
        obs.CLUSTER_LOCAL_FALLBACKS.inc()
        obs.record_event(
            "cluster_degraded",
            nodes=[node.address for node in self.nodes],
            remaining=len(jobs),
        )
        warn_once(
            "cluster.unreachable",
            f"repro.cluster: no fleet node reachable "
            f"({', '.join(node.address for node in self.nodes)}); "
            f"finishing {len(jobs)} remaining cell(s) with a local pool",
            stacklevel=5, registry=self._warn_keys,
        )

        def local_completed(job: Job, result: Any) -> None:
            # Recorded here, not from the return dict: the local pool
            # raises SweepError *after* delivering completions, and
            # those cells must count as settled either way.
            settled.add(job.key)
            results[job.key] = result
            self.sources[job.key] = "local"
            if completed is not None:
                completed(job, result)

        local = self._fallback_factory()
        try:
            local.run(fn, jobs, completed=local_completed)
        except SweepError as exc:
            failures.update(exc.failures)
            settled.update(exc.failures)
        finally:
            # Local attempts count toward the pool-wide utilization
            # totals (per-node stats stay remote-only).
            self.jobs_dispatched += local.jobs_dispatched
            self.jobs_completed += local.jobs_completed
            local.close()

    def close(self) -> None:
        """Nothing persistent to tear down (connections are per
        request); straggler dispatch threads die with the process."""
