"""`repro.cluster` — partition-tolerant multi-node sweep execution.

A :class:`ClusterPool` implements the :class:`repro.exec.pool.Pool`
contract over a fleet of ``repro.serve`` daemons: sweep cells travel
as one-cell matrix requests on the serve wire protocol and come back
in the store's canonical result encoding, so a cluster sweep is
bit-identical to a local ``run_matrix`` by construction — the only
things a flaky network can cost are time and warnings.

The moving parts:

* :class:`~repro.cluster.health.NodeHealth` — per-node state machine
  (healthy → suspect → dead, probation-based recovery) with a
  deterministic-jitter circuit breaker.
* :class:`~repro.cluster.pool.ClusterPool` — dispatch, redispatch on
  node death, deadline propagation, and the graceful-degradation
  ladder down to a local pool when the whole fleet is unreachable.
* ``python -m repro.cluster selftest`` — end-to-end failure scenarios
  (node SIGKILL mid-sweep, partition-then-heal, all-nodes-down,
  slow-node redispatch), each asserted bit-identical to a local
  baseline.

Entry points: ``run_matrix(..., cluster="host:port,host:port")`` or
the experiments CLI's ``--cluster`` flag.
"""

from .health import (
    DEAD,
    HEALTHY,
    PROBATION,
    SUSPECT,
    HealthPolicy,
    NodeHealth,
)
from .pool import ClusterNode, ClusterPool

__all__ = [
    "ClusterNode",
    "ClusterPool",
    "DEAD",
    "HEALTHY",
    "HealthPolicy",
    "NodeHealth",
    "PROBATION",
    "SUSPECT",
]
