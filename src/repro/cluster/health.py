"""Per-node health tracking for the cluster pool.

Each fleet node carries a small state machine driven by dispatch
outcomes and heartbeat pings::

    healthy ──failure──▶ suspect ──failures──▶ dead
       ▲                    │                   │ breaker backoff
       │                    └──success──▶ healthy
       │                                        ▼
       └──────── success ◀── probation ◀── ping succeeds
                                │
                                └─ failure ──▶ dead (breaker re-trips)

* **healthy → suspect**: ``suspect_after`` consecutive transport
  failures.  A suspect node still receives work — one flaky request
  must not idle a node — but the pool prefers healthier peers.
* **suspect → dead**: ``dead_after`` consecutive failures trip the
  node's circuit breaker: no dispatches, and a probe (ping) is
  scheduled after an exponential backoff with the same sha256-derived
  deterministic jitter as :func:`repro.exec.policy.backoff_delay`,
  keyed on ``(address, trip number)`` — a fleet of clients probing a
  recovering node does not stampede it in lockstep.
* **dead → probation**: a probe ping succeeds.  Probation admits real
  work again, but the first failure re-trips the breaker immediately
  (with the next, longer backoff) instead of walking back through
  suspect.
* **probation → healthy**: one successful dispatch (or ping round).

All timing is ``time.monotonic``; the machine itself never sleeps —
:class:`~repro.cluster.pool.ClusterPool`'s run loop consults
:meth:`NodeHealth.due_for_probe` and does the waiting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro import obs
from repro.exec.policy import FaultPolicy, backoff_delay

__all__ = [
    "DEAD",
    "HEALTHY",
    "HealthPolicy",
    "NodeHealth",
    "PROBATION",
    "SUSPECT",
]

HEALTHY = "healthy"
SUSPECT = "suspect"
PROBATION = "probation"
DEAD = "dead"

#: Numeric encoding for the ``repro_cluster_node_health`` gauge.
_HEALTH_LEVELS = {HEALTHY: 3, SUSPECT: 2, PROBATION: 1, DEAD: 0}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds and breaker timing for one node's state machine."""

    #: Consecutive transport failures before healthy demotes to suspect.
    suspect_after: int = 1
    #: Consecutive transport failures before the breaker trips (dead).
    dead_after: int = 3
    #: Breaker backoff before probe ``k`` (1-based):
    #: ``probe_backoff * probe_backoff_factor**(k-1)`` seconds, plus
    #: deterministic jitter, capped at ``probe_backoff_max``.
    probe_backoff: float = 0.5
    probe_backoff_factor: float = 2.0
    probe_backoff_max: float = 15.0
    probe_jitter: float = 0.25

    def breaker_policy(self) -> FaultPolicy:
        """The probe timing as a :class:`FaultPolicy` so the breaker
        reuses :func:`backoff_delay` (and its deterministic jitter)."""
        return FaultPolicy(
            timeout=None,
            backoff=self.probe_backoff,
            backoff_factor=self.probe_backoff_factor,
            backoff_max=self.probe_backoff_max,
            jitter=self.probe_jitter,
        )


class NodeHealth:
    """One node's health state, stats, and circuit breaker."""

    def __init__(self, address: str,
                 policy: Optional[HealthPolicy] = None) -> None:
        self.address = address
        self.policy = policy or HealthPolicy()
        self._breaker = self.policy.breaker_policy()
        self.state = HEALTHY
        self.consecutive_failures = 0
        #: Breaker trips (entries into ``dead``) over the node's life;
        #: also the 1-based attempt number of the *next* probe backoff,
        #: so repeated trips back off further and further.
        self.breaker_trips = 0
        #: Consecutive failed probes since the last successful contact.
        self.failed_probes = 0
        self.retry_at = 0.0  # monotonic time the next probe is due
        # Utilization stats (the cluster's per-"worker" surface).
        self.dispatched = 0
        self.completed = 0
        self.failures = 0
        self.busy = 0  # in-flight dispatches right now
        self._publish()

    # ------------------------------------------------------------------
    def _publish(self) -> None:
        obs.CLUSTER_NODE_HEALTH.set(
            _HEALTH_LEVELS[self.state], node=self.address
        )

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        previous, self.state = self.state, state
        self._publish()
        obs.record_event(
            "cluster_node", node=self.address, state=state, was=previous,
            failures=self.failures, trips=self.breaker_trips,
        )

    # ------------------------------------------------------------------
    def usable(self) -> bool:
        """Whether the pool may dispatch real work here right now."""
        return self.state != DEAD

    def due_for_probe(self, now: float) -> bool:
        return self.state == DEAD and now >= self.retry_at

    def record_success(self) -> None:
        """A dispatch (or ping) completed: the node answered."""
        self.consecutive_failures = 0
        self.failed_probes = 0
        self._transition(HEALTHY)

    def record_failure(self, now: float) -> None:
        """A transport-level failure talking to the node."""
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == PROBATION:
            # A node that just came back and immediately failed again
            # does not get the benefit of the suspect ramp.
            self._trip(now)
        elif self.consecutive_failures >= self.policy.dead_after:
            self._trip(now)
        elif self.consecutive_failures >= self.policy.suspect_after:
            self._transition(SUSPECT)

    def record_probe(self, now: float, alive: bool) -> None:
        """Outcome of a heartbeat ping against a dead node."""
        if alive:
            self.consecutive_failures = 0
            self.failed_probes = 0
            self._transition(PROBATION)
        else:
            self.failed_probes += 1
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.breaker_trips += 1
        obs.CLUSTER_BREAKER_TRIPS.inc(node=self.address)
        self.retry_at = now + backoff_delay(
            self._breaker, self.address, self.breaker_trips
        )
        self._transition(DEAD)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "node": self.address,
            "state": self.state,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failures": self.failures,
            "breaker_trips": self.breaker_trips,
            "busy": self.busy,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NodeHealth({self.address!r}, {self.state}, "
                f"{self.completed}/{self.dispatched})")
