"""``python -m repro.cluster selftest`` — end-to-end fleet failure drills.

Each scenario boots real ``repro.serve`` daemon subprocesses (via the
fleet helper in :mod:`repro.serve.__main__`), drives a sweep through
:class:`~repro.cluster.pool.ClusterPool` / ``run_matrix(cluster=...)``
while injecting a failure, and asserts the results **bit-identical**
to a local baseline:

* ``kill-mid-sweep`` — one of two daemons is SIGKILLed while holding a
  cell; the cell redispatches to the survivor, cells already cached in
  the client's store are never re-simulated, and the remote results
  ingest byte-for-byte into the client store.
* ``partition-heal`` — injected ``net_drop`` faults partition one node
  (its requests die mid-frame) until its breaker opens; the sweep
  finishes on the survivor, a heartbeat ping heals the partitioned
  node through probation, and a second sweep uses it again.
* ``all-down`` — every address refuses connections; the pool walks its
  probe rounds, then degrades (warn-once) to the local pool and still
  completes bit-identically.
* ``slow-node-redispatch`` — a node hangs on its cell past the fault
  policy's deadline; the daemon answers a typed deadline partial and
  the cell is redispatched to a different node.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from typing import Any, Callable, List, Tuple

from repro.exec.faults import FaultSpec, active_plan, encode_plan
from repro.exec.policy import FaultPolicy
from repro.serve.__main__ import _Daemon, free_port
from repro.store.cache import ArtifactCache

from .health import DEAD, HEALTHY, PROBATION, HealthPolicy
from .pool import ClusterPool

#: Four cells so redispatch has somewhere to go while other work runs;
#: the ``ev8`` cells are the fault targets (their job keys and wire
#: frames contain the arch name).
MATRIX = dict(
    benchmarks=("gzip",),
    widths=(4, 8),
    archs=("stream", "ev8"),
    layouts=(True,),
    instructions=3000,
    warmup=1000,
    scale=0.3,
)
N_CELLS = 4

#: Fast-failing policies so scenarios run in seconds: no retry backoff,
#: a two-strike breaker, sub-second probe backoff.
FAST = FaultPolicy(timeout=None, retries=2, backoff=0.0)
FAST_HEALTH = HealthPolicy(
    suspect_after=1, dead_after=2,
    probe_backoff=0.25, probe_backoff_max=2.0,
)


def _run_local(**overrides: Any):
    from repro.experiments.runner import run_matrix

    params = dict(MATRIX)
    params.update(overrides)
    return run_matrix(**params)


def _assert_identical(out, base) -> None:
    assert out.results == base.results, \
        "cluster results differ from a local run_matrix"


def _by_address(pool: ClusterPool) -> dict:
    return {node.address: node for node in pool.nodes}


def _check_kill_mid_sweep(base) -> None:
    """SIGKILL one of two daemons mid-sweep: in-flight cells
    redispatch to the survivor; store hits are never sent anywhere;
    remote results ingest into the client store byte-for-byte."""
    from repro.experiments.runner import run_matrix

    hang = encode_plan(FaultSpec("hang", match="", times=16, seconds=90))
    with tempfile.TemporaryDirectory() as client_root, \
            tempfile.TemporaryDirectory() as victim_root, \
            tempfile.TemporaryDirectory() as survivor_root:
        # Pre-warm one cell locally: the cluster run must treat it as
        # a store hit and dispatch only the three genuine misses.
        warm = dict(MATRIX)
        warm.update(widths=(4,), archs=("stream",))
        _run_local(store=client_root, **{k: warm[k]
                                         for k in ("widths", "archs")})
        with _Daemon(victim_root, faults=hang) as victim, \
                _Daemon(survivor_root) as survivor:
            pool = ClusterPool(
                [victim.address, survivor.address],
                policy=FAST, health_policy=FAST_HEALTH, node_slots=1,
            )
            # The victim hangs every cell it is handed; killing it
            # mid-sweep turns that hang into a connection reset.
            killer = threading.Timer(2.5, victim.kill)
            killer.start()
            try:
                out = run_matrix(cluster=pool, store=client_root,
                                 **MATRIX)
            finally:
                killer.cancel()
            _assert_identical(out, base)
            nodes = _by_address(pool)
            assert not pool.degraded_local
            assert pool.redispatches >= 1, \
                "the killed daemon's cell was never redispatched"
            assert nodes[victim.address].completed == 0
            assert nodes[survivor.address].completed == N_CELLS - 1
            # Only the genuine misses went remote.
            assert len(pool.sources) == N_CELLS - 1, pool.sources
        # The ingested wire bytes must decode as plain store hits.
        arts = ArtifactCache(client_root)
        again = _run_local(store=arts)
        _assert_identical(again, base)
        assert arts.hits["result"] == N_CELLS, arts.hits


def _check_partition_heal(base) -> None:
    """Partition one node mid-frame until its breaker opens; the sweep
    survives on the peer, a heartbeat heals the node via probation,
    and the next sweep dispatches to it again."""
    from repro.experiments.runner import run_matrix

    port_a = free_port()
    address_a = f"127.0.0.1:{port_a}"
    with tempfile.TemporaryDirectory() as root:
        with _Daemon(root, port=port_a) as node_a, \
                _Daemon(root) as node_b:
            pool = ClusterPool(
                [node_a.address, node_b.address],
                policy=FAST, health_policy=FAST_HEALTH, node_slots=1,
            )
            # Client-side injection: the first two frames routed at
            # node A die halfway (the daemon never sees a full line,
            # the client sees a reset) — a partition, not a crash.
            with active_plan(
                FaultSpec("net_drop", match=address_a, times=2)
            ):
                out = run_matrix(cluster=pool, **MATRIX)
            _assert_identical(out, base)
            nodes = _by_address(pool)
            assert not pool.degraded_local
            assert nodes[address_a].breaker_trips >= 1, \
                "the partitioned node never tripped its breaker"
            # Partition over: one heartbeat must walk A back in.
            states = pool.heartbeat()
            assert states[address_a] in (PROBATION, HEALTHY), states
            # And the healed node takes work again (the daemons share
            # a store, so this round is warm).
            out2 = run_matrix(cluster=pool, **MATRIX)
            _assert_identical(out2, base)
            assert nodes[address_a].completed >= 1, \
                "the healed node was never dispatched to again"
            assert node_b.drain_and_wait() == 0


def _check_all_down(base) -> None:
    """Every node down: the pool probes, gives up, degrades warn-once
    to the local pool, and the sweep still completes bit-identically."""
    from repro.experiments.runner import run_matrix

    addresses = [f"127.0.0.1:{free_port()}",
                 f"127.0.0.1:{free_port()}"]
    pool = ClusterPool(
        addresses, policy=FAST, health_policy=FAST_HEALTH,
        connect_timeout=1.0,
    )
    out = run_matrix(cluster=pool, **MATRIX)
    _assert_identical(out, base)
    assert pool.degraded_local, \
        "an unreachable fleet did not degrade to the local pool"
    assert all(node.state == DEAD for node in pool.nodes)
    assert all(node.completed == 0 for node in pool.nodes)


def _check_slow_node(base) -> None:
    """A node that hangs past the policy deadline answers a typed
    deadline partial; the cell redispatches to a different node."""
    from repro.experiments.runner import run_matrix

    slow = dict(MATRIX)
    slow.update(archs=("ev8",))  # two cells, both strikeable
    local = _run_local(archs=("ev8",))
    hang = encode_plan(FaultSpec("hang", match="ev8", times=8,
                                 seconds=45))
    with tempfile.TemporaryDirectory() as root_a, \
            tempfile.TemporaryDirectory() as root_b:
        with _Daemon(root_a, faults=hang) as slow_node, \
                _Daemon(root_b) as fast_node:
            pool = ClusterPool(
                [slow_node.address, fast_node.address],
                policy=FaultPolicy(timeout=10, retries=2, backoff=0.0),
                health_policy=FAST_HEALTH, node_slots=1,
            )
            out = run_matrix(cluster=pool, **slow)
            _assert_identical(out, local)
            nodes = _by_address(pool)
            assert not pool.degraded_local
            # The slow node answered (deadline partial), so it is
            # healthy — but everything real was finished elsewhere.
            assert nodes[slow_node.address].completed == 0
            assert nodes[fast_node.address].completed == 2
            slow_node.kill()  # its worker is still hanging; no drain


CHECKS: List[Tuple[str, Callable]] = [
    ("all-down", _check_all_down),
    ("kill-mid-sweep", _check_kill_mid_sweep),
    ("partition-heal", _check_partition_heal),
    ("slow-node-redispatch", _check_slow_node),
]


def selftest(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster selftest",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--only", metavar="NAME",
                        help="run a single scenario")
    parser.add_argument("--help-scenarios", action="store_true",
                        help="list the scenarios and exit")
    args = parser.parse_args(argv)
    if args.help_scenarios:
        for name, _ in CHECKS:
            print(name)
        return 0

    checks = CHECKS
    if args.only:
        checks = [(n, fn) for n, fn in CHECKS if n == args.only]
        if not checks:
            print(f"selftest: unknown scenario {args.only!r}",
                  file=sys.stderr)
            return 2

    print(f"selftest: local baseline matrix "
          f"({MATRIX['instructions']} instructions x {N_CELLS} cells)...",
          flush=True)
    base = _run_local()

    failed = 0
    for name, check in checks:
        print(f"selftest: {name}...", end=" ", flush=True)
        started = time.monotonic()
        try:
            check(base)
        except Exception as exc:
            failed += 1
            print(f"FAIL ({type(exc).__name__}: {exc})")
        else:
            print(f"ok ({time.monotonic() - started:.1f}s)")
    if failed:
        print(f"selftest: {failed} scenario(s) FAILED", file=sys.stderr)
        return 1
    print(f"selftest: {len(checks)} scenario(s) passed; every cluster "
          f"sweep bit-identical to a local run_matrix")
    return 0


def main(argv: List[str]) -> int:
    if argv and argv[0] == "selftest":
        return selftest(argv[1:])
    print("usage: python -m repro.cluster selftest [--only NAME] "
          "[--help-scenarios]", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
