"""Server side of the federated-store wire ops.

:func:`handle` maps one validated ``store_*`` request onto the
daemon's local :class:`~repro.store.store.ArtifactStore` and returns
the response dict; the serve front end (:mod:`repro.serve.server`)
calls it from its dispatch loop, so every behavior here is testable
without a socket.

Integrity is enforced where the bytes change hands: a ``store_put``
payload is re-hashed after base64 decoding and refused with a typed
``integrity`` error on any mismatch with the claimed oid, and a
``store_get`` never serves bytes the local store cannot re-verify
(a torn local object answers ``found: false`` — a miss, never a lie).
"""

from __future__ import annotations

import base64
import binascii
import hashlib
from typing import Any, Dict, List, Optional

from repro.serve.protocol import (
    ERROR_INTEGRITY,
    ERROR_NO_STORE,
    ERROR_VERSION_SKEW,
    ProtocolError,
    error_response,
)
from repro.store.remote import version_salt

__all__ = ["handle"]

STORE_OPS = ("store_has", "store_get", "store_put")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _local(store: Any) -> Any:
    # A daemon whose scheduler store is itself a TieredStore must
    # answer peers from its *local* layer only — serving read-through
    # fills to a peer that is also our peer would recurse forever.
    getter = getattr(store, "local_store", None)
    return getter() if callable(getter) else store


def handle(store: Any, message: Dict[str, Any]) -> Dict[str, Any]:
    """Serve one ``store_*`` request from ``store`` (may be None)."""
    op = message.get("op")
    if store is None:
        return error_response(
            ERROR_NO_STORE, f"{op}: this daemon runs without a store")
    salt = message.get("version")
    _require(isinstance(salt, str) and bool(salt),
             f"{op}: missing version salt")
    ours = version_salt()
    if salt != ours:
        return error_response(
            ERROR_VERSION_SKEW,
            f"{op}: peer version {salt!r} != {ours!r}",
            version=ours,
        )
    store = _local(store)
    kind = message.get("kind")
    _require(isinstance(kind, str) and bool(kind),
             f"{op}: kind must be a non-empty string")
    if op == "store_has":
        return _has(store, kind, message)
    if op == "store_get":
        return _get(store, kind, message)
    if op == "store_put":
        return _put(store, kind, message)
    raise ProtocolError(f"unknown store op: {op!r}")


def _has(store: Any, kind: str, message: Dict[str, Any]) -> Dict[str, Any]:
    fps = message.get("fps")
    oids: Dict[str, str] = {}
    if fps is None:
        # Full-index listing for this kind: the anti-entropy pass
        # diffs against this (and a pull needs no fourth op).
        for entry_kind, fp, entry in store.iter_index():
            if entry_kind == kind and entry is not None:
                oids[fp] = entry["object"]
    else:
        _require(isinstance(fps, list)
                 and all(isinstance(fp, str) for fp in fps),
                 "store_has: fps must be a list of strings or null")
        for fp in fps:
            entry = store.get_entry(kind, fp)
            if entry is not None:
                oids[fp] = entry["object"]
    return {"ok": True, "op": "store_has", "kind": kind, "oids": oids}


def _get(store: Any, kind: str, message: Dict[str, Any]) -> Dict[str, Any]:
    fp = message.get("fp")
    _require(isinstance(fp, str) and bool(fp),
             "store_get: fp must be a non-empty string")
    miss = {"ok": True, "op": "store_get", "kind": kind, "fp": fp,
            "found": False}
    entry = store.get_entry(kind, fp)
    if entry is None:
        return miss
    data = store._read_object(entry["object"])
    if data is None:
        return miss  # torn local object: a miss, never a lie
    return {
        "ok": True, "op": "store_get", "kind": kind, "fp": fp,
        "found": True, "oid": entry["object"], "size": len(data),
        "meta": entry.get("meta") or {},
        "data": base64.b64encode(data).decode("ascii"),
    }


def _put(store: Any, kind: str, message: Dict[str, Any]) -> Dict[str, Any]:
    fp = message.get("fp")
    _require(isinstance(fp, str) and bool(fp),
             "store_put: fp must be a non-empty string")
    oid = message.get("oid")
    _require(isinstance(oid, str) and bool(oid),
             "store_put: oid must be a non-empty string")
    payload = message.get("data")
    _require(isinstance(payload, str),
             "store_put: data must be a base64 string")
    meta = message.get("meta")
    _require(meta is None or isinstance(meta, dict),
             "store_put: meta must be an object or null")
    try:
        data = base64.b64decode(payload.encode("ascii"), validate=True)
    except (ValueError, binascii.Error) as exc:
        return error_response(
            ERROR_INTEGRITY, f"store_put: undecodable payload ({exc})")
    actual = hashlib.sha256(data).hexdigest()
    if actual != oid:
        return error_response(
            ERROR_INTEGRITY,
            f"store_put: payload hashes to {actual}, caller claimed {oid}",
        )
    stored = store.put(kind, fp, data, meta)
    return {"ok": True, "op": "store_put", "kind": kind, "fp": fp,
            "oid": stored}
