"""Anti-entropy: reconcile a local store with remote peers.

``repro-experiments cache sync HOST:PORT[,...]`` calls
:func:`sync_with_peers`, which diffs index listings batch-wise and
transfers only what the other side lacks.  Every transferred artifact
is durably landed (atomic put, both directions oid-verified) before
the next one starts, so the pass is **resumable by construction**: a
SIGKILL mid-sync loses at most the artifact in flight, and the next
run's diff simply no longer contains what already made it across.

Existing entries are never overwritten — the sync fills holes, it
does not arbitrate between divergent stores (``cache verify --peers``
reports those instead).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.store.remote import parse_peers
from repro.store.remote.client import (
    RemoteStoreClient,
    RemoteStoreError,
    StoreIntegrityError,
    StorePeerUnusable,
)
from repro.store.store import ArtifactStore

__all__ = ["SYNC_KINDS", "sync_with_peers"]

#: The artifact kinds the cache populates (sync also covers any extra
#: kinds found in the local index).
SYNC_KINDS = ("program", "trace", "result")


def _local_index(store: ArtifactStore) -> Dict[str, Dict[str, str]]:
    index: Dict[str, Dict[str, str]] = {}
    for kind, fp, entry in store.iter_index():
        if entry is not None:
            index.setdefault(kind, {})[fp] = entry["object"]
    return index


def sync_with_peers(
    store: ArtifactStore,
    peers: object,
    direction: str = "both",
    batch: int = 64,
    out: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, Any]]:
    """Reconcile ``store`` with each peer; returns per-peer rows.

    ``direction`` is ``pull`` (fetch what the peer has and we lack),
    ``push`` (the reverse) or ``both``.  Each row reports ``pulled``,
    ``pushed``, ``errors`` (integrity-refused or transport-dropped
    transfers) and ``skipped`` (version skew / storeless / unreachable
    peers are skipped whole, with the reason).
    """
    if direction not in ("push", "pull", "both"):
        raise ValueError(f"bad direction {direction!r} "
                         f"(want push, pull or both)")
    emit = out or (lambda line: None)
    local = _local_index(store)
    kinds = sorted(set(SYNC_KINDS) | set(local))
    rows: List[Dict[str, Any]] = []
    for address in parse_peers(peers):
        row: Dict[str, Any] = {"peer": address, "pulled": 0, "pushed": 0,
                               "errors": 0, "skipped": None}
        rows.append(row)
        client = RemoteStoreClient(address)
        try:
            client.hello()
        except StorePeerUnusable as exc:  # includes version skew
            row["skipped"] = str(exc)
            emit(f"{address}: skipped ({exc})")
            continue
        except RemoteStoreError as exc:
            row["skipped"] = str(exc)
            emit(f"{address}: unreachable ({exc})")
            continue
        try:
            for kind in kinds:
                _sync_kind(store, client, kind, local.get(kind, {}),
                           direction, batch, row, emit)
        except RemoteStoreError as exc:
            # The peer went away mid-pass; everything already landed
            # stays landed, the next run picks up the difference.
            row["errors"] += 1
            emit(f"{address}: aborted mid-sync ({exc})")
        emit(f"{address}: pulled {row['pulled']}, pushed {row['pushed']}, "
             f"errors {row['errors']}")
    return rows


def _sync_kind(
    store: ArtifactStore,
    client: RemoteStoreClient,
    kind: str,
    local: Dict[str, str],
    direction: str,
    batch: int,
    row: Dict[str, Any],
    emit: Callable[[str], None],
) -> None:
    remote = client.has(kind, None)  # full listing: the diff base
    if direction in ("pull", "both"):
        for fp in sorted(set(remote) - set(local)):
            try:
                found = client.get(kind, fp)
            except StoreIntegrityError as exc:
                row["errors"] += 1
                emit(f"{client.address}: pull {kind}/{fp} refused ({exc})")
                continue
            if found is None:
                continue  # gc'd (or torn) since the listing; fine
            _oid, data, meta = found
            store.put(kind, fp, data, meta)
            row["pulled"] += 1
    if direction in ("push", "both"):
        want = sorted(set(local) - set(remote))
        for start in range(0, len(want), max(1, batch)):
            chunk = want[start:start + max(1, batch)]
            # Re-probe the batch right before pushing: another syncer
            # (or the peer's own sweeps) may have filled it meanwhile.
            present = client.has(kind, chunk)
            for fp in chunk:
                if fp in present:
                    continue
                entry = store.get_entry(kind, fp)
                data = (store._read_object(entry["object"])
                        if entry is not None else None)
                if data is None:
                    continue  # locally torn: never push unverifiable bytes
                try:
                    client.put(kind, fp, data, entry.get("meta") or {})
                except StoreIntegrityError as exc:
                    row["errors"] += 1
                    emit(f"{client.address}: push {kind}/{fp} "
                         f"refused ({exc})")
                    continue
                row["pushed"] += 1
