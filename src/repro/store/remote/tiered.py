"""The tiered store: local :class:`ArtifactStore` under remote peers.

:class:`TieredStore` *is* an :class:`~repro.store.store.ArtifactStore`
(same root, same atomic-write discipline, drop-in wherever a store is
accepted) whose index probes read through to remote peers on a local
miss:

* **read-through fill** — a remote hit is re-hashed by the client,
  written locally via the store's own atomic-put path, and only then
  served; every later read is local.
* **write-behind replication** — local puts enqueue ``(kind, fp)`` to
  a bounded background replicator that pushes the bytes to every
  usable peer.  Overflow drops the *oldest* entry (the newest write is
  the one a peer is most likely to want) with an obs counter; the
  simulate path never blocks on a slow peer.

Peer failures are classified, not retried blindly:

* transport errors strike the peer's circuit breaker
  (:class:`repro.cluster.health.NodeHealth` — the same state machine,
  backoff, and deterministic jitter the cluster pool uses) and fall
  through to the next peer; a dead peer is only re-contacted when its
  probe backoff expires, and the read that probes it is the probe.
* integrity failures (bytes that do not hash to their oid) bump a
  quarantine counter and degrade to a miss — a lying peer can cost
  a recompute, never a wrong artifact.
* ``no_store`` / version-skewed peers are warned about once and never
  asked again.

When every peer is unusable or dead the tier warns once and runs
local-only — bit-identical to having no peers at all.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.common.warnonce import warn_once
from repro.cluster.health import HealthPolicy, NodeHealth
from repro.store.remote import parse_peers
from repro.store.remote.client import (
    RemoteStoreClient,
    RemoteStoreError,
    StoreIntegrityError,
    StorePeerUnusable,
    StoreVersionSkew,
)
from repro.store.store import ArtifactStore

__all__ = ["RemoteStorePeer", "TieredStore"]

#: Default bound on the write-behind queue (entries, not bytes — each
#: entry is just a ``(kind, fp)`` pair; bytes are read back from the
#: local store at send time).
DEFAULT_REPLICATION_LIMIT = 256


class RemoteStorePeer:
    """One peer: client handle + breaker + per-peer counters."""

    def __init__(self, address: str,
                 health_policy: Optional[HealthPolicy] = None,
                 version: Optional[str] = None,
                 connect_timeout: float = 5.0,
                 request_timeout: Optional[float] = 30.0) -> None:
        self.address = address
        self.client = RemoteStoreClient(
            address, connect_timeout=connect_timeout,
            request_timeout=request_timeout, version=version,
        )
        self.health = NodeHealth(address, health_policy)
        #: Set when the peer can never serve us (no store, version
        #: skew): it is skipped without further network traffic.
        self.unusable = False
        self.hits = 0
        self.misses = 0
        self.integrity = 0
        self.errors = 0
        self.replicated = 0

    def stats(self) -> Dict[str, Any]:
        return {
            "peer": self.address,
            "state": "unusable" if self.unusable else self.health.state,
            "hits": self.hits,
            "misses": self.misses,
            "integrity": self.integrity,
            "errors": self.errors,
            "replicated": self.replicated,
            "breaker_trips": self.health.breaker_trips,
        }


class _Replicator:
    """Bounded write-behind queue pushing local puts to peers."""

    def __init__(self, local: ArtifactStore,
                 peers: Sequence[RemoteStorePeer],
                 limit: int = DEFAULT_REPLICATION_LIMIT,
                 autostart: bool = True) -> None:
        self._local = local
        self._peers = peers
        self._limit = max(1, int(limit))
        self._autostart = autostart
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._inflight = 0
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        self.dropped = 0

    # ------------------------------------------------------------------
    def enqueue(self, kind: str, fp: str) -> None:
        """Queue one local put for replication; never blocks."""
        with self._cond:
            if self._stopping:
                return
            self._queue.append((kind, fp))
            while len(self._queue) > self._limit:
                self._queue.popleft()  # oldest first: newest wins
                self.dropped += 1
                obs.STORE_REMOTE_REPLICATION_DROPPED.inc()
            obs.STORE_REMOTE_REPLICATION_BACKLOG.set(len(self._queue))
            self._cond.notify_all()
            if self._autostart and self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="store-replicate", daemon=True)
                self._thread.start()

    def backlog(self) -> int:
        with self._cond:
            return len(self._queue) + self._inflight

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Replicate one queued entry synchronously; False when idle.

        The worker thread loops this; tests call it directly for a
        threadless, deterministic drain.
        """
        with self._cond:
            if not self._queue:
                return False
            kind, fp = self._queue.popleft()
            self._inflight += 1
            obs.STORE_REMOTE_REPLICATION_BACKLOG.set(len(self._queue))
        try:
            self._replicate(kind, fp)
        finally:
            with self._cond:
                self._inflight -= 1
                self._cond.notify_all()
        return True

    def _replicate(self, kind: str, fp: str) -> None:
        # Bytes are read back at send time: if the entry was since
        # gc'd (or the object is torn) there is nothing to push.
        entry = self._local.get_entry(kind, fp)
        if entry is None:
            return
        data = self._local._read_object(entry["object"])
        if data is None:
            return
        meta = entry.get("meta") or {}
        now = time.monotonic()
        for peer in self._peers:
            if peer.unusable or not peer.health.usable():
                continue  # read path owns the probing
            try:
                peer.client.put(kind, fp, data, meta)
            except (StoreVersionSkew, StorePeerUnusable) as exc:
                _mark_unusable(peer, exc)
            except StoreIntegrityError:
                peer.integrity += 1
                obs.STORE_REMOTE_INTEGRITY.inc(peer=peer.address)
            except RemoteStoreError:
                peer.errors += 1
                obs.STORE_REMOTE_ERRORS.inc(peer=peer.address)
                peer.health.record_failure(now)
            else:
                peer.replicated += 1
                obs.STORE_REMOTE_REPLICATED.inc(peer=peer.address)
                peer.health.record_success()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait(0.5)
                if self._stopping and not self._queue:
                    return
            self.step()

    # ------------------------------------------------------------------
    def flush(self, timeout: Optional[float] = 5.0) -> bool:
        """Wait until the queue drains; False if the timeout expired."""
        if self._thread is None:
            while self.step():
                pass
            return True
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._queue and not self._inflight, timeout)

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None


def _mark_unusable(peer: RemoteStorePeer, exc: Exception) -> None:
    peer.unusable = True
    reason = ("version skew" if isinstance(exc, StoreVersionSkew)
              else "unusable")
    warn_once(
        f"store.remote.{reason.replace(' ', '-')}:{peer.address}",
        f"store peer {peer.address} ignored ({reason}: {exc}); "
        f"continuing without it",
    )


class TieredStore(ArtifactStore):
    """Local store + remote read-through + write-behind replication.

    Drop-in for :class:`ArtifactStore`: same constructor semantics for
    the local root, plus ``peers`` (comma string or sequence of
    ``host:port``).  With no peers it behaves exactly like the base
    class.
    """

    def __init__(self, root: str, peers: object = None,
                 health_policy: Optional[HealthPolicy] = None,
                 version: Optional[str] = None,
                 replication_limit: int = DEFAULT_REPLICATION_LIMIT,
                 connect_timeout: float = 5.0,
                 request_timeout: Optional[float] = 30.0,
                 replicate_async: bool = True) -> None:
        super().__init__(root)
        self._peers: List[RemoteStorePeer] = [
            RemoteStorePeer(
                address, health_policy=health_policy, version=version,
                connect_timeout=connect_timeout,
                request_timeout=request_timeout,
            )
            for address in parse_peers(peers)
        ]
        self._replicator = _Replicator(
            ArtifactStore(self.root), self._peers,
            limit=replication_limit, autostart=replicate_async,
        )

    # ------------------------------------------------------------------
    @property
    def peers(self) -> Tuple[RemoteStorePeer, ...]:
        return tuple(self._peers)

    def local_store(self) -> ArtifactStore:
        """The local layer alone — what a daemon serves to *its* peers
        (serving read-through fills to a peer that is also our peer
        would recurse)."""
        return ArtifactStore(self.root)

    # ------------------------------------------------------------------
    # reads: local first, then fill from peers
    # ------------------------------------------------------------------
    def get_entry(self, kind: str, fp: str) -> Optional[dict]:
        entry = super().get_entry(kind, fp)
        if entry is not None or not self._peers:
            return entry
        if self._fill(kind, fp):
            return super().get_entry(kind, fp)
        return None

    def _fill(self, kind: str, fp: str) -> bool:
        """Try every eligible peer for ``(kind, fp)``; land the bytes
        locally via the atomic-put path on a verified hit."""
        consulted = False
        for peer in self._peers:
            if peer.unusable:
                continue
            now = time.monotonic()
            probing = not peer.health.usable()
            if probing and not peer.health.due_for_probe(now):
                continue  # breaker open; not due yet
            consulted = True
            try:
                found = peer.client.get(kind, fp)
            except (StoreVersionSkew, StorePeerUnusable) as exc:
                _mark_unusable(peer, exc)
                continue
            except StoreIntegrityError:
                # Quarantine: a lying peer costs a recompute, never a
                # wrong artifact.  No health strike — the transport
                # demonstrably works; trying again would re-fetch the
                # same bad bytes anyway, so fall through to a miss.
                peer.integrity += 1
                obs.STORE_REMOTE_INTEGRITY.inc(peer=peer.address)
                continue
            except RemoteStoreError:
                peer.errors += 1
                obs.STORE_REMOTE_ERRORS.inc(peer=peer.address)
                if probing:
                    peer.health.record_probe(now, False)
                else:
                    peer.health.record_failure(now)
                continue
            if probing:
                peer.health.record_probe(now, True)
            peer.health.record_success()
            if found is None:
                peer.misses += 1
                obs.STORE_REMOTE_MISSES.inc(peer=peer.address)
                continue
            _oid, data, meta = found
            # The client already verified data hashes to the oid; the
            # base put re-hashes once more and lands it atomically.
            ArtifactStore.put(self, kind, fp, data, meta)
            peer.hits += 1
            obs.STORE_REMOTE_HITS.inc(peer=peer.address)
            return True
        if self._peers and not consulted:
            warn_once(
                "store.remote.local-only:" +
                ",".join(p.address for p in self._peers),
                "all store peers unusable or dead; running local-only "
                "(dead peers keep getting probed on their backoff)",
            )
        return False

    # ------------------------------------------------------------------
    # writes: local first, replicate behind
    # ------------------------------------------------------------------
    def put(self, kind: str, fp: str, data: bytes,
            meta: Optional[dict] = None) -> str:
        oid = super().put(kind, fp, data, meta)
        if self._peers:
            self._replicator.enqueue(kind, fp)
        return oid

    # ------------------------------------------------------------------
    def remote_stats(self) -> Dict[str, Any]:
        return {
            "peers": [peer.stats() for peer in self._peers],
            "replication": {
                "backlog": self._replicator.backlog(),
                "dropped": self._replicator.dropped,
            },
        }

    def flush_replication(self, timeout: Optional[float] = 5.0) -> bool:
        return self._replicator.flush(timeout)

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Best-effort drain of the write-behind queue, then stop."""
        self._replicator.flush(timeout)
        self._replicator.stop(timeout)
