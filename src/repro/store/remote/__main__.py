"""``python -m repro.store.remote selftest`` — federated-store drills.

Each scenario runs a real sweep against a :class:`TieredStore` whose
peers are real ``repro.serve`` daemon subprocesses (or deliberately
dead addresses), injects one failure mode, and asserts the sweep's
results **bit-identical** to a storeless local baseline — the
degradation ladder must cost recomputes, never wrong numbers:

* ``all-peers-down`` — every peer address refuses connections; the
  tier strikes its breakers and degrades (warn-once) to local-only.
* ``version-skew`` — the peer speaks a different store version; it is
  warned about once, marked unusable, and never asked again.
* ``garbage-payload`` — the peer answers ``store_get`` with undecodable
  bytes (an injected ``net_garbage`` fault in the *daemon*); every
  corrupt response degrades to a miss and a local recompute.
* ``kill-mid-get`` — the peer is SIGKILLed while a delayed
  ``store_get`` is in flight; the half-dead connection costs one
  transport error, the rest of the sweep recomputes locally.
* ``partition-heal`` — a ``net_drop`` plan partitions the peer until
  its breaker opens; after the partition lifts, the next read probes
  the peer through its backoff and read-through works again.
* ``fleet-read-through`` — the acceptance drill: daemon A simulates
  the matrix cold, daemon B (``--store-peers`` A) serves the same
  matrix entirely by read-through fill — each cell simulated exactly
  once fleet-wide, counters asserted on both daemons.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.cluster.health import DEAD, HEALTHY, PROBATION, HealthPolicy
from repro.exec.faults import FaultSpec, active_plan, encode_plan
from repro.serve.__main__ import (
    MATRIX,
    N_CELLS,
    _assert_identical,
    _Daemon,
    free_port,
)
from repro.store.remote.tiered import TieredStore
from repro.store.store import ArtifactStore

#: Breakers tuned for a selftest, not production: trip after two
#: failures, probe again within ~half a second.
FAST_HEALTH = HealthPolicy(
    suspect_after=1, dead_after=2,
    probe_backoff=0.2, probe_backoff_factor=1.5,
    probe_backoff_max=0.5, probe_jitter=0.2,
)


def _tier(root: str, peers: object, **kwargs: object) -> TieredStore:
    kwargs.setdefault("health_policy", FAST_HEALTH)
    kwargs.setdefault("connect_timeout", 2.0)
    kwargs.setdefault("request_timeout", 10.0)
    return TieredStore(root, peers, **kwargs)


def _run_local(store: ArtifactStore):
    from repro.experiments.runner import run_matrix

    return run_matrix(store=store, **MATRIX)


def _check_all_peers_down(base) -> None:
    """Dead addresses cost breaker strikes, never results."""
    peers = [f"127.0.0.1:{free_port()}" for _ in range(2)]
    with tempfile.TemporaryDirectory() as root:
        tier = _tier(root, peers)
        try:
            out = _run_local(tier)
            _assert_identical(out, base)
            for peer in tier.peers:
                assert peer.hits == 0, peer.stats()
                assert peer.errors >= 1, peer.stats()
            # Warm rerun over the now-populated local layer: still
            # bit-identical, still local-only.
            again = _run_local(tier)
            _assert_identical(again, base)
        finally:
            tier.close(timeout=1.0)


def _check_version_skew(base) -> None:
    """A version-skewed peer is warned about once and never asked again."""
    with tempfile.TemporaryDirectory() as remote_root, \
            tempfile.TemporaryDirectory() as local_root, \
            _Daemon(remote_root) as daemon:
        warm = daemon.client.run_matrix(**MATRIX)
        _assert_identical(warm, base)
        tier = _tier(local_root, daemon.address, version="bogus-selftest")
        try:
            out = _run_local(tier)
            _assert_identical(out, base)
            peer = tier.peers[0]
            assert peer.unusable, peer.stats()
            assert peer.hits == 0, peer.stats()
        finally:
            tier.close(timeout=1.0)
        assert daemon.drain_and_wait() == 0


def _check_garbage_payload(base) -> None:
    """Undecodable store_get responses degrade to misses + recompute."""
    plan = encode_plan(
        FaultSpec("net_garbage", match="store_get", times=100))
    with tempfile.TemporaryDirectory() as remote_root, \
            tempfile.TemporaryDirectory() as local_root, \
            _Daemon(remote_root, faults=plan) as daemon:
        # The fault matches frame text, so the daemon's ordinary matrix
        # responses are untouched — only store_get traffic is garbled.
        warm = daemon.client.run_matrix(**MATRIX)
        _assert_identical(warm, base)
        tier = _tier(local_root, daemon.address)
        try:
            out = _run_local(tier)
            _assert_identical(out, base)
            peer = tier.peers[0]
            assert peer.hits == 0, peer.stats()
            assert peer.errors >= 1, peer.stats()
        finally:
            tier.close(timeout=1.0)
        daemon.kill()  # drain would answer through garbled frames


def _check_kill_mid_get(base) -> None:
    """SIGKILL while a store_get is in flight costs one transport
    error; the sweep recomputes locally, bit-identically."""
    with tempfile.TemporaryDirectory() as remote_root, \
            tempfile.TemporaryDirectory() as local_root, \
            _Daemon(remote_root) as daemon:
        warm = daemon.client.run_matrix(**MATRIX)
        _assert_identical(warm, base)
        tier = _tier(local_root, daemon.address)
        killer = threading.Timer(1.0, daemon.kill)
        try:
            with active_plan(FaultSpec("net_delay", match="store_get",
                                       times=1, seconds=3.0)):
                killer.start()
                out = _run_local(tier)
            _assert_identical(out, base)
            peer = tier.peers[0]
            assert peer.hits == 0, peer.stats()
            assert peer.errors >= 1, peer.stats()
        finally:
            killer.cancel()
            tier.close(timeout=1.0)


def _check_partition_heal(base) -> None:
    """A partitioned peer trips its breaker; after the heal, the next
    read probes it through the backoff and read-through resumes."""
    extra_fp = "feedfacefeedface"
    extra_data = b"partition-heal extra artifact\n" * 8
    with tempfile.TemporaryDirectory() as remote_root, \
            tempfile.TemporaryDirectory() as local_root:
        port = free_port()
        address = f"127.0.0.1:{port}"
        # Seed the peer's store with an artifact the local tier does
        # not have: the only way to get it post-heal is read-through.
        ArtifactStore(remote_root).put(
            "result", extra_fp, extra_data, {"note": "heal-probe"})
        with _Daemon(remote_root, port=port) as daemon:
            tier = _tier(local_root, address)
            try:
                with active_plan(FaultSpec("net_drop", match=address,
                                           times=100)):
                    out = _run_local(tier)
                _assert_identical(out, base)
                peer = tier.peers[0]
                assert peer.hits == 0, peer.stats()
                assert peer.health.breaker_trips >= 1 \
                    or peer.health.state == DEAD, peer.stats()
                # Heal: the plan is gone; the probe backoff expires and
                # the seeded artifact arrives by read-through fill.
                got: Optional[bytes] = None
                deadline = time.monotonic() + 30.0
                while got is None and time.monotonic() < deadline:
                    got = tier.get("result", extra_fp)
                    if got is None:
                        time.sleep(0.1)
                assert got == extra_data, "read-through never healed"
                assert peer.hits == 1, peer.stats()
                assert peer.health.state in (HEALTHY, PROBATION), \
                    peer.stats()
            finally:
                tier.close(timeout=1.0)
            assert daemon.drain_and_wait() == 0


def _check_fleet_read_through(base) -> None:
    """Two federated daemons simulate each cold cell exactly once."""
    with tempfile.TemporaryDirectory() as root_a, \
            tempfile.TemporaryDirectory() as root_b, \
            _Daemon(root_a) as node_a:
        out_a = node_a.client.run_matrix(**MATRIX)
        _assert_identical(out_a, base)
        assert node_a.client.status()["cells"]["computed"] == N_CELLS
        with _Daemon(root_b, "--store-peers", node_a.address) as node_b:
            out_b = node_b.client.run_matrix(**MATRIX)
            _assert_identical(out_b, base)
            status = node_b.client.status()
            assert status["cells"]["computed"] == 0, (
                f"node B re-simulated "
                f"{status['cells']['computed']} cell(s) its peer "
                f"already held"
            )
            remote = status["store"]["remote"]
            hits = remote["peers"][0]["hits"]
            assert hits == N_CELLS, (
                f"expected {N_CELLS} read-through fills, saw {hits} "
                f"({remote})"
            )
            assert node_b.drain_and_wait() == 0
        assert node_a.drain_and_wait() == 0


CHECKS: List[Tuple[str, Callable]] = [
    ("all-peers-down", _check_all_peers_down),
    ("version-skew", _check_version_skew),
    ("garbage-payload", _check_garbage_payload),
    ("kill-mid-get", _check_kill_mid_get),
    ("partition-heal", _check_partition_heal),
    ("fleet-read-through", _check_fleet_read_through),
]


def selftest(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.remote selftest",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--only", metavar="NAME",
                        help="run a single scenario")
    parser.add_argument("--help-scenarios", action="store_true",
                        help="list the scenarios and exit")
    args = parser.parse_args(argv)
    if args.help_scenarios:
        for name, _ in CHECKS:
            print(name)
        return 0

    checks = CHECKS
    if args.only:
        checks = [(n, fn) for n, fn in CHECKS if n == args.only]
        if not checks:
            print(f"selftest: unknown scenario {args.only!r}",
                  file=sys.stderr)
            return 2

    from repro.experiments.runner import run_matrix

    print(f"selftest: local baseline matrix "
          f"({MATRIX['instructions']} instructions x {N_CELLS} cells)...",
          flush=True)
    base = run_matrix(**MATRIX)

    failed = 0
    for name, check in checks:
        print(f"selftest: {name}...", end=" ", flush=True)
        started = time.monotonic()
        try:
            check(base)
        except Exception as exc:
            failed += 1
            print(f"FAIL ({type(exc).__name__}: {exc})")
        else:
            print(f"ok ({time.monotonic() - started:.1f}s)")
    if failed:
        print(f"selftest: {failed} scenario(s) FAILED", file=sys.stderr)
        return 1
    print(f"selftest: {len(checks)} scenario(s) passed; every sweep "
          f"bit-identical to a local run_matrix")
    return 0


def main(argv: List[str]) -> int:
    if argv and argv[0] == "selftest":
        return selftest(argv[1:])
    print("usage: python -m repro.store.remote selftest [--only NAME] "
          "[--help-scenarios]", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
