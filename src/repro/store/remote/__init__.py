"""`repro.store.remote` — the federated artifact store.

Any ``repro.serve`` daemon with a store already holds every artifact
its sweeps produced; this package lets *other* nodes read through to
it (and replicate back into it) over the same LDJSON wire format the
daemon speaks, so a fleet simulates each cold cell exactly once.

Three wire ops (served by the daemon, :mod:`.ops`):

``store_has``
    Batched existence probe: fingerprints -> oids.  ``fps: null``
    lists the peer's whole index for a kind (the anti-entropy pass
    builds its diff from this).
``store_get``
    One artifact: object bytes base64-encoded in the store's own
    canonical encoding, plus the oid they must hash to.
``store_put``
    One artifact pushed at a peer; the server re-hashes the decoded
    bytes and refuses with a typed ``integrity`` error on mismatch.

The client tier (:class:`.TieredStore`, :mod:`.tiered`) layers the
local :class:`~repro.store.store.ArtifactStore` under one or more
remote peers: local reads are tried first, misses fan out across
peers guarded by the same circuit-breaker state machine the cluster
pool uses (:class:`repro.cluster.health.NodeHealth`), every remote
payload is re-hashed before it is trusted, verified fills land
through the store's atomic-put path, and local puts replicate to
peers from a bounded write-behind queue that never blocks the
simulate path.  The degradation ladder ends in warn-once local-only
operation — with every peer dead, lying, or slow, a sweep still
produces bit-identical results.

Version skew is detected, not suffered: every store op carries the
``FORMAT_VERSION:code_version`` salt (:func:`version_salt`), so a
peer running different code answers ``version_skew`` and is ignored
after one warning instead of mixing incompatible artifacts.

``python -m repro.store.remote selftest`` drills the failure matrix
(peer SIGKILL mid-get, garbage payloads, partition-then-heal, skewed
versions, all-peers-down) and asserts bit-identical results against
a local-only baseline.
"""

from __future__ import annotations

from typing import List

from repro.store.fingerprint import FORMAT_VERSION, code_version

__all__ = [
    "PEERS_ENV",
    "parse_peers",
    "version_salt",
    "RemoteStoreClient",
    "RemoteStoreError",
    "StoreIntegrityError",
    "StorePeerUnusable",
    "StoreVersionSkew",
    "TieredStore",
    "sync_with_peers",
]

#: Environment knob: comma-separated ``host:port`` peers, consulted by
#: the CLIs (``repro-experiments --store-peers``, ``python -m
#: repro.serve --store-peers``); library entry points take peers
#: explicitly.
PEERS_ENV = "REPRO_STORE_PEERS"


def version_salt() -> str:
    """The handshake salt: store format generation + code version.

    Two nodes agree on this string exactly when their artifacts are
    interchangeable — same index/object format *and* same simulator
    code, the pair :func:`repro.store.fingerprint.fingerprint` already
    folds into every fingerprint.
    """
    return f"{FORMAT_VERSION}:{code_version()}"


def parse_peers(peers: object) -> List[str]:
    """Normalize a peers spec into a list of ``host:port`` strings.

    Accepts a comma-separated string (CLI / ``$REPRO_STORE_PEERS``), a
    sequence of strings, or None/empty for no peers.  Addresses are
    validated (and bare ports expanded to ``127.0.0.1:port``); order
    is preserved, duplicates dropped.
    """
    from repro.common.net import parse_hostport

    if peers is None:
        return []
    if isinstance(peers, str):
        raw = [p.strip() for p in peers.split(",")]
    else:
        raw = [str(p).strip() for p in peers]
    out: List[str] = []
    for item in raw:
        if not item:
            continue
        host, port = parse_hostport(item)  # ValueError on junk
        address = f"{host}:{port}"
        if address not in out:
            out.append(address)
    return out


def __getattr__(name: str):  # pragma: no cover - thin lazy re-exports
    # The client/tier classes pull in repro.cluster (health) and
    # repro.serve (protocol); importing them here eagerly would cycle
    # with serve.server's lazy handshake import of this package.
    if name in ("RemoteStoreClient", "RemoteStoreError",
                "StoreIntegrityError", "StorePeerUnusable",
                "StoreVersionSkew"):
        from repro.store.remote import client
        return getattr(client, name)
    if name == "TieredStore":
        from repro.store.remote.tiered import TieredStore
        return TieredStore
    if name == "sync_with_peers":
        from repro.store.remote.sync import sync_with_peers
        return sync_with_peers
    raise AttributeError(name)
