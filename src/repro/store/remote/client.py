"""Client side of the federated-store wire ops.

:class:`RemoteStoreClient` is one peer handle: it dials a
``repro.serve`` daemon with the shared transport-retry helper
(:func:`repro.common.net.connect_with_retries`) and speaks the
``store_*`` ops, surfacing a small typed taxonomy the tier dispatches
on:

* :class:`RemoteStoreError` — **transport**: refused, reset, timed
  out, garbage frames, daemon-side internal errors.  The peer may be
  back in a moment; the tier records a health strike and tries the
  next peer.
* :class:`StoreIntegrityError` — **integrity**: bytes arrived but
  failed oid verification (either direction).  Never served, never
  retried against the same answer; the tier quarantine-counts it and
  treats the probe as a miss.
* :class:`StorePeerUnusable` — the peer can *never* serve us
  (``no_store``); warn once and stop asking.
* :class:`StoreVersionSkew` — unusable because the peer runs a
  different store-format/code generation; carries the peer's salt.

Every ``get`` payload is re-hashed client-side before it is trusted —
the server already verified its local object, but the network between
is exactly where bits flip.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.common.net import connect_with_retries, parse_hostport
from repro.exec.policy import FaultPolicy
from repro.serve import protocol

__all__ = [
    "RemoteStoreClient",
    "RemoteStoreError",
    "StoreIntegrityError",
    "StorePeerUnusable",
    "StoreVersionSkew",
]


class RemoteStoreError(Exception):
    """Transport-class failure: the peer may recover; try the next."""


class StoreIntegrityError(RemoteStoreError):
    """Payload failed oid verification; quarantine, treat as a miss."""


class StorePeerUnusable(RemoteStoreError):
    """The peer can never serve us (e.g. it runs without a store)."""


class StoreVersionSkew(StorePeerUnusable):
    """The peer's store format / code generation differs from ours."""

    def __init__(self, message: str, peer_version: str = "") -> None:
        super().__init__(message)
        self.peer_version = peer_version


class RemoteStoreClient:
    """One peer handle; methods open one connection per request."""

    def __init__(
        self,
        address: str,
        connect_timeout: float = 5.0,
        connect_retries: int = 1,
        connect_backoff: float = 0.2,
        request_timeout: Optional[float] = 30.0,
        version: Optional[str] = None,
    ) -> None:
        try:
            self.host, self.port = parse_hostport(address)
        except ValueError as exc:
            raise RemoteStoreError(str(exc)) from None
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self._backoff_policy = FaultPolicy(
            timeout=None, retries=max(0, int(connect_retries)),
            backoff=connect_backoff, backoff_max=2.0,
        )
        if version is None:
            from repro.store.remote import version_salt
            version = version_salt()
        self.version = version
        #: The peer's advertised frame limit, learned from :meth:`hello`
        #: (None until then): puts that cannot fit are refused
        #: client-side instead of bouncing off the daemon.
        self.max_frame: Optional[int] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip; raises the typed taxonomy above."""
        try:
            sock = connect_with_retries(
                self.host, self.port, timeout=self.connect_timeout,
                policy=self._backoff_policy, key=self.address,
            )
        except OSError as exc:
            raise RemoteStoreError(
                f"no store peer at {self.address} ({exc})") from None
        try:
            sock.settimeout(self.request_timeout)
            with sock.makefile("rwb") as stream:
                protocol.write_message(stream, message, target=self.address)
                try:
                    response = protocol.read_message(
                        stream, target=self.address)
                except protocol.ProtocolError as exc:
                    raise RemoteStoreError(
                        f"bad frame from {self.address}: {exc}") from None
        except socket.timeout:
            raise RemoteStoreError(
                f"peer {self.address} did not answer within "
                f"{self.request_timeout}s") from None
        except OSError as exc:
            raise RemoteStoreError(
                f"connection to {self.address} failed ({exc})") from None
        finally:
            sock.close()
        if response is None:
            raise RemoteStoreError(
                f"peer {self.address} hung up mid-request")
        if response.get("ok"):
            return response
        code = response.get("error")
        text = response.get("message", "")
        if code == protocol.ERROR_INTEGRITY:
            raise StoreIntegrityError(f"{self.address}: {text}")
        if code == protocol.ERROR_VERSION_SKEW:
            raise StoreVersionSkew(
                f"{self.address}: {text}",
                peer_version=str(response.get("version", "")),
            )
        if code == protocol.ERROR_NO_STORE:
            raise StorePeerUnusable(f"{self.address}: {text}")
        raise RemoteStoreError(f"{self.address}: {code}: {text}")

    # ------------------------------------------------------------------
    def hello(self) -> Dict[str, Any]:
        """Ping the peer; learn its frame limit; check version skew.

        Raises :class:`StoreVersionSkew` if the peer advertises a
        different salt — catching it at the handshake saves shipping a
        payload that would bounce anyway.
        """
        response = self.request({"op": "ping"})
        limit = response.get("max_frame")
        if isinstance(limit, int) and limit > 0:
            self.max_frame = limit
        theirs = response.get("store_version")
        if isinstance(theirs, str) and theirs and theirs != self.version:
            raise StoreVersionSkew(
                f"{self.address}: version {theirs!r} != {self.version!r}",
                peer_version=theirs,
            )
        return response

    def has(self, kind: str, fps: Optional[List[str]]) -> Dict[str, str]:
        """Batched probe: present fingerprints -> oids.

        ``fps=None`` lists the peer's entire index for ``kind``.
        """
        response = self.request({
            "op": "store_has", "version": self.version,
            "kind": kind, "fps": list(fps) if fps is not None else None,
        })
        oids = response.get("oids")
        if not isinstance(oids, dict):
            raise RemoteStoreError(
                f"{self.address}: store_has answered without oids")
        return oids

    def get(self, kind: str, fp: str
            ) -> Optional[Tuple[str, bytes, Dict[str, Any]]]:
        """Fetch one artifact as ``(oid, data, meta)``; None on a miss.

        The payload is re-hashed here: a flipped bit anywhere between
        the peer's disk and ours raises :class:`StoreIntegrityError`,
        never returns wrong bytes.
        """
        response = self.request({
            "op": "store_get", "version": self.version,
            "kind": kind, "fp": fp,
        })
        if not response.get("found"):
            return None
        oid = response.get("oid")
        payload = response.get("data")
        if not isinstance(oid, str) or not isinstance(payload, str):
            raise RemoteStoreError(
                f"{self.address}: malformed store_get response")
        try:
            data = base64.b64decode(payload.encode("ascii"), validate=True)
        except (ValueError, binascii.Error) as exc:
            raise StoreIntegrityError(
                f"{self.address}: undecodable payload for "
                f"{kind}/{fp} ({exc})") from None
        actual = hashlib.sha256(data).hexdigest()
        if actual != oid:
            raise StoreIntegrityError(
                f"{self.address}: payload for {kind}/{fp} hashes to "
                f"{actual}, peer claimed {oid}")
        meta = response.get("meta")
        return oid, data, meta if isinstance(meta, dict) else {}

    def put(self, kind: str, fp: str, data: bytes,
            meta: Optional[dict] = None) -> str:
        """Push one artifact; both ends verify the oid."""
        oid = hashlib.sha256(data).hexdigest()
        payload = base64.b64encode(data).decode("ascii")
        if self.max_frame is not None and len(payload) + 512 > self.max_frame:
            raise RemoteStoreError(
                f"{self.address}: {kind}/{fp} payload ({len(payload)}b "
                f"base64) exceeds peer frame limit {self.max_frame}")
        response = self.request({
            "op": "store_put", "version": self.version,
            "kind": kind, "fp": fp, "oid": oid, "data": payload,
            "meta": meta or {},
        })
        stored = response.get("oid")
        if stored != oid:
            raise StoreIntegrityError(
                f"{self.address}: stored {kind}/{fp} as {stored}, "
                f"expected {oid}")
        return oid
