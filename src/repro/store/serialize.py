"""(De)serialization of the three artifact classes.

Every object file is a small ASCII header (store format + artifact
kind, so a corrupt or foreign file is rejected before any decoding)
followed by a zlib-compressed pickle of the artifact's value state:

* **program** — the :class:`~repro.isa.program.Program` itself; its
  transient caches (scan cache, memoized trace records) are dropped by
  ``Program.__getstate__`` while the deterministic per-block decode
  artifacts ride along, so a loaded image is immediately warm.
* **trace** — the replay state of a :class:`~repro.isa.trace
  .TraceRecord`: the (addr, taken, next) step stream plus the walk
  context, *without* the program (traces are keyed to their image and
  rebound to it at load time, re-interning the DynBlock stream).
* **result** — the :class:`~repro.core.results.SimulationResult`
  dataclass, counters and stat dicts intact, so a cache hit is
  bit-identical to the simulation that produced it.

Loaders raise :class:`ArtifactDecodeError` on *any* malformed input;
callers treat that as a cache miss and recompute — a damaged store can
cost time, never correctness.  (Objects are pickles: a store is a local
cache, not an interchange format — do not load stores you don't trust.)
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any

from repro.core.results import SimulationResult
from repro.isa.program import Program
from repro.isa.trace import TraceRecord
from repro.store.fingerprint import FORMAT_VERSION

#: Leading bytes of every object file; tracks FORMAT_VERSION
#: structurally so the two can never drift apart.
HEADER = f"repro-store:{FORMAT_VERSION}\n".encode("ascii")

_KINDS = ("program", "trace", "result")


class ArtifactDecodeError(Exception):
    """An object's bytes could not be decoded as the expected artifact."""


def dumps(kind: str, payload: Any) -> bytes:
    """Encode one artifact payload as object-file bytes."""
    if kind not in _KINDS:
        raise ValueError(f"unknown artifact kind {kind!r}")
    body = zlib.compress(pickle.dumps(payload, protocol=4), 6)
    return HEADER + kind.encode("ascii") + b"\n" + body


def loads(kind: str, data: bytes) -> Any:
    """Decode object-file bytes, checking header and kind."""
    prefix = HEADER + kind.encode("ascii") + b"\n"
    if not data.startswith(prefix):
        raise ArtifactDecodeError(f"bad header for {kind} object")
    try:
        return pickle.loads(zlib.decompress(data[len(prefix):]))
    except Exception as exc:
        raise ArtifactDecodeError(f"undecodable {kind} object: {exc}") from exc


# ----------------------------------------------------------------------
# artifact-specific wrappers
# ----------------------------------------------------------------------

def dump_program(program: Program) -> bytes:
    return dumps("program", program)


def load_program(data: bytes) -> Program:
    program = loads("program", data)
    if not isinstance(program, Program):
        raise ArtifactDecodeError(
            f"program object decoded to {type(program).__name__}"
        )
    return program


def dump_trace(record: TraceRecord) -> bytes:
    return dumps("trace", record.export_state())


def load_trace(data: bytes, program: Program, seed: int) -> TraceRecord:
    state = loads("trace", data)
    try:
        return TraceRecord.from_state(program, seed, state)
    except ArtifactDecodeError:
        raise
    except Exception as exc:
        raise ArtifactDecodeError(f"trace replay failed: {exc}") from exc


def dump_result(result: SimulationResult) -> bytes:
    if result.extras:
        # ``extras`` carries run diagnostics (chain hit rates) that vary
        # with shared-cache warmth and engine mode.  Simulation outputs
        # are bit-identical across modes; dropping the diagnostics keeps
        # the encoded artifact — and its content address — neutral too.
        import dataclasses

        result = dataclasses.replace(result, extras={})
    return dumps("result", result)


def load_result(data: bytes) -> SimulationResult:
    result = loads("result", data)
    if not isinstance(result, SimulationResult):
        raise ArtifactDecodeError(
            f"result object decoded to {type(result).__name__}"
        )
    return result
