"""Domain-level artifact cache: programs, traces, results.

:class:`ArtifactCache` is the layer ``run_matrix`` and the CLI talk to.
It knows how the three artifact classes are fingerprinted and
serialized, counts hits and misses per kind, and enforces the safety
rule of the whole subsystem: **a store can only ever be a shortcut**.
Every load path falls back to recomputation on any decode or
verification failure, so a corrupt or stale store costs time, never
changes a result.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional, Union

from repro import obs
from repro.core.results import SimulationResult
from repro.isa.program import Program
from repro.isa.workloads import (
    DEFAULT_BASE_ADDRESS,
    prepare_program,
    ref_trace_seed,
)
from repro.store import serialize
from repro.store.fingerprint import program_fingerprint, trace_fingerprint
from repro.store.serialize import ArtifactDecodeError
from repro.store.store import ArtifactStore


class ArtifactCache:
    """Load-or-compute access to the store's three artifact kinds."""

    def __init__(self, store: Union[ArtifactStore, str]) -> None:
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        #: Per-kind hit/miss counters (this process's accesses only).
        self.hits: Dict[str, int] = {"program": 0, "trace": 0, "result": 0}
        self.misses: Dict[str, int] = {"program": 0, "trace": 0, "result": 0}
        #: Trace fingerprint -> the object id whose load failed here;
        #: :meth:`save_traces` rewrites these (unless the key's object
        #: *changed*, i.e. another process already healed it) so a
        #: corrupt or undecodable trace heals on the recompute path
        #: instead of being skipped forever on its (stale) ``n_blocks``
        #: index metadata.
        self._trace_load_failures: Dict[str, Optional[str]] = {}
        #: Program fingerprints already confirmed present (or whose
        #: write failed): :meth:`ensure_program` runs on every image
        #: cache hit, and re-serializing a whole image per matrix cell
        #: just to re-discover the store's state would dwarf the hit.
        self._programs_ensured: set = set()
        self._write_failure_warned = False

    def _hit(self, kind: str) -> None:
        self.hits[kind] += 1
        obs.STORE_HITS.inc(kind=kind)

    def _miss(self, kind: str) -> None:
        self.misses[kind] += 1
        obs.STORE_MISSES.inc(kind=kind)

    def _put(
        self,
        kind: str,
        fp: str,
        encode: Callable[[], bytes],
        meta: Optional[dict],
    ) -> bool:
        """Encode and store one artifact, degrading on failure.

        The subsystem's contract is that a store can only ever cost
        time: neither an unwritable store (full disk, read-only
        volume) nor an unencodable artifact (an unpicklable attribute
        a future change introduces, a non-JSON meta value) may abort a
        run whose simulations already succeeded.  ``encode`` runs
        inside the guard for exactly that reason; failures are
        reported once and swallowed.
        """
        try:
            self.store.put(kind, fp, encode(), meta=meta)
            return True
        except Exception as exc:
            # Deliberately broad: pickling surfaces arbitrary exception
            # types (AttributeError for local objects, TypeError,
            # PicklingError, ...), and any of them aborting a completed
            # simulation would break the contract above.  The warning
            # keeps genuine bugs visible.
            obs.STORE_WRITE_FAILURES.inc()
            obs.record_event(
                "store_write_failure", kind=kind, fp=fp, error=str(exc),
            )
            if not self._write_failure_warned:
                self._write_failure_warned = True
                print(
                    f"warning: artifact store {self.store.root} could not "
                    f"store a {kind} artifact ({exc}); results are "
                    f"unaffected but will not be cached", file=sys.stderr,
                )
            return False

    # ------------------------------------------------------------------
    # programs
    # ------------------------------------------------------------------
    def program(
        self,
        benchmark: str,
        optimized: bool,
        scale: float = 1.0,
        base_address: int = DEFAULT_BASE_ADDRESS,
        program_fp: Optional[str] = None,
    ) -> Program:
        """Load one linked image from the store, or build and store it.

        Either way the image's ``ref``-trace record is preloaded from
        the store when available, so a warm program replays its trace
        instead of re-walking the behaviours.
        """
        if program_fp is None:
            program_fp = program_fingerprint(
                benchmark, optimized, scale, base_address
            )
        program: Optional[Program] = None
        data = self.store.get("program", program_fp)
        if data is not None:
            try:
                program = serialize.load_program(data)
            except ArtifactDecodeError:
                program = None
        if program is not None:
            self._hit("program")
            self._programs_ensured.add(program_fp)
        else:
            self._miss("program")
            program = prepare_program(
                benchmark, optimized=optimized, scale=scale,
                base_address=base_address,
            )
            self._put(
                "program", program_fp,
                lambda: serialize.dump_program(program),
                meta={
                    "benchmark": benchmark,
                    "optimized": optimized,
                    "scale": scale,
                },
            )
            self._programs_ensured.add(program_fp)
        self.load_trace(program, program_fp, ref_trace_seed(benchmark))
        return program

    def ensure_program(
        self,
        program: Program,
        program_fp: str,
        benchmark: str,
        optimized: bool,
        scale: float,
    ) -> bool:
        """Backfill the store with an already-linked image, if absent.

        Covers the path where an in-process cache served the image (so
        :meth:`program` never ran): without this, a store populated by
        a warm process would hold results but no images, and the next
        process would relink from scratch.
        """
        if program_fp in self._programs_ensured:
            return False
        if self.store.get_entry("program", program_fp) is not None:
            self._programs_ensured.add(program_fp)
            return False
        written = self._put(
            "program", program_fp,
            lambda: serialize.dump_program(program),
            meta={
                "benchmark": benchmark,
                "optimized": optimized,
                "scale": scale,
            },
        )
        # Recorded even on failure: _put warned once, and retrying the
        # full image serialization per cell buys nothing.
        self._programs_ensured.add(program_fp)
        return written

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------
    def load_trace(self, program: Program, program_fp: str, seed: int) -> bool:
        """Install the stored trace record for (program, seed), if any.

        No-op when the program already memoizes a record for that seed
        (an in-memory record is at least as long as anything stored by
        this process).  Returns True when a stored record was installed.
        """
        if seed in program._trace_records:
            return False
        trace_fp = trace_fingerprint(program_fp, seed)
        entry = self.store.get_entry("trace", trace_fp)
        data = (
            self.store._read_object(entry["object"])
            if entry is not None else None
        )
        if data is not None:
            try:
                record = serialize.load_trace(data, program, seed)
            except ArtifactDecodeError:
                record = None
            if record is not None:
                program._trace_records[seed] = record
                self._hit("trace")
                return True
            # Hash-valid bytes that do not decode: remember *which*
            # object failed so save_traces rewrites exactly it.
            self._trace_load_failures[trace_fp] = entry["object"]
        elif entry is not None:
            # An entry exists but its object is gone or rotten.  Only
            # an entry-backed failure marks the key — a plain
            # nothing-stored-yet miss must keep the n_blocks guard in
            # :meth:`save_traces` armed, or a racing short-trace worker
            # could overwrite a longer record another worker just saved.
            self._trace_load_failures[trace_fp] = entry["object"]
        self._miss("trace")
        return False

    def save_traces(self, program: Program, program_fp: str) -> int:
        """Persist every trace record of ``program`` that grew beyond
        what the store already holds; returns how many were written.

        Racing writers are harmless: writes are atomic and the walk is
        deterministic, so whichever (prefix-consistent) record wins, a
        later loader replays it and extends from its saved walk state.
        """
        written = 0
        for seed, record in program._trace_records.items():
            n_blocks = len(record.blocks)
            if n_blocks == 0:
                continue
            trace_fp = trace_fingerprint(program_fp, seed)
            entry = self.store.get_entry("trace", trace_fp)
            if entry is not None:
                flagged = trace_fp in self._trace_load_failures
                if flagged and \
                        entry["object"] != \
                        self._trace_load_failures[trace_fp] and \
                        self.store._read_object(entry["object"]) is not None:
                    # The key points at a *different*, intact object
                    # than the one that failed here: another process
                    # healed it since our failed load.  Fall back to
                    # the n_blocks guard so a short record cannot
                    # clobber their longer one.  (Same object id means
                    # the bad bytes are still in place — hash-valid but
                    # undecodable counts — so the rewrite proceeds.)
                    del self._trace_load_failures[trace_fp]
                    flagged = False
                if not flagged:
                    stored = entry.get("meta", {}).get("n_blocks", 0)
                    if isinstance(stored, int) and stored >= n_blocks:
                        continue
            healing = trace_fp in self._trace_load_failures
            if self._put(
                "trace", trace_fp,
                lambda record=record: serialize.dump_trace(record),
                meta={"seed": seed, "n_blocks": n_blocks},
            ):
                if healing:
                    obs.STORE_HEALS.inc()
                    obs.record_event("store_heal", kind="trace", fp=trace_fp)
                self._trace_load_failures.pop(trace_fp, None)
                written += 1
        return written

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def result(self, result_fp: str) -> Optional[SimulationResult]:
        """The cached result for a cell fingerprint, or None."""
        data = self.store.get("result", result_fp)
        if data is not None:
            try:
                result = serialize.load_result(data)
            except ArtifactDecodeError:
                result = None
            if result is not None:
                self._hit("result")
                return result
        self._miss("result")
        return None

    def put_result(
        self,
        result_fp: str,
        result: SimulationResult,
        meta: Optional[dict] = None,
    ) -> None:
        self._put(
            "result", result_fp, lambda: serialize.dump_result(result),
            meta=meta,
        )

    def put_result_bytes(
        self,
        result_fp: str,
        data: bytes,
        meta: Optional[dict] = None,
    ) -> Optional[SimulationResult]:
        """Ingest an already-encoded result (the remote-cell path).

        A serve daemon ships results in the store's own object
        encoding, so a cluster sweep can persist the *wire bytes*
        verbatim — the local store entry is then bit-identical to the
        one the daemon wrote, with no decode/re-encode round trip in
        between.  The bytes are validated by decoding first; bytes a
        different code version produced (undecodable here) are
        rejected — stored, they would poison every later run's cache —
        and the caller falls back to re-encoding its decoded result.
        Returns the decoded result on success, None on rejection.
        """
        try:
            result = serialize.load_result(data)
        except ArtifactDecodeError:
            return None
        self._put("result", result_fp, lambda: data, meta=meta)
        return result


def as_artifact_cache(
    store: Union[ArtifactCache, ArtifactStore, str]
) -> ArtifactCache:
    """Coerce a path / store / cache into an :class:`ArtifactCache`."""
    if isinstance(store, ArtifactCache):
        return store
    return ArtifactCache(store)
