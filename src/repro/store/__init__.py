"""Persistent content-addressed artifact store + incremental runs.

The experiment matrix is a pure function of its inputs: every
(arch, benchmark, width, layout) cell is a deterministic simulation of
a deterministically generated program.  This package persists the three
artifact classes that make re-running that function expensive —

* linked :class:`~repro.isa.program.Program` images (generation +
  profile-driven layout + linking),
* :class:`~repro.isa.trace.TraceRecord` dynamic traces (the behaviour
  walk), and
* per-cell :class:`~repro.core.results.SimulationResult`\\ s (the
  simulation itself)

— under content-addressed objects on disk, keyed by fingerprints of
*every input that can change the result* plus a code-version salt, so a
warm store turns repeated figure/table reproduction into cache hits and
a stale store self-invalidates when the simulator changes.

Layout of a store rooted at ``<root>``::

    <root>/objects/<aa>/<rest-of-sha256>   # artifact bytes, named by hash
    <root>/index/<kind>/<fingerprint>.json # fingerprint -> object + meta

Writes are atomic (temp file + ``os.replace``), so concurrent readers
and racing writers — the parallel ``run_matrix`` workers — are safe:
readers never observe a partial object, and when two writers race on
one key, one complete write wins.
"""

from repro.store.cache import ArtifactCache, as_artifact_cache
from repro.store.fingerprint import (
    code_version,
    fingerprint,
    program_fingerprint,
    result_fingerprint,
    trace_fingerprint,
)
from repro.store.pending import PendingCell, PendingRegistry
from repro.store.store import ArtifactStore

__all__ = [
    "ArtifactCache",
    "ArtifactStore",
    "PendingCell",
    "PendingRegistry",
    "as_artifact_cache",
    "code_version",
    "fingerprint",
    "program_fingerprint",
    "result_fingerprint",
    "trace_fingerprint",
]
