"""The on-disk content-addressed object store.

Two trees under one root::

    objects/<aa>/<rest>        # artifact bytes, named by their SHA-256
    index/<kind>/<fp>.json     # one JSON line: fingerprint -> object id

Objects are immutable and shared: two index entries whose artifacts
serialize identically reference one object file.  All writes go through
a temp file in the destination directory followed by ``os.replace``, so

* readers never see a partially written object or index entry, and
* when several writers race on one key — the parallel ``run_matrix``
  workers saving the same trace — each write is complete and one wins.

Reads are paranoid: an index entry that fails to parse, references a
missing object, or references an object whose bytes no longer hash to
its name is treated as a miss (``None``), never returned as data.  The
maintenance surface (:meth:`stats` / :meth:`verify` / :meth:`gc`) backs
the ``repro-experiments cache`` subcommand.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs

#: Environment variable naming the default store directory.
STORE_ENV = "REPRO_STORE"

#: gc only sweeps temp files older than this — a younger one may be a
#: concurrent run's in-flight atomic write.
TMP_MAX_AGE_SECONDS = 3600.0

#: gc drops sweep journals (see ``runs/``) untouched for this long even
#: when incomplete — the sweep is presumed abandoned; its results stay
#: subject to the ordinary index/object policy.
JOURNAL_MAX_AGE_SECONDS = 30 * 86400.0

#: Fault-injection seam: ``repro.exec.faults`` installs a callable here
#: (and only then) so tests can interrupt a write between the temp file
#: and its atomic replace.  ``None`` — the production state — costs one
#: attribute test per write.  The store must never import ``repro.exec``
#: itself; the hook is pushed in from the other side.
_write_fault_hook = None

_FP_CHARS = set("0123456789abcdef")


def _atomic_write(path: str, data: bytes,
                  fault_target: Optional[str] = None) -> None:
    """Write ``data`` to ``path`` atomically (temp file + replace)."""
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        hook = _write_fault_hook
        if hook is not None and fault_target is not None:
            hook(fault_target)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# sweep journals (written by repro.exec.journal, collected by gc below)
# ----------------------------------------------------------------------
def journal_header_line(sweep_fp: str, cells: int) -> str:
    """The JSON header line opening a sweep journal."""
    return json.dumps(
        {"journal": 1, "sweep": sweep_fp, "cells": cells}, sort_keys=True
    )


def append_journal_lines(path: str, lines: "List[str]") -> None:
    """Append ``lines`` to a journal in one ``O_APPEND`` write.

    POSIX appends of one small buffer are atomic enough for this
    format: concurrent writers interleave whole lines, and a writer
    killed mid-write can at worst leave a torn *final* line, which
    :func:`read_journal` skips.
    """
    os.makedirs(os.path.dirname(path), exist_ok=True)
    data = "".join(line + "\n" for line in lines).encode("ascii")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def read_journal(path: str) -> Optional[dict]:
    """Parse a sweep journal: ``{"sweep", "cells", "done"}`` or None.

    Tolerant by construction — a missing or unreadable file is None, a
    torn or alien line is skipped, duplicate headers (two racing runs
    both opening the journal) collapse to the first.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError:
        return None
    sweep: Optional[str] = None
    cells: Optional[int] = None
    done: List[str] = []
    seen = set()
    for line in raw.decode("ascii", errors="replace").splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("{"):
            try:
                header = json.loads(line)
            except ValueError:
                continue
            if (
                sweep is None
                and isinstance(header, dict)
                and isinstance(header.get("sweep"), str)
                and isinstance(header.get("cells"), int)
            ):
                sweep = header["sweep"]
                cells = header["cells"]
            continue
        if len(line) == 64 and set(line) <= _FP_CHARS and line not in seen:
            seen.add(line)
            done.append(line)
    if sweep is None and not done:
        return None
    return {"sweep": sweep, "cells": cells, "done": done}


class ArtifactStore:
    """A content-addressed object store rooted at one directory."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(os.fspath(root))

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    @property
    def index_dir(self) -> str:
        return os.path.join(self.root, "index")

    @property
    def runs_dir(self) -> str:
        """Sweep journals (see :mod:`repro.exec.journal`)."""
        return os.path.join(self.root, "runs")

    def _object_path(self, oid: str) -> str:
        return os.path.join(self.objects_dir, oid[:2], oid[2:])

    def _index_path(self, kind: str, fp: str) -> str:
        return os.path.join(self.index_dir, kind, fp + ".json")

    def journal_path(self, sweep_fp: str) -> str:
        return os.path.join(self.runs_dir, sweep_fp + ".journal")

    def events_path(self, sweep_fp: str) -> str:
        """The flight-recorder file living next to a sweep's journal."""
        return os.path.join(self.runs_dir, sweep_fp + ".events")

    def iter_journals(self) -> Iterator[Tuple[str, str]]:
        """Yield (sweep fingerprint, path) for every journal present."""
        runs_dir = self.runs_dir
        if not os.path.isdir(runs_dir):
            return
        for name in sorted(os.listdir(runs_dir)):
            if name.startswith(".tmp-") or not name.endswith(".journal"):
                continue
            yield name[: -len(".journal")], os.path.join(runs_dir, name)

    def check_writable(self) -> Optional[str]:
        """Probe that this store can accept writes.

        Returns None on success, else a human-readable reason.  Run
        attach points call this so a read-only or otherwise broken
        store degrades to a storeless run with one up-front warning,
        instead of failing on the first ``put`` deep inside a worker.
        The probe file uses the ``.tmp-`` prefix, so an interrupted
        probe is swept by gc like any stray temp file.
        """
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, probe = tempfile.mkstemp(dir=self.root, prefix=".tmp-probe-")
            try:
                os.write(fd, b"ok")
            finally:
                os.close(fd)
            os.unlink(probe)
        except OSError as exc:
            return f"{type(exc).__name__}: {exc}"
        return None

    # ------------------------------------------------------------------
    # read/write
    # ------------------------------------------------------------------
    def put(
        self, kind: str, fp: str, data: bytes, meta: Optional[dict] = None
    ) -> str:
        """Store ``data`` and point ``(kind, fp)`` at it; returns the oid."""
        oid = hashlib.sha256(data).hexdigest()
        # Re-hash any existing file rather than trusting its presence:
        # writing over a *corrupt* object here is what lets a damaged
        # store heal on the recompute path instead of missing forever.
        if self._read_object(oid) is None:
            _atomic_write(self._object_path(oid), data,
                          fault_target=f"{kind}/{fp}:object")
        else:
            # Dedup hit: freshen the mtime so gc's racing-writer grace
            # also covers an aged orphan being re-referenced right now.
            try:
                os.utime(self._object_path(oid))
            except OSError:
                pass
        entry = {"object": oid, "size": len(data), "meta": meta or {}}
        _atomic_write(
            self._index_path(kind, fp),
            (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8"),
            fault_target=f"{kind}/{fp}:index",
        )
        return oid

    def get_entry(self, kind: str, fp: str) -> Optional[dict]:
        """The parsed index entry for a key, or None (incl. corrupt).

        Validates every field consumers touch — parseable-but-malformed
        entries (a null size, a non-dict meta) must degrade to a miss
        like any other corruption, not crash ``stats`` or a worker's
        trace save mid-run.
        """
        try:
            with open(self._index_path(kind, fp), "rb") as fh:
                entry = json.loads(fh.read())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("object"), str)
            or not isinstance(entry.get("size", 0), int)
            or not isinstance(entry.get("meta", {}), dict)
        ):
            return None
        return entry

    def get(self, kind: str, fp: str) -> Optional[bytes]:
        """The object bytes for a key, hash-verified, or None on any
        failure (missing, truncated, or tampered — a miss, never lies)."""
        entry = self.get_entry(kind, fp)
        if entry is None:
            return None
        return self._read_object(entry["object"])

    def _read_object(self, oid: str) -> Optional[bytes]:
        try:
            with open(self._object_path(oid), "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        if hashlib.sha256(data).hexdigest() != oid:
            return None
        return data

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def iter_index(self) -> Iterator[Tuple[str, str, Optional[dict]]]:
        """Yield (kind, fingerprint, entry-or-None) for every index file."""
        index_dir = self.index_dir
        if not os.path.isdir(index_dir):
            return
        for kind in sorted(os.listdir(index_dir)):
            kind_dir = os.path.join(index_dir, kind)
            if not os.path.isdir(kind_dir):
                continue
            for name in sorted(os.listdir(kind_dir)):
                if name.startswith(".tmp-") or not name.endswith(".json"):
                    continue
                fp = name[: -len(".json")]
                yield kind, fp, self.get_entry(kind, fp)

    def iter_objects(self) -> Iterator[Tuple[str, str]]:
        """Yield (oid, path) for every object file present."""
        objects_dir = self.objects_dir
        if not os.path.isdir(objects_dir):
            return
        for shard in sorted(os.listdir(objects_dir)):
            shard_dir = os.path.join(objects_dir, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.startswith(".tmp-"):
                    continue
                oid = shard + name
                if len(oid) == 64 and set(oid) <= _FP_CHARS:
                    yield oid, os.path.join(shard_dir, name)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _classify_objects(self) -> tuple:
        """One pass over all objects: ``(sizes, paths, intact, corrupt,
        unreadable)``.

        The single classification both :meth:`verify` and :meth:`gc`
        consume, so the two can never drift on what counts as corrupt:
        ``corrupt`` holds confirmed hash mismatches (reclaimable),
        ``unreadable`` holds objects whose bytes could not be read at
        all (possibly transient — these are also in ``intact``, i.e.
        treated as live, so a gc pass during an I/O hiccup cannot
        discard valid keys).
        """
        sizes: Dict[str, int] = {}
        paths: Dict[str, str] = {}
        intact: set = set()
        corrupt: List[str] = []
        unreadable: List[str] = []
        for oid, path in self.iter_objects():
            paths[oid] = path
            try:
                sizes[oid] = os.path.getsize(path)
            except OSError:
                sizes[oid] = 0
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                unreadable.append(oid)
                intact.add(oid)
                continue
            if hashlib.sha256(data).hexdigest() == oid:
                intact.add(oid)
            else:
                corrupt.append(oid)
        return sizes, paths, intact, corrupt, unreadable

    def stats(self) -> dict:
        """Object/index counts and byte totals, per artifact kind."""
        kinds: Dict[str, dict] = {}
        live: Dict[str, int] = {}
        bad_entries = 0
        for kind, fp, entry in self.iter_index():
            row = kinds.setdefault(kind, {"entries": 0, "bytes": 0})
            if entry is None:
                bad_entries += 1
                continue
            row["entries"] += 1
            row["bytes"] += int(entry.get("size", 0))
            live[entry["object"]] = 1
        objects = 0
        object_bytes = 0
        orphans = 0
        for oid, path in self.iter_objects():
            objects += 1
            try:
                object_bytes += os.path.getsize(path)
            except OSError:
                continue
            if oid not in live:
                orphans += 1
        journals = 0
        journal_bytes = 0
        journals_complete = 0
        ages: List[float] = []
        now = time.time()
        for _sweep_fp, path in self.iter_journals():
            journals += 1
            record = read_journal(path)
            if (
                record is not None
                and record["cells"] is not None
                and len(record["done"]) >= record["cells"]
            ):
                journals_complete += 1
            try:
                journal_bytes += os.path.getsize(path)
                ages.append(max(0.0, now - os.path.getmtime(path)))
            except OSError:
                continue
        return {
            "root": self.root,
            "kinds": kinds,
            "objects": objects,
            "object_bytes": object_bytes,
            "orphan_objects": orphans,
            "bad_entries": bad_entries,
            "journals": journals,
            "journal_bytes": journal_bytes,
            "journals_complete": journals_complete,
            "journal_oldest_seconds": max(ages) if ages else None,
            "journal_newest_seconds": min(ages) if ages else None,
        }

    def verify(self) -> dict:
        """Re-hash every object; cross-check the index.

        Returns ``{"checked", "corrupt_objects", "unreadable_objects",
        "dangling_entries", "bad_entries"}``: ``corrupt_objects`` lists
        object ids whose bytes no longer hash to their name (``gc``
        reclaims these), ``unreadable_objects`` lists ids whose bytes
        could not be read at all (possibly transient — permissions, I/O
        — so ``gc`` deliberately leaves them alone), and
        ``dangling_entries`` lists (kind, fingerprint) keys referencing
        a missing or corrupt object.
        """
        _sizes, paths, intact, corrupt, unreadable = self._classify_objects()
        dangling: List[Tuple[str, str]] = []
        bad_entries: List[Tuple[str, str]] = []
        for kind, fp, entry in self.iter_index():
            if entry is None:
                bad_entries.append((kind, fp))
            elif entry["object"] not in intact:
                dangling.append((kind, fp))
        return {
            "checked": len(paths),
            "corrupt_objects": corrupt,
            "unreadable_objects": unreadable,
            "dangling_entries": dangling,
            "bad_entries": bad_entries,
        }

    def gc(
        self,
        max_bytes: Optional[int] = None,
        dry_run: bool = False,
        journal_max_age: Optional[float] = None,
    ) -> dict:
        """Collect garbage; optionally evict down to a size cap.

        ``journal_max_age`` (seconds) overrides the default
        :data:`JOURNAL_MAX_AGE_SECONDS` abandoned-sweep rule in step 4
        below — the CLI exposes it as ``cache gc --journal-days``.

        Policy, in order:

        1. stray temp files from interrupted writes are removed (only
           ones older than :data:`TMP_MAX_AGE_SECONDS` — a young temp
           file may be a concurrent run's in-flight write);
        2. corrupt objects (bytes no longer hashing to their name) are
           deleted, and unparseable or dangling index entries — ones
           referencing a missing or corrupt object — are removed, so a
           store that ``verify`` flags as corrupt comes back clean
           after ``gc`` (the affected keys simply go cold);
        3. if ``max_bytes`` is given and live objects exceed it, whole
           index entries are evicted oldest-first (index mtime — i.e.
           least recently *written*; reads do not refresh entries) until
           the live total fits;
        4. sweep journals (``runs/``) are pruned: a *complete* journal
           (every cell it declared is recorded) older than
           :data:`TMP_MAX_AGE_SECONDS` has served its purpose, and any
           journal — complete, torn or headerless — untouched for
           :data:`JOURNAL_MAX_AGE_SECONDS` is an abandoned sweep.
           Journal lines do **not** pin result entries against the
           size-cap eviction above: a resumed sweep whose results were
           evicted simply re-simulates those cells;
        5. objects no index entry references are deleted — except
           *intact* orphans younger than :data:`TMP_MAX_AGE_SECONDS`,
           which may be a concurrent writer's object whose index entry
           has not landed yet (``put`` writes the object first); a
           later gc collects them if they stay unreferenced.  Objects
           orphaned by *this* pass's own entry removal are exempt from
           the grace — gc just deleted their entries, so they are
           definitionally not an in-flight write, and a size cap that
           freed no bytes would be useless.

        With ``dry_run`` nothing is deleted; the returned summary shows
        what would happen.  Returns ``{"evicted_entries",
        "deleted_objects", "freed_bytes", "live_bytes", "tmp_removed",
        "journals_removed"}``.
        """
        tmp_removed = 0
        now = time.time()
        # The whole root: objects/, index/, runs/ and the top level
        # (where check_writable probes land if interrupted).
        for base in (self.root,):
            for dirpath, _dirnames, filenames in os.walk(base):
                for name in filenames:
                    if not name.startswith(".tmp-"):
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        if now - os.path.getmtime(path) < \
                                TMP_MAX_AGE_SECONDS:
                            continue
                    except OSError:
                        continue
                    tmp_removed += 1
                    if not dry_run:
                        try:
                            os.unlink(path)
                        except OSError:
                            pass

        # Re-hash every object (shared with verify, so the two cannot
        # disagree on what counts as corrupt): corrupt ones can never
        # be served and would otherwise pin their index entries red
        # forever, so gc reclaims them.  This makes gc O(store bytes)
        # like verify — stores are modest, and an integrity pass that
        # cannot clean what it finds is worse.
        object_sizes, object_paths, intact, _corrupt, _unreadable = \
            self._classify_objects()

        # Live references, annotated with entry age for LRU eviction.
        # Entries referencing a missing or corrupt object are dropped.
        entries: List[Tuple[float, str, str, str]] = []  # (mtime, kind, fp, oid)
        evicted: List[Tuple[str, str]] = []
        evicted_oids: set = set()
        for kind, fp, entry in self.iter_index():
            path = self._index_path(kind, fp)
            if entry is None or entry["object"] not in intact:
                if entry is None:
                    # get_entry conflates garbage with transient I/O
                    # failure; only confirmed-readable garbage may be
                    # removed (mirrors the unreadable-object grace).
                    try:
                        with open(path, "rb") as fh:
                            fh.read()
                    except OSError:
                        continue
                evicted.append((kind, fp))
                if entry is not None:
                    evicted_oids.add(entry["object"])
                if not dry_run:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                continue
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                mtime = time.time()
            entries.append((mtime, kind, fp, entry["object"]))

        if max_bytes is not None:
            entries.sort()  # oldest first
            alive = entries
            refs: Dict[str, int] = {}
            for _mtime, _kind, _fp, oid in alive:
                refs[oid] = refs.get(oid, 0) + 1
            live_bytes = sum(
                object_sizes.get(oid, 0) for oid in refs
            )
            keep: List[Tuple[float, str, str, str]] = []
            for i, (mtime, kind, fp, oid) in enumerate(alive):
                if live_bytes <= max_bytes:
                    keep.extend(alive[i:])
                    break
                evicted.append((kind, fp))
                evicted_oids.add(oid)
                if not dry_run:
                    try:
                        os.unlink(self._index_path(kind, fp))
                    except OSError:
                        pass
                refs[oid] -= 1
                if refs[oid] == 0:
                    live_bytes -= object_sizes.get(oid, 0)
            entries = keep

        live = {oid for _mtime, _kind, _fp, oid in entries}
        deleted = []
        freed = 0
        for oid, path in object_paths.items():
            if oid in live:
                continue
            if oid in intact and oid not in evicted_oids:
                # A fresh intact orphan may be a racing put() whose
                # index entry is still in flight; corrupt objects can
                # never be (object writes are atomic), and objects this
                # pass itself un-referenced are reclaimed immediately —
                # otherwise a size cap on a recent store frees nothing.
                try:
                    if now - os.path.getmtime(path) < TMP_MAX_AGE_SECONDS:
                        continue
                except OSError:
                    continue
            deleted.append(oid)
            freed += object_sizes.get(oid, 0)
            if not dry_run:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        journals_removed = 0
        events_removed = 0
        handled_sweeps: set = set()
        journal_age_limit = (
            JOURNAL_MAX_AGE_SECONDS if journal_max_age is None
            else journal_max_age
        )
        for sweep_fp, path in self.iter_journals():
            try:
                age = now - os.path.getmtime(path)
            except OSError:
                handled_sweeps.add(sweep_fp)
                continue
            record = read_journal(path)
            complete = (
                record is not None
                and record["cells"] is not None
                and len(record["done"]) >= record["cells"]
            )
            stale = age > journal_age_limit
            if not ((complete and age > TMP_MAX_AGE_SECONDS) or stale):
                handled_sweeps.add(sweep_fp)
                continue
            journals_removed += 1
            if not dry_run:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            # The flight recorder rides with its journal: same sweep,
            # same lifetime.  (Counting the sweep as kept stops the
            # orphan loop below from double-counting on a dry run.)
            handled_sweeps.add(sweep_fp)
            events = self.events_path(sweep_fp)
            if os.path.exists(events):
                events_removed += 1
                if not dry_run:
                    try:
                        os.unlink(events)
                    except OSError:
                        pass
        # Orphan recorders (journal long gone, or never written) age out
        # under the same abandoned-sweep rule.
        if os.path.isdir(self.runs_dir):
            for name in sorted(os.listdir(self.runs_dir)):
                if name.startswith(".tmp-") or not name.endswith(".events"):
                    continue
                if name[: -len(".events")] in handled_sweeps:
                    continue
                path = os.path.join(self.runs_dir, name)
                try:
                    if now - os.path.getmtime(path) <= journal_age_limit:
                        continue
                except OSError:
                    continue
                events_removed += 1
                if not dry_run:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
        report = {
            "evicted_entries": len(evicted),
            "deleted_objects": len(deleted),
            "freed_bytes": freed,
            "live_bytes": sum(object_sizes.get(oid, 0) for oid in live),
            "tmp_removed": tmp_removed,
            "journals_removed": journals_removed,
            "events_removed": events_removed,
            "dry_run": dry_run,
        }
        if not dry_run:
            obs.STORE_GC_RUNS.inc()
            for what, count in (
                ("object", len(deleted)), ("entry", len(evicted)),
                ("tmp", tmp_removed), ("journal", journals_removed),
                ("events", events_removed),
            ):
                if count:
                    obs.STORE_GC_REMOVED.inc(count, what=what)
            obs.record_event("gc", root=self.root, **{
                key: value for key, value in report.items()
                if key != "dry_run"
            })
        return report


def default_store_root() -> Optional[str]:
    """The store directory named by ``$REPRO_STORE``, if set."""
    root = os.environ.get(STORE_ENV)
    return root or None
