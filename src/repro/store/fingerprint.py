"""Deterministic fingerprints of everything that can change a result.

A fingerprint is the SHA-256 of a canonical JSON encoding of

* the artifact *kind* (``program`` / ``trace`` / ``result``),
* the complete input payload — workload spec + scale + seed, layout
  choice, trace seed, machine parameters, instruction budget — reduced
  to plain data via :func:`canonical`,
* the store format version, and
* a **code-version salt**: a hash over every ``repro`` source file.

The salt is what makes stale caches self-invalidate: any edit to the
simulator (a predictor tweak, a workload knob, a scheduling change)
changes the salt, every old fingerprint stops resolving, and the next
run repopulates the store from scratch.  That is deliberately
conservative — a comment-only edit also invalidates — because the
alternative (hand-maintained version numbers) fails silently in exactly
the cases that matter.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from repro.common.canonical import canonical

__all__ = [
    "FORMAT_VERSION",
    "canonical",
    "code_version",
    "fingerprint",
    "program_fingerprint",
    "result_fingerprint",
    "trace_fingerprint",
]

#: Bump when the on-disk object encoding changes incompatibly.
FORMAT_VERSION = 1

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro/**/*.py`` source file (memoized per process).

    Deterministic across processes on one tree: files are visited in
    sorted relative-path order and hashed with their paths, so renames
    count as changes too.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        # ``repro`` is a namespace package (no __init__.py, no
        # __file__), and its __path__ may list several directories.
        # Collect sources across *all* of them, first-entry-wins per
        # relative path — exactly the file Python would import — so an
        # edit to any importable module changes the salt.
        sources: dict = {}
        for entry in repro.__path__:
            root = os.path.abspath(entry)
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for name in filenames:
                    if name.endswith(".py"):
                        path = os.path.join(dirpath, name)
                        sources.setdefault(
                            os.path.relpath(path, root), path
                        )
        digest = hashlib.sha256()
        for relpath in sorted(sources):
            digest.update(relpath.encode("utf-8"))
            digest.update(b"\0")
            with open(sources[relpath], "rb") as fh:
                digest.update(fh.read())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


def fingerprint(kind: str, payload: Any) -> str:
    """The fingerprint (hex SHA-256) of one artifact key."""
    envelope = {
        "format": FORMAT_VERSION,
        "code": code_version(),
        "kind": kind,
        "payload": canonical(payload),
    }
    blob = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def program_fingerprint(
    benchmark: str,
    optimized: bool,
    scale: float = 1.0,
    base_address: Optional[int] = None,
    profile_blocks: Optional[int] = None,
) -> str:
    """Fingerprint of one linked program image.

    Covers every input :func:`repro.isa.workloads.prepare_program`
    consumes — the full :class:`~repro.isa.workloads.WorkloadSpec`
    (with its generator seed and ILP profile), the footprint scale, the
    layout choice, the train-profile salt and the base address — so two
    distinct specs can never alias even if they share a benchmark name.
    """
    from repro.isa.workloads import (
        DEFAULT_BASE_ADDRESS,
        program_fingerprint_inputs,
    )

    if base_address is None:
        base_address = DEFAULT_BASE_ADDRESS
    return fingerprint(
        "program",
        program_fingerprint_inputs(
            benchmark, optimized, scale=scale, base_address=base_address,
            profile_blocks=profile_blocks,
        ),
    )


def trace_fingerprint(program_fp: str, seed: int) -> str:
    """Fingerprint of one dynamic trace: (program image, walk seed)."""
    return fingerprint("trace", {"program": program_fp, "seed": seed})


def result_fingerprint(
    program_fp: str,
    arch: str,
    width: int,
    instructions: int,
    warmup: int,
    trace_seed: int,
    machine: Optional[Dict[str, Any]] = None,
) -> str:
    """Fingerprint of one simulated matrix cell.

    ``machine`` is the plain-data payload of the
    :class:`~repro.common.params.MachineParams` actually simulated (see
    :meth:`MachineParams.key_payload`); passing it explicitly means a
    parameter sweep that alters latencies or cache geometry produces
    distinct fingerprints even at one pipe width.
    """
    if machine is None:
        from repro.common.params import default_machine

        machine = default_machine(width).key_payload()
    return fingerprint(
        "result",
        {
            "program": program_fp,
            "arch": arch,
            "width": width,
            "instructions": instructions,
            "warmup": warmup,
            "trace_seed": trace_seed,
            "machine": machine,
        },
    )
