"""In-flight fingerprint registry: dedup *concurrent* cold lookups.

The content-addressed store already dedups *completed* work — two
writers racing on one fingerprint produce one object.  What it cannot
see is work that is still running: two concurrent requests for the same
cold cell would both simulate it, and only discover the duplication
when the second ``put`` lands on an existing object.  For a process
that serves many clients (the ``repro.serve`` daemon), that is the
difference between N identical requests costing one simulation or N.

:class:`PendingRegistry` closes that window.  The first caller to
:meth:`claim` a fingerprint becomes its **owner** — the one who must
compute the value and :meth:`resolve` (or :meth:`fail`) it; every
further claimant becomes a **subscriber** on the same
:class:`PendingCell` and just waits.  Entries are reference-counted:
:meth:`release` drops one subscription, and a cell whose subscribers
all gave up before anyone started computing it reports itself
abandonable (:meth:`PendingCell.abandoned`), so a scheduler can drop
queued work nobody is waiting for.

The registry is deliberately process-local and in-memory: cross-process
dedup is the store's job (atomic writes, content addressing); this
layer only has to collapse concurrency *within* the serving process,
where all concurrent requests meet anyway.  All methods are
thread-safe.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

__all__ = ["PendingCell", "PendingRegistry"]


class PendingCell:
    """One in-flight computation, shared by its owner and subscribers."""

    __slots__ = ("fp", "subscribers", "started", "_event", "_status",
                 "_value", "_error", "_lock")

    def __init__(self, fp: str) -> None:
        self.fp = fp
        #: Claims not yet released (owner included).
        self.subscribers = 1
        #: Whether the owner has begun computing (an abandoned queued
        #: cell may be dropped; an abandoned *running* cell still
        #: resolves, so its result reaches the store).
        self.started = False
        self._event = threading.Event()
        self._status: Optional[str] = None   # "ok" | "failed"
        self._value: Any = None
        self._error: Optional[str] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def settled(self) -> bool:
        return self._event.is_set()

    def abandoned(self) -> bool:
        """True when nobody waits for this cell and it never started."""
        with self._lock:
            return self.subscribers <= 0 and not self.started \
                and not self._event.is_set()

    def mark_started(self) -> None:
        with self._lock:
            self.started = True

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the cell settles; False on timeout."""
        return self._event.wait(timeout)

    def outcome(self) -> Tuple[Optional[str], Any, Optional[str]]:
        """``(status, value, error)`` — status None while in flight."""
        return self._status, self._value, self._error

    # owner-side -------------------------------------------------------
    def _settle(self, status: str, value: Any, error: Optional[str]) -> None:
        with self._lock:
            if self._event.is_set():  # first settle wins
                return
            self._status = status
            self._value = value
            self._error = error
            self._event.set()


class PendingRegistry:
    """Thread-safe fingerprint -> :class:`PendingCell` map."""

    def __init__(self) -> None:
        self._cells: Dict[str, PendingCell] = {}
        self._lock = threading.Lock()
        #: Claims that subscribed to an existing in-flight cell instead
        #: of owning a new one — the daemon's "coalesced" counter.
        self.coalesced = 0

    def claim(self, fp: str) -> Tuple[PendingCell, bool]:
        """Subscribe to ``fp``; returns ``(cell, is_owner)``.

        The owner (first claimant since the cell last settled or was
        abandoned) must eventually :meth:`resolve` or :meth:`fail` the
        fingerprint; everyone else just waits on the cell.  Every claim
        — owner or not — must be balanced by :meth:`release`.
        """
        with self._lock:
            cell = self._cells.get(fp)
            if cell is not None and not cell.settled:
                cell.subscribers += 1
                self.coalesced += 1
                return cell, False
            cell = PendingCell(fp)
            self._cells[fp] = cell
            return cell, True

    def get(self, fp: str) -> Optional[PendingCell]:
        with self._lock:
            return self._cells.get(fp)

    def resolve(self, fp: str, value: Any) -> None:
        """Owner: publish a computed value and wake all subscribers."""
        self._settle(fp, "ok", value, None)

    def fail(self, fp: str, error: str) -> None:
        """Owner: publish a failure and wake all subscribers."""
        self._settle(fp, "failed", None, error)

    def _settle(self, fp: str, status: str, value: Any,
                error: Optional[str]) -> None:
        with self._lock:
            cell = self._cells.pop(fp, None)
        if cell is not None:
            cell._settle(status, value, error)

    def release(self, fp: str, cell: Optional[PendingCell] = None) -> int:
        """Drop one subscription; returns the remaining count.

        A cell all of whose subscribers released before the owner
        started computing is removed from the registry (the next claim
        of the fingerprint starts fresh) — this is how a request
        hitting its deadline cancels queued-but-unstarted cells without
        touching ones another request still wants.
        """
        with self._lock:
            live = self._cells.get(fp)
            if cell is None:
                cell = live
            if cell is None:
                return 0
            with cell._lock:
                cell.subscribers -= 1
                remaining = cell.subscribers
                drop = (remaining <= 0 and not cell.started
                        and not cell._event.is_set())
            if drop and live is cell:
                del self._cells[fp]
            return remaining

    def depth(self) -> int:
        """In-flight (unsettled) fingerprints right now."""
        with self._lock:
            return len(self._cells)
