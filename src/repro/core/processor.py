"""The trace-driven processor: front-end + back-end co-simulation.

The processor owns the trace oracle (a :class:`TraceWalker`) and drives
one fetch engine cycle by cycle.  The modelling follows §4.1 of the
paper: a *static basic block dictionary* (the linked program image) lets
fetch continue down the predicted path after a misprediction, so wrong
speculative predictor-history updates and instruction cache pollution /
prefetching are simulated; recovery happens when the mispredicted branch
resolves in the back-end.

Per cycle:

1. Commit feedback — blocks whose commit time has arrived are replayed
   to the engine (predictor table updates happen in commit order).
2. Redirect — if the oldest unresolved misprediction resolves this
   cycle, the engine is redirected to the correct path and recovers its
   speculative state.
3. Fetch — unless the ROB is full, the engine fetches a bundle.
   Correct-path instructions are dispatched into the dataflow back-end
   (which fixes their completion/commit cycles immediately); every
   branch's predicted successor is verified against the trace, and the
   first divergence arms a resolution-time redirect.  Instructions
   fetched beyond the divergence are wrong-path: they cost fetch
   bandwidth and pollute caches, but never dispatch.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Deque, Optional, Tuple

from repro.common.params import MachineParams
from repro.common.types import INSTRUCTION_BYTES, BranchKind
from repro.core.backend import DataflowBackend
from repro.core.results import SimulationResult
from repro.fetch.base import FetchEngine
from repro.isa.trace import DynBlock, TraceWalker
from repro.memory.hierarchy import MemoryHierarchy


class _TraceCursor:
    """Tracks the correct-path position at instruction granularity."""

    __slots__ = ("_walker", "dyn", "offset", "exhausted")

    def __init__(self, walker: TraceWalker) -> None:
        self._walker = walker
        self.dyn: Optional[DynBlock] = None
        self.offset = 0
        self.exhausted = False
        self._advance_block()

    def _advance_block(self) -> None:
        try:
            self.dyn = next(self._walker)
            self.offset = 0
        except StopIteration:  # pragma: no cover - walkers are infinite
            self.dyn = None
            self.exhausted = True

    @property
    def addr(self) -> int:
        assert self.dyn is not None
        return self.dyn.addr + self.offset * INSTRUCTION_BYTES

    @property
    def at_block_end(self) -> bool:
        assert self.dyn is not None
        return self.offset == self.dyn.size - 1

    @property
    def actual_next(self) -> int:
        """The true successor address of the current instruction."""
        assert self.dyn is not None
        if self.at_block_end:
            return self.dyn.next_addr
        return self.addr + INSTRUCTION_BYTES

    def advance(self) -> None:
        if self.at_block_end:
            self._advance_block()
        else:
            self.offset += 1


class Processor:
    """Wires a fetch engine, a back-end model and a trace together."""

    def __init__(
        self,
        engine: FetchEngine,
        walker: TraceWalker,
        machine: MachineParams,
        mem: MemoryHierarchy,
        benchmark: str = "?",
        optimized: bool = False,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.mem = mem
        self.backend = DataflowBackend(machine, mem)
        self.cursor = _TraceCursor(walker)
        self.benchmark = benchmark
        self.optimized = optimized

    # ------------------------------------------------------------------
    def run(self, max_instructions: int, warmup: int = 0) -> SimulationResult:
        """Simulate until ``max_instructions`` have been scheduled.

        With ``warmup`` > 0, the first ``warmup`` instructions train the
        predictors and caches but are excluded from the reported cycle
        and event counts — the small-trace equivalent of the paper
        fast-forwarding to a representative segment before measuring.
        """
        core = self.machine.core
        engine = self.engine
        cursor = self.cursor
        backend = self.backend

        result = SimulationResult(
            benchmark=self.benchmark,
            engine=engine.name,
            width=core.width,
            optimized=self.optimized,
            cycles=0,
            instructions=0,
        )

        now = 0
        scheduled = 0
        warm_state: Optional[Tuple[int, int, SimulationResult, int, int]] = None
        diverged = False
        # (resolve_cycle, correct_addr, ckpt, counts_as_mispredict, dyn)
        pending: Optional[Tuple[int, int, object, bool, DynBlock]] = None
        # Commit feedback queue: (commit_cycle, dyn, payload, mispredicted)
        commit_queue: Deque[Tuple[int, DynBlock, object, bool]] = deque()
        # ROB occupancy: (commit_cycle, instruction_count) per block
        inflight: Deque[Tuple[int, int]] = deque()
        inflight_count = 0
        dispatch_depth = core.dispatch_depth

        # Hard safety net: a front-end deadlock (an engine stalling with
        # no pending redirect) must fail loudly, not spin forever.
        cycle_limit = 400 * max_instructions + 1_000_000

        while scheduled < max_instructions and not cursor.exhausted:
            now += 1
            if now > cycle_limit:
                raise RuntimeError(
                    f"simulation wedged: {scheduled} instructions in {now} "
                    f"cycles (engine={engine.name}, pending={pending}, "
                    f"diverged={diverged}, idle={result.idle_cycles})"
                )

            while commit_queue and commit_queue[0][0] <= now:
                _, dyn, payload, misp = commit_queue.popleft()
                engine.note_commit(dyn, payload, misp)
            while inflight and inflight[0][0] <= now:
                inflight_count -= inflight.popleft()[1]

            if pending is not None and now >= pending[0]:
                _, correct_addr, ckpt, _, resolved = pending
                engine.redirect(now, correct_addr, ckpt, resolved)
                pending = None
                diverged = False
                continue

            if not diverged and inflight_count >= core.rob_size:
                result.rob_stall_cycles += 1
                continue

            bundle = engine.cycle(now)
            if not bundle:
                result.idle_cycles += 1
                continue

            block_instrs = 0
            block_commit = 0
            correct_in_bundle = 0
            for addr, pred_next, ckpt, payload in bundle:
                if diverged:
                    result.wrong_path_instructions += 1
                    continue
                correct_in_bundle += 1
                assert addr == cursor.addr, (
                    f"engine fetched {addr:#x}, trace expects "
                    f"{cursor.addr:#x} at cycle {now}"
                )
                dyn = cursor.dyn
                lb = dyn.lb
                meta = engine.program.instr_meta(lb)[cursor.offset]
                slot_key = (lb.addr, cursor.offset)
                complete, commit = backend.dispatch(
                    meta, slot_key, now + dispatch_depth
                )
                scheduled += 1
                block_instrs += 1
                block_commit = commit

                at_end = cursor.at_block_end
                actual_next = cursor.actual_next
                if at_end:
                    self._account_block(result, dyn)
                    mispredicted = False
                    if pred_next is None:
                        # The engine has no target (indirect without a
                        # BTB entry): it stalls until resolution.
                        result.indirect_resolutions += 1
                        pending = (complete + 1, actual_next, ckpt, False, dyn)
                        diverged = True
                    elif pred_next != actual_next:
                        mispredicted = True
                        self._account_mispredict(result, dyn)
                        pending = (complete + 1, actual_next, ckpt, True, dyn)
                        diverged = True
                    commit_queue.append((commit, dyn, payload, mispredicted))
                    inflight.append((commit, block_instrs))
                    inflight_count += block_instrs
                    block_instrs = 0
                elif pred_next is not None and pred_next != actual_next:
                    # Defensive: a mid-block divergence means the engine
                    # predicted a jump out of a straight-line run.
                    pending = (complete + 1, actual_next, ckpt, True, dyn)
                    result.mispredictions += 1
                    diverged = True
                cursor.advance()

            if block_instrs:
                # Partial block at the bundle boundary still occupies
                # the window until its (future) block commit completes.
                inflight.append((block_commit, block_instrs))
                inflight_count += block_instrs

            if correct_in_bundle:
                result.fetch_cycles += 1
                result.fetched_instructions += correct_in_bundle

            if warmup and warm_state is None and scheduled >= warmup:
                warm_state = (
                    now,
                    scheduled,
                    copy.copy(result),
                    result.fetch_cycles,
                    result.fetched_instructions,
                )

            if scheduled >= max_instructions:
                break

        result.instructions = scheduled
        result.cycles = max(now, backend.last_commit_cycle)
        if warm_state is not None:
            warm_now, warm_sched, warm_result, warm_fc, warm_fi = warm_state
            result.instructions = scheduled - warm_sched
            result.cycles = max(now, backend.last_commit_cycle) - warm_now
            result.fetch_cycles -= warm_fc
            result.fetched_instructions -= warm_fi
            for name in (
                "branches", "cond_branches", "taken_branches",
                "mispredictions", "cond_mispredictions",
                "return_mispredictions", "indirect_resolutions",
                "wrong_path_instructions", "rob_stall_cycles", "idle_cycles",
            ):
                setattr(result, name,
                        getattr(result, name) - getattr(warm_result, name))
        result.engine_stats = engine.stats_dict()
        result.memory_stats = self.mem.stats_summary()
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _account_block(result: SimulationResult, dyn: DynBlock) -> None:
        kind = dyn.kind
        if not kind.is_control:
            return
        result.branches += 1
        if kind is BranchKind.COND:
            result.cond_branches += 1
        if dyn.taken:
            result.taken_branches += 1

    @staticmethod
    def _account_mispredict(result: SimulationResult, dyn: DynBlock) -> None:
        result.mispredictions += 1
        kind = dyn.kind
        if kind is BranchKind.COND:
            result.cond_mispredictions += 1
        elif kind is BranchKind.RET:
            result.return_mispredictions += 1
