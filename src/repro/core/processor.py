"""The trace-driven processor: front-end + back-end co-simulation.

The processor owns the trace oracle (a :class:`TraceWalker`) and drives
one fetch engine cycle by cycle.  The modelling follows §4.1 of the
paper: a *static basic block dictionary* (the linked program image) lets
fetch continue down the predicted path after a misprediction, so wrong
speculative predictor-history updates and instruction cache pollution /
prefetching are simulated; recovery happens when the mispredicted branch
resolves in the back-end.

Per cycle:

1. Commit feedback — blocks whose commit time has arrived are replayed
   to the engine (predictor table updates happen in commit order).
2. Redirect — if the oldest unresolved misprediction resolves this
   cycle, the engine is redirected to the correct path and recovers its
   speculative state.
3. Fetch — unless the ROB is full, the engine fetches a bundle of
   straight-line *fragments* (see :mod:`repro.fetch.base`).
   Correct-path fragments are split at basic-block boundaries and each
   segment is dispatched into the dataflow back-end in one batched call
   (which fixes its completion/commit cycles immediately); every
   branch's predicted successor is verified against the trace, and the
   first divergence arms a resolution-time redirect.  Instructions
   fetched beyond the divergence are wrong-path: they cost fetch
   bandwidth and pollute caches, but never dispatch.
"""

from __future__ import annotations

import copy
import time
from collections import deque
from typing import Deque, Optional, Tuple

from repro import obs
from repro.common.params import MachineParams
from repro.common.types import INSTRUCTION_BYTES, BranchKind
from repro.core.backend import DataflowBackend, shared_schedule_templates
from repro.core.results import SimulationResult
from repro.fetch.base import FetchEngine
from repro.isa.trace import DynBlock, TraceWalker
from repro.memory.hierarchy import MemoryHierarchy

#: Sentinel "no queued entry" cycle for the cached queue heads.
_NEVER = 1 << 62


class _TraceCursor:
    """Tracks the correct-path position at instruction granularity."""

    __slots__ = ("_walker", "dyn", "offset", "exhausted")

    def __init__(self, walker: TraceWalker) -> None:
        self._walker = walker
        self.dyn: Optional[DynBlock] = None
        self.offset = 0
        self.exhausted = False
        self._advance_block()

    def _advance_block(self) -> None:
        try:
            self.dyn = next(self._walker)
            self.offset = 0
        except StopIteration:  # pragma: no cover - walkers are infinite
            self.dyn = None
            self.exhausted = True

    @property
    def addr(self) -> int:
        assert self.dyn is not None
        return self.dyn.addr + self.offset * INSTRUCTION_BYTES

    @property
    def at_block_end(self) -> bool:
        assert self.dyn is not None
        return self.offset == self.dyn.size - 1

    @property
    def actual_next(self) -> int:
        """The true successor address of the current instruction."""
        assert self.dyn is not None
        if self.at_block_end:
            return self.dyn.next_addr
        return self.addr + INSTRUCTION_BYTES

    def advance(self) -> None:
        if self.at_block_end:
            self._advance_block()
        else:
            self.offset += 1


class Processor:
    """Wires a fetch engine, a back-end model and a trace together."""

    def __init__(
        self,
        engine: FetchEngine,
        walker: TraceWalker,
        machine: MachineParams,
        mem: MemoryHierarchy,
        benchmark: str = "?",
        optimized: bool = False,
        engine_mode: Optional[str] = None,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.mem = mem
        self.backend = DataflowBackend(machine, mem)
        # Schedule templates are pure per (image, width, latencies):
        # share one store across every processor over this image so
        # repeated cells replay warm templates instead of re-recording.
        self.backend._templates = shared_schedule_templates(
            engine.program, machine.core.width, self.backend._lvl_lat
        )
        self.cursor = _TraceCursor(walker)
        self.benchmark = benchmark
        self.optimized = optimized
        # ``engine_mode`` selects the execution strategy, never the
        # results: "accel" runs the exec-compiled specialized kernels of
        # :mod:`repro.accel` (bit-identical, falling back to the
        # interpreter with a single warning if codegen fails), "interp"
        # forces the interpreted path, None/"auto" consults $REPRO_ACCEL
        # and defaults to the accelerator.
        from repro import accel

        self.engine_mode = accel.resolve_engine_mode(engine_mode)
        self._accel_run = (
            accel.compiled_run(self) if self.engine_mode == "accel" else None
        )

    # ------------------------------------------------------------------
    def run(
        self,
        max_instructions: int,
        warmup: int = 0,
        _reference_dispatch: bool = False,
    ) -> SimulationResult:
        """Simulate until ``max_instructions`` have been scheduled.

        With ``warmup`` > 0, the first ``warmup`` instructions train the
        predictors and caches but are excluded from the reported cycle
        and event counts — the small-trace equivalent of the paper
        fast-forwarding to a representative segment before measuring.

        ``_reference_dispatch`` routes every instruction through the
        canonical :meth:`DataflowBackend.dispatch` — one call per slot —
        instead of the batched :meth:`DataflowBackend.dispatch_segment`.
        It exists for the parity test that pins the two implementations
        together; results must be identical either way (it also forces
        the interpreted path, bypassing any bound accel kernel).
        """
        # Observability happens only here, at the cell boundary — one
        # timestamp pair around the whole run, never inside the cycle
        # loop (the bench gate pins the hook's cost under 2%).
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        if self._accel_run is not None and not _reference_dispatch:
            result = self._accel_run(max_instructions, warmup)
            obs.observe_cell("accel", result,
                             time.perf_counter() - wall0,
                             time.process_time() - cpu0)
            return result
        core = self.machine.core
        engine = self.engine
        cursor = self.cursor
        backend = self.backend

        result = SimulationResult(
            benchmark=self.benchmark,
            engine=engine.name,
            width=core.width,
            optimized=self.optimized,
            cycles=0,
            instructions=0,
        )

        now = 0
        scheduled = 0
        # Chain-hit accounting baseline (the backend counters are
        # cumulative; the scheduler is parked here, so the attribute
        # view is current).
        seg_base = backend.seg_count
        chain_base = backend.chain_hits
        warm_state: Optional[Tuple[int, int, SimulationResult, int, int]] = None
        diverged = False
        # (resolve_cycle, correct_addr, ckpt, counts_as_mispredict, dyn)
        pending: Optional[Tuple[int, int, object, bool, DynBlock]] = None
        # Commit feedback queue: (commit_cycle, dyn, payload, mispredicted)
        commit_queue: Deque[Tuple[int, DynBlock, object, bool]] = deque()
        # ROB occupancy: (commit_cycle, instruction_count) per block
        inflight: Deque[Tuple[int, int]] = deque()
        inflight_count = 0
        commit_head = _NEVER
        inflight_head = _NEVER
        dispatch_depth = core.dispatch_depth
        rob_size = core.rob_size
        ib = INSTRUCTION_BYTES

        # Hot-path locals: every name below is read once or more per
        # fragment, so the attribute walks are paid here instead of
        # inside the loop.
        engine_cycle = engine.cycle
        note_commit = engine.note_commit
        # The scheduler is a persistent generator: one send per segment,
        # with the backend state held in its frame locals for the whole
        # run (parked/republished via backend._sync when needed).
        dispatch_ref = backend.dispatch if _reference_dispatch else None
        dispatch_seg = None if _reference_dispatch else backend.scheduler_send()
        commit_pop = commit_queue.popleft
        commit_push = commit_queue.append
        inflight_pop = inflight.popleft
        inflight_push = inflight.append
        walker_next = cursor._walker.__next__
        account_block = self._account_block
        account_mispredict = self._account_mispredict
        cur_dyn = cursor.dyn
        cur_off = cursor.offset

        # Hard safety net: a front-end deadlock (an engine stalling with
        # no pending redirect) must fail loudly, not spin forever.
        cycle_limit = 400 * max_instructions + 1_000_000

        while scheduled < max_instructions and cur_dyn is not None:
            now += 1
            if now > cycle_limit:
                raise RuntimeError(
                    f"simulation wedged: {scheduled} instructions in {now} "
                    f"cycles (engine={engine.name}, pending={pending}, "
                    f"diverged={diverged}, idle={result.idle_cycles})"
                )

            # Head cycles are cached as ints: commit slots are allocated
            # in order, so both queues are non-decreasing and the head
            # is always the minimum.
            while commit_head <= now:
                _, dyn, payload, misp = commit_pop()
                note_commit(dyn, payload, misp)
                commit_head = commit_queue[0][0] if commit_queue else _NEVER
            while inflight_head <= now:
                inflight_count -= inflight_pop()[1]
                inflight_head = inflight[0][0] if inflight else _NEVER

            if pending is not None and now >= pending[0]:
                _, correct_addr, ckpt, _, resolved = pending
                engine.redirect(now, correct_addr, ckpt, resolved)
                pending = None
                diverged = False
                continue

            if not diverged and inflight_count >= rob_size:
                # Nothing can change while the window stays full: the
                # next state change is a queued commit, an in-flight
                # retirement or the pending redirect.  Account the
                # stalled cycles in bulk and jump there (bit-exact: the
                # per-cycle loop would classify every skipped cycle as a
                # ROB stall and touch nothing else).
                nxt = commit_head if commit_head < inflight_head \
                    else inflight_head
                if pending is not None and pending[0] < nxt:
                    nxt = pending[0]
                result.rob_stall_cycles += nxt - now
                now = nxt - 1
                continue

            bundle = engine_cycle(now)
            if not bundle:
                # While the engine waits on the pending resolution it is
                # contractually a no-op (every engine returns None ahead
                # of its prediction stage when ``_waiting_resolve`` is
                # set), so those cycles jump in bulk too.  Other empty
                # cycles — an instruction-cache busy window, a queue
                # hiccup — advance one cycle exactly as before: the
                # decoupled engines keep predicting into the FTQ during
                # an I-cache stall, so skipping would lose that work.
                if engine._waiting_resolve and pending is not None:
                    nxt = commit_head if commit_head < inflight_head \
                        else inflight_head
                    if pending[0] < nxt:
                        nxt = pending[0]
                    if nxt > now + 1:
                        result.idle_cycles += nxt - now
                        now = nxt - 1
                    else:
                        result.idle_cycles += 1
                else:
                    result.idle_cycles += 1
                continue

            if diverged:
                # The whole bundle is wrong-path speculative fetch: it
                # cost bandwidth and polluted caches inside the engine,
                # but nothing dispatches.
                for frag in bundle:
                    result.wrong_path_instructions += frag[1]
                continue

            dispatch_cycle = now + dispatch_depth
            block_instrs = 0
            block_commit = 0
            correct_in_bundle = 0
            n_frags = len(bundle)
            for fi in range(n_frags):
                start, count, pred_next, ckpt, payload = bundle[fi]
                dyn = cur_dyn
                assert start == dyn.addr + cur_off * ib, (
                    f"engine fetched {start:#x}, trace expects "
                    f"{dyn.addr + cur_off * ib:#x} at cycle {now}"
                )
                remaining = count
                while remaining:
                    dyn = cur_dyn
                    size = dyn.size
                    take = size - cur_off
                    if take > remaining:
                        take = remaining
                    if dispatch_ref is None:
                        complete, commit = dispatch_seg(
                            (dyn.lb, cur_off, take, dispatch_cycle)
                        )
                    else:
                        # Parity-test path: the canonical per-slot model.
                        meta = dyn.meta
                        keys = dyn.keys
                        for i in range(cur_off, cur_off + take):
                            complete, commit = dispatch_ref(
                                meta[i], keys[i], dispatch_cycle
                            )
                    scheduled += take
                    correct_in_bundle += take
                    remaining -= take

                    if cur_off + take == size:
                        # Block boundary: verify the prediction for the
                        # terminal instruction.  Fragment interiors are
                        # implicitly sequential, so interior block ends
                        # predict the fall-through with no checkpoint.
                        if remaining:
                            pred = dyn.addr + size * ib
                            ck = None
                            pl = None
                        else:
                            pred = pred_next
                            ck = ckpt
                            pl = payload
                        actual_next = dyn.next_addr
                        account_block(result, dyn)
                        mispredicted = False
                        if pred is None:
                            # The engine has no target (indirect without
                            # a BTB entry): it stalls until resolution.
                            result.indirect_resolutions += 1
                            pending = (complete + 1, actual_next, ck,
                                       False, dyn)
                            diverged = True
                        elif pred != actual_next:
                            mispredicted = True
                            account_mispredict(result, dyn)
                            pending = (complete + 1, actual_next, ck,
                                       True, dyn)
                            diverged = True
                        commit_push((commit, dyn, pl, mispredicted))
                        if commit < commit_head:
                            commit_head = commit
                        inflight_push((commit, block_instrs + take))
                        if commit < inflight_head:
                            inflight_head = commit
                        inflight_count += block_instrs + take
                        block_instrs = 0
                        try:
                            cur_dyn = walker_next()
                            cur_off = 0
                        except StopIteration:  # pragma: no cover - infinite
                            cur_dyn = None
                            cur_off = 0
                            break
                        if diverged:
                            break
                    else:
                        # Fragment ends mid-block (bundle boundary).
                        cur_off += take
                        block_instrs += take
                        block_commit = commit
                        if pred_next is not None:
                            last_next = start + count * ib
                            if pred_next != last_next:
                                # Defensive: a mid-block divergence means
                                # the engine predicted a jump out of a
                                # straight-line run.
                                pending = (complete + 1, last_next, ckpt,
                                           True, dyn)
                                result.mispredictions += 1
                                diverged = True
                        break  # remaining is 0 here by construction

                if cur_dyn is None:  # pragma: no cover - walkers are infinite
                    break
                if diverged:
                    # Everything past the divergence is wrong-path.
                    wrong = remaining
                    for fj in range(fi + 1, n_frags):
                        wrong += bundle[fj][1]
                    result.wrong_path_instructions += wrong
                    break

            if block_instrs:
                # Partial block at the bundle boundary still occupies
                # the window until its (future) block commit completes.
                inflight_push((block_commit, block_instrs))
                if block_commit < inflight_head:
                    inflight_head = block_commit
                inflight_count += block_instrs

            if correct_in_bundle:
                result.fetch_cycles += 1
                result.fetched_instructions += correct_in_bundle

            if warmup and warm_state is None and scheduled >= warmup:
                warm_state = (
                    now,
                    scheduled,
                    copy.copy(result),
                    result.fetch_cycles,
                    result.fetched_instructions,
                )

            if scheduled >= max_instructions:
                break

        # Publish the loop-local cursor state back to the cursor object
        # so the processor can be inspected (or resumed) after the run.
        cursor.dyn = cur_dyn
        cursor.offset = cur_off
        cursor.exhausted = cur_dyn is None

        result.instructions = scheduled
        result.cycles = max(now, backend.last_commit_cycle)
        if warm_state is not None:
            warm_now, warm_sched, warm_result, warm_fc, warm_fi = warm_state
            result.instructions = scheduled - warm_sched
            result.cycles = max(now, backend.last_commit_cycle) - warm_now
            result.fetch_cycles -= warm_fc
            result.fetched_instructions -= warm_fi
            for name in (
                "branches", "cond_branches", "taken_branches",
                "mispredictions", "cond_mispredictions",
                "return_mispredictions", "indirect_resolutions",
                "wrong_path_instructions", "rob_stall_cycles", "idle_cycles",
            ):
                setattr(result, name,
                        getattr(result, name) - getattr(warm_result, name))
        result.engine_stats = engine.stats_dict()
        result.memory_stats = self.mem.stats_summary()
        # Chain diagnostics (reading last_commit_cycle above parked the
        # scheduler, so the counters are published).  These describe
        # *how* the run executed — they ride in ``extras`` so they never
        # perturb result equality or stored artifacts.
        segs = backend.seg_count - seg_base
        chained = backend.chain_hits - chain_base
        result.extras = {
            "segments": segs,
            "chain_hits": chained,
            "chain_hit_rate": (chained / segs) if segs else 0.0,
        }
        obs.observe_cell("interp", result,
                         time.perf_counter() - wall0,
                         time.process_time() - cpu0)
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _account_block(result: SimulationResult, dyn: DynBlock) -> None:
        kind = dyn.kind
        if kind is BranchKind.NONE:
            return
        result.branches += 1
        if kind is BranchKind.COND:
            result.cond_branches += 1
        if dyn.taken:
            result.taken_branches += 1

    @staticmethod
    def _account_mispredict(result: SimulationResult, dyn: DynBlock) -> None:
        result.mispredictions += 1
        kind = dyn.kind
        if kind is BranchKind.COND:
            result.cond_mispredictions += 1
        elif kind is BranchKind.RET:
            result.return_mispredictions += 1
