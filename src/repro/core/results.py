"""Simulation results and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(slots=True)
class SimulationResult:
    """Everything a single simulation run measured.

    Raw counters are kept so results can be merged / re-derived; the
    properties expose the three headline metrics of the paper's
    evaluation: IPC (Figs. 8 & 9), fetch IPC and branch misprediction
    rate (Table 3).
    """

    benchmark: str
    engine: str
    width: int
    optimized: bool
    cycles: int
    instructions: int
    # branch accounting (committed, correct path)
    branches: int = 0
    cond_branches: int = 0
    taken_branches: int = 0
    mispredictions: int = 0
    cond_mispredictions: int = 0
    return_mispredictions: int = 0
    indirect_resolutions: int = 0
    # fetch accounting
    fetch_cycles: int = 0
    fetched_instructions: int = 0
    wrong_path_instructions: int = 0
    rob_stall_cycles: int = 0
    idle_cycles: int = 0
    engine_stats: Dict[str, int] = field(default_factory=dict)
    memory_stats: Dict[str, float] = field(default_factory=dict)
    #: Run diagnostics that depend on *how* the simulation executed,
    #: not on what it simulated — e.g. schedule-template chain hit
    #: rates, which vary with shared-cache warmth across processors and
    #: engine modes.  Excluded from equality (``compare=False``) and
    #: stripped before a result is persisted to the artifact store:
    #: simulation outputs stay bit-identical across engine modes, and
    #: fingerprints/artifacts stay mode- and warmth-neutral.
    extras: Dict[str, float] = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (the Fig. 8/9 metric)."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def fetch_ipc(self) -> float:
        """Instructions the front-end delivered per active fetch cycle.

        The paper's Table 3 "Fetch IPC": the actual fetch width achieved
        when the engine produced instructions, including wrong-path
        bundles (the front-end does not know better at that point).
        """
        if self.fetch_cycles == 0:
            return 0.0
        return self.fetched_instructions / self.fetch_cycles

    @property
    def branch_misprediction_rate(self) -> float:
        """Mispredictions per committed control-flow instruction."""
        if self.branches == 0:
            return 0.0
        return self.mispredictions / self.branches

    @property
    def cond_misprediction_rate(self) -> float:
        if self.cond_branches == 0:
            return 0.0
        return self.cond_mispredictions / self.cond_branches

    @property
    def wrong_path_fraction(self) -> float:
        total = self.fetched_instructions
        if total == 0:
            return 0.0
        return self.wrong_path_instructions / total

    # ------------------------------------------------------------------
    def summary(self) -> str:
        opt = "opt" if self.optimized else "base"
        return (
            f"{self.benchmark:10s} {self.engine:7s} {self.width}-wide {opt:4s}  "
            f"IPC={self.ipc:5.2f}  fetchIPC={self.fetch_ipc:5.2f}  "
            f"mispred={100 * self.branch_misprediction_rate:5.2f}%  "
            f"cycles={self.cycles}"
        )
