"""Cycle-level trace-driven processor simulation."""

from repro.core.backend import DataflowBackend
from repro.core.processor import Processor
from repro.core.results import SimulationResult

__all__ = ["DataflowBackend", "Processor", "SimulationResult"]
