"""A limited-window dataflow back-end model.

The paper's evaluation needs a back-end that (a) consumes at most
``width`` instructions per cycle, (b) exposes real dependence-limited
ILP so the 2-wide machine is back-end-bound while the 8-wide machine is
fetch-bound, and (c) resolves branches at a realistic depth so
misprediction penalties scale with pipeline length.  This model provides
exactly that:

* every instruction carries synthetic (class, latency, dependence
  distance) metadata generated deterministically per static slot;
* an instruction issues at the earliest cycle >= max(dispatch, source
  readiness) with a free issue slot (``width`` slots per cycle);
* loads probe the simulated L1D/L2 and extend their latency on misses;
* commit is in-order, ``width`` per cycle — the commit time feeds the
  ROB-occupancy gate that stalls fetch when the window fills.

The model is evaluated incrementally at dispatch time: because issue and
commit times depend only on *older* instructions, each instruction's
timing is final the moment it enters — which is what lets the processor
know a branch's resolution cycle as soon as it is fetched.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.params import MachineParams
from repro.common.types import InstrClass
from repro.isa.program import InstrMeta
from repro.memory.hierarchy import MemoryHierarchy

#: Ring size for completion-time lookback; must exceed the largest
#: dependence distance the metadata generator emits (64).
_RING = 128

# Plain-int class codes: metadata carries ints, and IntEnum equality is
# several times slower than int equality on the per-instruction path.
_LOAD = int(InstrClass.LOAD)
_STORE = int(InstrClass.STORE)


class DataflowBackend:
    """Incremental timing model for the out-of-order core."""

    __slots__ = (
        "machine", "mem", "width", "_completions", "_count",
        "_issue_used", "_issue_floor", "_last_commit",
        "_commits_in_cycle", "_load_counters",
        "load_accesses", "store_accesses",
    )

    def __init__(self, machine: MachineParams, mem: MemoryHierarchy) -> None:
        self.machine = machine
        self.mem = mem
        self.width = machine.core.width
        self._completions = [0] * _RING
        self._count = 0
        self._issue_used: Dict[int, int] = {}
        self._issue_floor = 0
        self._last_commit = 0
        self._commits_in_cycle = 0
        self._load_counters: Dict[Tuple[int, int], int] = {}
        self.load_accesses = 0
        self.store_accesses = 0

    # ------------------------------------------------------------------
    def dispatch(
        self, meta: InstrMeta, slot_key: Tuple[int, int], dispatch_cycle: int
    ) -> Tuple[int, int]:
        """Schedule one instruction; returns (complete, commit) cycles.

        This is the canonical dispatch model.  ``Processor.run`` carries
        a hand-inlined copy of this body (plus the L1D fast path of
        ``MemoryHierarchy.data_access``) for speed — any semantic change
        here must be mirrored there, and
        ``tests/core/test_backend.py::TestDispatchProcessorParity``
        cross-checks the two.
        """
        cls, latency, d1, d2, mem_base, mem_stride, mem_span = meta
        completions = self._completions
        index = self._count
        ready = dispatch_cycle + 1
        if d1:
            dep = completions[(index - d1) % _RING]
            if dep > ready:
                ready = dep
        if d2:
            dep = completions[(index - d2) % _RING]
            if dep > ready:
                ready = dep

        # Issue-slot allocation: earliest cycle >= ready with spare
        # issue bandwidth (inlined; this runs once per instruction and
        # the call overhead is measurable).
        width = self.width
        floor = self._issue_floor
        issue = ready if ready > floor else floor
        used = self._issue_used
        used_get = used.get
        while used_get(issue, 0) >= width:
            issue += 1
        used[issue] = used_get(issue, 0) + 1
        if len(used) > 4096:
            floor = issue - 256
            self._issue_used = {c: n for c, n in used.items() if c >= floor}
            if floor > self._issue_floor:
                self._issue_floor = floor

        if cls == _LOAD:
            latency += self._memory_latency(slot_key, mem_base, mem_stride,
                                            mem_span, is_store=False)
            self.load_accesses += 1
        elif cls == _STORE:
            # Stores retire through the store buffer; the D-cache access
            # happens for its side effects but does not extend latency.
            self._memory_latency(slot_key, mem_base, mem_stride, mem_span,
                                 is_store=True)
            self.store_accesses += 1

        complete = issue + latency
        completions[index % _RING] = complete
        self._count = index + 1

        # Commit-slot allocation: in-order, at most ``width`` per cycle.
        earliest = complete + 1
        last = self._last_commit
        commit = earliest if earliest > last else last
        if commit == last:
            if self._commits_in_cycle >= width:
                commit += 1
                self._commits_in_cycle = 1
            else:
                self._commits_in_cycle += 1
        else:
            self._commits_in_cycle = 1
        self._last_commit = commit
        return complete, commit

    # ------------------------------------------------------------------
    def _memory_latency(
        self,
        slot_key: Tuple[int, int],
        base: int,
        stride: int,
        span: int,
        is_store: bool,
    ) -> int:
        """Synthesize this access's address and probe the D-cache."""
        counters = self._load_counters
        k = counters.get(slot_key, 0)
        counters[slot_key] = k + 1
        addr = base + (k * stride) % (span if span > 0 else 1)
        # Inlined L1D-hit fast path of MemoryHierarchy.data_access.
        mem = self.mem
        if mem.dl1.access(addr):
            return mem._dl1_hit - 1
        if mem.l2.access(addr):
            return mem._dl1_hit + mem._l2_lat - 1
        return mem._dl1_hit + mem._l2_lat + mem._mem_lat - 1

    # ------------------------------------------------------------------
    @property
    def instructions(self) -> int:
        return self._count

    @property
    def last_commit_cycle(self) -> int:
        return self._last_commit
