"""A limited-window dataflow back-end model.

The paper's evaluation needs a back-end that (a) consumes at most
``width`` instructions per cycle, (b) exposes real dependence-limited
ILP so the 2-wide machine is back-end-bound while the 8-wide machine is
fetch-bound, and (c) resolves branches at a realistic depth so
misprediction penalties scale with pipeline length.  This model provides
exactly that:

* every instruction carries synthetic (class, latency, dependence
  distance) metadata generated deterministically per static slot;
* an instruction issues at the earliest cycle >= max(dispatch, source
  readiness) with a free issue slot (``width`` slots per cycle);
* loads probe the simulated L1D/L2 and extend their latency on misses;
* commit is in-order, ``width`` per cycle — the commit time feeds the
  ROB-occupancy gate that stalls fetch when the window fills.

The model is evaluated incrementally at dispatch time: because issue and
commit times depend only on *older* instructions, each instruction's
timing is final the moment it enters — which is what lets the processor
know a branch's resolution cycle as soon as it is fetched.

Block-batched scheduling
------------------------

The processor dispatches whole straight-line *segments* (a run of slots
inside one linear block, all sharing a dispatch cycle) through the
backend's **segment scheduler**.  Because the per-slot metadata is
static, the schedule of a segment is a pure function of the *relative
entry state*: the completion times of the (few) older instructions its
dependences reach, the issue-slot occupancy at cycles the segment can
still touch, the commit-chain position, and — for loads — which level of
the data hierarchy each access hit.  The scheduler normalizes that
state relative to the dispatch cycle, memoizes the resulting *schedule
template* (per-slot completion deltas plus the exit state), and replays
it on every recurrence; the D-cache is still probed per memory access
(those probes are stateful), and any entry state outside the template
preconditions falls back to a per-slot loop with identical semantics.

Chained templates
-----------------

Deciding *which* template comes next used to be the steady-state cost:
packing the relative entry-state key, hashing it and probing the shared
template dict for every ~4-instruction segment.  Every template
therefore carries a **transition table**: after it replays, the next
segment probes ``(successor segment, dispatch gap)`` and — through a
deep-completion-delta profile and a load-level map when the segment has
such inputs, directly otherwise — reaches the successor template with
no key build, no hash and no template-dict probe.  Edges are installed
by the keyed path (bounded per template), dispatch gaps past a
template's precomputed ``g_big`` threshold share one bucket edge (the
entry state is provably identical), and eviction is generation-exact:
clearing the store bumps its generation and every stale edge is
rejected before it can replay a freed template.  The follow is a pure
shortcut — both paths are bit-exact — and ``$REPRO_CHAINS`` switches it
off for A/B measurement.

The scheduler is implemented as a *persistent generator* so all of its
mutable state lives in one frame's locals for the lifetime of a run —
the Python-level equivalent of keeping the machine state in registers —
instead of being re-read from the object per call.  The attribute view
(``_count``, ``_last_commit``, ...) is refreshed by :meth:`_sync`,
which the canonical :meth:`dispatch` entry point and the public
inspection properties call automatically.  Either path produces
bit-identical timings to calling :meth:`dispatch` once per instruction
— ``tests/core/test_backend.py`` pins that parity.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple

from repro.common.params import MachineParams
from repro.common.types import InstrClass
from repro.isa.program import InstrMeta, LinearBlock, segment_plan
from repro.memory.hierarchy import MemoryHierarchy

#: Ring size for completion-time lookback; must exceed the largest
#: dependence distance the metadata generator emits (64).
_RING = 128

# Plain-int class codes: metadata carries ints, and IntEnum equality is
# several times slower than int equality on the per-instruction path.
_LOAD = int(InstrClass.LOAD)
_STORE = int(InstrClass.STORE)

#: Issue-occupancy ring size (slots, power of two).  The ring covers the
#: window of cycles a dispatch can still probe; cycles that would alias a
#: still-live entry spill into a dict (rare — it takes a dependence chain
#: booking issue slots ``_IU_SIZE`` cycles ahead).
_IU_SIZE = 8192
_IU_MASK = _IU_SIZE - 1

#: Occupancy-table compaction: when more than ``_IU_LIMIT`` distinct
#: issue cycles are tracked, entries older than ``issue - _IU_LAG`` are
#: dropped and the issue floor advances.  These values are semantics
#: (the floor clamps future issue searches), not just tuning: they must
#: match the seed model exactly.
_IU_LIMIT = 4096
_IU_LAG = 256

#: Template preconditions: relative entry-state components larger than
#: these fall back to the slow path rather than polluting the template
#: cache with one-off keys.  They gate only *which* path schedules a
#: segment — both paths are bit-exact — so they are cache tuning, not
#: semantics.  The delta bound covers an L2+memory round trip (115
#: cycles): a draining load-miss backlog used to push the commit-chain
#: delta past the old 64-cycle bound and strand whole phases on the
#: per-slot path.
_TPL_MAX_DELTA = 512
#: Radix for packing per-offset completion deltas into the key; must
#: exceed ``_TPL_MAX_DELTA``.
_TPL_K_RADIX = _TPL_MAX_DELTA + 1
#: Occupancy-tail bounds: at most this many distinct booked cycles...
_TPL_MAX_TAIL = 96
#: ...each at most this far past the dispatch cycle (packing radix 512).
#: The delta bound covers an L2+memory round trip, and the length/
#: re-arm window covers the distinct issue cycles such a backlog books:
#: memory-bound phases (twolf) used to fall off the template path for
#: whole stall windows, which also severed the chained-template path
#: at every per-slot blip.
_TPL_MAX_TAIL_DELTA = 511
#: Template-store capacity backstop.  All engines over one (image,
#: width, latencies) share a store, and the widened tail/delta bounds
#: let memory-bound workloads (twolf) legitimately populate tens of
#: thousands of templates per engine — a cap the old 64k limit could
#: hit mid-matrix, wiping every template *and* every chained transition
#: edge for all sharers at once.  The limit is a runaway backstop, not
#: a working-set bound.
_TPL_CACHE_LIMIT = 1 << 18

#: Chained-template bounds.  A transition edge is keyed on
#: ``(successor block addr * 4096 + skey) * 512 + gap`` — injective
#: while ``skey < 4096`` (segment start below 128 slots) and the
#: dispatch-cycle gap is at most ``_CHAIN_G_MAX`` — plus the *far
#: bucket*: every gap at or past the predecessor template's ``g_big``
#: threshold (precomputed at recording time) leaves a provably
#: identical relative entry state (empty occupancy tail, saturated
#: commit delta, fully-drained shallow completions), so all such gaps
#: share one bucket edge keyed with gap ``_CHAIN_G_BUCKET``.  Segments
#: outside those bounds simply stay on the keyed path.
_CHAIN_G_MAX = 255
_CHAIN_G_BUCKET = 256
_CHAIN_SKEY_MAX = 4096
#: At most this many transition edges per template (successor segment x
#: gap variants); megamorphic successors stop installing.
_CHAIN_EDGE_LIMIT = 64
#: At most this many "deep" completion-delta profiles resolved per edge
#: (dependences reaching past the previous segment are computed at
#: probe time and select the profile, so variable backlogs chain too).
_CHAIN_DEEP_LIMIT = 16
#: At most this many distinct load-level vectors resolved per profile.
_CHAIN_LVL_LIMIT = 8

#: Environment switch for the chained-template fast path (diagnostics /
#: A-B measurement; results are bit-identical either way).
CHAINS_ENV = "REPRO_CHAINS"
_CHAINS_OFF_VALUES = frozenset({"0", "false", "no", "off"})


def chains_enabled_default() -> bool:
    """Whether schedule-template chaining is on (``$REPRO_CHAINS``)."""
    import os

    env = os.environ.get(CHAINS_ENV, "").strip().lower()
    return env not in _CHAINS_OFF_VALUES


class TemplateStore(dict):
    """A schedule-template dict with an eviction generation.

    Templates carry the store generation they were recorded under;
    :meth:`clear` (the eviction path when the store overflows
    ``_TPL_CACHE_LIMIT``) bumps the generation, which *exactly*
    invalidates every chained transition edge pointing at an evicted
    template — a chain follow re-validates ``template[7] ==
    store.generation`` before replaying, so a stale edge can never
    replay a freed template.
    """

    __slots__ = ("generation",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.generation = 0

    def clear(self) -> None:  # noqa: A003 - dict interface
        self.generation += 1
        super().clear()


#: Shared schedule-template stores, keyed weakly by program image and
#: then by the backend-relevant machine shape.  A template is a pure
#: function of (block metadata, segment span, relative entry state,
#: pipe width, D-cache latency levels) — nothing about the processor or
#: fetch engine instance — so every backend simulating the same image
#: under the same (width, latencies) can share one store: the second
#: (architecture, rep) over an image replays warm templates instead of
#: re-recording them.  Purity also makes sharing mode-neutral: the
#: interpreted scheduler and the accel kernels read and write the same
#: dicts with identical keys and values.
_TEMPLATE_STORES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def shared_schedule_templates(program, width: int,
                              lvl_lat: Tuple[int, int, int]) -> dict:
    """The shared template dict for one (image, width, latencies)."""
    per_program = _TEMPLATE_STORES.get(program)
    if per_program is None:
        per_program = _TEMPLATE_STORES[program] = {}
    key = (width, lvl_lat)
    store = per_program.get(key)
    if store is None:
        store = per_program[key] = TemplateStore()
    return store


def _pack_tail(tail: Optional[tuple]) -> Optional[int]:
    """Prefix-coded int encoding of an occupancy tail, or None.

    The encoding is ``len``, then each ``(delta, n)`` pair in order —
    injective because the length prefix fixes the parse and each field
    is strictly bounded (``n`` is per-cycle issue usage, at most the
    machine width, and widths up to 16 are supported).  Tails that are
    unknown, too long, or out of those bounds encode as None (the
    template path skips them).
    """
    if tail is None or len(tail) > _TPL_MAX_TAIL:
        return None
    packed = len(tail)
    for dc, n in tail:
        if dc > _TPL_MAX_TAIL_DELTA or n > 16:
            return None
        packed = (packed * 512 + dc) * 17 + n
    return packed


class DataflowBackend:
    """Incremental timing model for the out-of-order core."""

    __slots__ = (
        "machine", "mem", "width", "_completions", "_count",
        "_issue_floor", "_last_commit",
        "_commits_in_cycle", "_load_counters",
        "load_accesses", "store_accesses",
        # Issue-occupancy table: stamped modulo ring + overflow dict.
        "_iu_vals", "_iu_stamps", "_iu_spill", "_iu_entries",
        # Block-batched scheduling state.
        "_templates", "_tail", "_tail_cycle", "_max_issue", "_lvl_lat",
        "_dl1_access", "_l2_access", "_sched", "_sched_send",
        # Chained-template state: the template replayed for the previous
        # segment (the transition-table source), whether chaining is on,
        # and the segment / chain-hit counters.
        "_chain_tpl", "chains_enabled", "seg_count", "chain_hits",
    )

    def __init__(self, machine: MachineParams, mem: MemoryHierarchy) -> None:
        self.machine = machine
        self.mem = mem
        self.width = machine.core.width
        self._completions = [0] * _RING
        self._count = 0
        self._issue_floor = 0
        self._last_commit = 0
        self._commits_in_cycle = 0
        self._load_counters: Dict[Tuple[int, int], int] = {}
        self.load_accesses = 0
        self.store_accesses = 0
        # Issue occupancy: cycle c lives at ring slot c & _IU_MASK when
        # the stamp matches; -1 stamps are free slots; aliasing cycles
        # live in the spill dict.  ``_iu_entries`` tracks the number of
        # distinct cycles exactly like ``len()`` of the dict it replaces,
        # so compaction triggers at identical moments.
        self._iu_vals = [0] * _IU_SIZE
        self._iu_stamps = [-1] * _IU_SIZE
        self._iu_spill: Dict[int, int] = {}
        self._iu_entries = 0
        # Schedule templates, keyed on (segment identity, relative entry
        # state); see the module docstring.
        self._templates: TemplateStore = TemplateStore()
        #: The template the previous segment resolved to, when its exit
        #: state is still the live entry state — the source whose
        #: transition table the next segment probes.  None whenever the
        #: chain is broken (per-slot fallback, canonical dispatch).
        self._chain_tpl = None
        self.chains_enabled = chains_enabled_default()
        #: Segments dispatched / segments resolved by a transition
        #: follow (no key build, no hash, no template-dict probe).
        self.seg_count = 0
        self.chain_hits = 0
        #: Exact issue occupancy at cycles > ``_tail_cycle`` as sorted
        #: (cycle - dispatch, count) pairs, or None when unknown.
        self._tail: Optional[tuple] = ()
        self._tail_cycle = 0
        #: Highest cycle any instruction has ever issued at.
        self._max_issue = 0
        hit = mem._dl1_hit
        l2 = mem._l2_lat
        self._lvl_lat = (hit - 1, hit + l2 - 1, hit + l2 + mem._mem_lat - 1)
        self._dl1_access = mem.dl1.access
        self._l2_access = mem.l2.access
        self._sched = None
        self._sched_send = None

    # ------------------------------------------------------------------
    # scheduler lifecycle
    # ------------------------------------------------------------------
    def scheduler_send(self):
        """The bound ``send`` of the persistent segment scheduler.

        The processor calls this once per run and then sends one
        ``(lb, start, count, dispatch_cycle)`` tuple per dispatched
        segment, receiving the terminal slot's ``(complete, commit)``.
        Sending ``None`` parks the scheduler: its frame-local state is
        published back to the backend's attributes (see :meth:`_sync`).
        """
        send = self._sched_send
        if send is None:
            self._sched = self._scheduler()
            next(self._sched)
            send = self._sched_send = self._sched.send
        return send

    def _sync(self) -> None:
        """Publish scheduler-local state back to the attribute view.

        Idempotent and cheap when the scheduler is already parked (or
        was never started); required before reading or mutating the
        scheduling state through the object (canonical :meth:`dispatch`,
        the inspection properties, tests poking at internals).
        """
        send = self._sched_send
        if send is not None:
            send(None)

    def dispatch_segment(
        self, lb: LinearBlock, start: int, count: int, dispatch_cycle: int
    ) -> Tuple[int, int]:
        """Schedule ``count`` slots of ``lb`` beginning at ``start``.

        All slots share ``dispatch_cycle`` (they were fetched in one
        bundle).  Returns the (complete, commit) cycles of the *last*
        slot — the only per-slot timings the processor consumes (branch
        resolution and block commit are terminal-slot properties).
        Equivalent to ``count`` calls of :meth:`dispatch`.
        """
        send = self._sched_send
        if send is None:
            send = self.scheduler_send()
        return send((lb, start, count, dispatch_cycle))

    # ------------------------------------------------------------------
    # issue-occupancy table helpers (the scheduler inlines these)
    # ------------------------------------------------------------------
    def _iu_get(self, cycle: int) -> int:
        if self._iu_stamps[cycle & _IU_MASK] == cycle:
            return self._iu_vals[cycle & _IU_MASK]
        if self._iu_spill:
            return self._iu_spill.get(cycle, 0)
        return 0

    def _iu_add(self, cycle: int, n: int) -> None:
        """Add ``n`` uses at ``cycle``; maintains the distinct-cycle count."""
        slot = cycle & _IU_MASK
        stamps = self._iu_stamps
        if stamps[slot] == cycle:
            self._iu_vals[slot] += n
            return
        spill = self._iu_spill
        if spill and cycle in spill:
            spill[cycle] += n
            return
        if stamps[slot] == -1:
            stamps[slot] = cycle
            self._iu_vals[slot] = n
        else:
            spill[cycle] = n
        self._iu_entries += 1

    def _iu_compact(self, issue: int) -> None:
        """Drop occupancy entries older than ``issue - _IU_LAG``.

        Mirrors the dict model exactly: entries below the raw floor are
        forgotten, the distinct-cycle count is recounted over the
        survivors, and the issue floor only ever advances.
        """
        floor = issue - _IU_LAG
        stamps = self._iu_stamps
        live = 0
        for slot in range(_IU_SIZE):
            stamp = stamps[slot]
            if stamp >= floor:
                live += 1
            elif stamp != -1:
                stamps[slot] = -1
        spill = self._iu_spill
        if spill:
            spill = {c: n for c, n in spill.items() if c >= floor}
            self._iu_spill = spill
        self._iu_entries = live + len(spill)
        if floor > self._issue_floor:
            self._issue_floor = floor

    # ------------------------------------------------------------------
    def dispatch(
        self, meta: InstrMeta, slot_key: Tuple[int, int], dispatch_cycle: int
    ) -> Tuple[int, int]:
        """Schedule one instruction; returns (complete, commit) cycles.

        This is the canonical dispatch model; the segment scheduler is
        the batched equivalent the processor uses, and
        ``tests/core/test_backend.py::TestDispatchProcessorParity``
        cross-checks the two over full simulations.
        """
        self._sync()
        # The per-instruction path leaves no template exit state behind:
        # the chain (like the occupancy tail below) is interrupted.
        self._chain_tpl = None
        cls, latency, d1, d2, mem_base, mem_stride, mem_span = meta
        completions = self._completions
        index = self._count
        ready = dispatch_cycle + 1
        if d1:
            dep = completions[(index - d1) % _RING]
            if dep > ready:
                ready = dep
        if d2:
            dep = completions[(index - d2) % _RING]
            if dep > ready:
                ready = dep

        # Issue-slot allocation: earliest cycle >= ready with spare
        # issue bandwidth.
        width = self.width
        floor = self._issue_floor
        issue = ready if ready > floor else floor
        while self._iu_get(issue) >= width:
            issue += 1
        self._iu_add(issue, 1)
        if issue > self._max_issue:
            self._max_issue = issue
        self._tail = None  # per-instruction path: occupancy tail unknown
        if self._iu_entries > _IU_LIMIT:
            self._iu_compact(issue)

        if cls == _LOAD:
            latency += self._memory_latency(slot_key, mem_base, mem_stride,
                                            mem_span, is_store=False)
            self.load_accesses += 1
        elif cls == _STORE:
            # Stores retire through the store buffer; the D-cache access
            # happens for its side effects but does not extend latency.
            self._memory_latency(slot_key, mem_base, mem_stride, mem_span,
                                 is_store=True)
            self.store_accesses += 1

        complete = issue + latency
        completions[index % _RING] = complete
        self._count = index + 1

        # Commit-slot allocation: in-order, at most ``width`` per cycle.
        earliest = complete + 1
        last = self._last_commit
        commit = earliest if earliest > last else last
        if commit == last:
            if self._commits_in_cycle >= width:
                commit += 1
                self._commits_in_cycle = 1
            else:
                self._commits_in_cycle += 1
        else:
            self._commits_in_cycle = 1
        self._last_commit = commit
        return complete, commit

    # ------------------------------------------------------------------
    def _scheduler(self):
        """Persistent batched segment scheduler (see module docstring).

        Protocol: ``send((lb, start, count, D))`` schedules one segment
        and yields its terminal ``(complete, commit)``; ``send(None)``
        parks the scheduler, publishing all frame-local state back to
        the backend attributes, and yields an acknowledgement.  On the
        next real send the state is re-hoisted from the attributes, so
        interleaving with the canonical per-instruction path stays
        coherent.

        Per segment the resolve order is: **transition follow** (the
        chained-template fast path — when the previous segment resolved
        to a template, its transition table maps ``(successor segment,
        dispatch gap)`` straight to the successor template: no key
        packing, no hash, no template-dict probe), then the **keyed
        path** (which installs the missing edge on success), then the
        **per-slot loop** (which breaks the chain).  All paths
        implement exactly the scheduling rules of :meth:`dispatch`; the
        parity test drives full simulations down every route.
        """
        width = self.width
        lvl0, lvl1, lvl2 = self._lvl_lat
        dl1 = self._dl1_access
        l2 = self._l2_access
        counters = self._load_counters
        completions = self._completions
        iu_vals = self._iu_vals
        iu_stamps = self._iu_stamps
        templates = self._templates
        counters_get = counters.get
        templates_get = templates.get
        chains_on = self.chains_enabled
        # Module-level constants and helpers as frame locals: these are
        # read once or more per segment.
        iu_mask = _IU_MASK
        iu_limit = _IU_LIMIT
        max_delta = _TPL_MAX_DELTA
        k_radix = _TPL_K_RADIX
        tail_dmax = _TPL_MAX_TAIL_DELTA
        cache_limit = _TPL_CACHE_LIMIT
        g_max = _CHAIN_G_MAX
        g_bucket = _CHAIN_G_BUCKET
        skey_max = _CHAIN_SKEY_MAX
        edge_limit = _CHAIN_EDGE_LIMIT
        deep_limit = _CHAIN_DEEP_LIMIT
        lvl_limit = _CHAIN_LVL_LIMIT
        make_plan = segment_plan

        result = None
        while True:
            args = yield result
            if args is None:
                result = None  # parked with nothing hoisted: plain ack
                continue
            # -- hoist the mutable scheduling state --------------------
            iu_spill = self._iu_spill
            entries = self._iu_entries
            floor = self._issue_floor
            cnt = self._count
            last = self._last_commit
            cic = self._commits_in_cycle
            max_issue = self._max_issue
            tail = self._tail
            tail_cycle = self._tail_cycle
            loads = self.load_accesses
            stores = self.store_accesses
            cur_tpl = self._chain_tpl
            segs = self.seg_count
            hits = self.chain_hits
            gen = templates.generation
            tail_k = _pack_tail(tail)

            while args is not None:
                lb, start, count, D = args
                segs += 1
                prev_tpl = cur_tpl
                cur_tpl = None
                skey = start * 32 + count
                tpl = None
                key = None
                levels = 0
                lvl_map = None
                edge_new = None
                edge_miss = False
                ek = 0

                # -- transition follow (chained templates) -------------
                # ``prev_tpl``'s exit state (written back as tail /
                # tail_cycle / completion-ring entries) is the live
                # entry state, so the successor key is a pure function
                # of (prev_tpl, successor segment, dispatch gap, the
                # "deep" completion deltas of dependences reaching past
                # the previous segment) — the edge resolves the deltas
                # through its per-profile map and the stateful D-cache
                # probe levels through the profile's per-level map.
                # Gaps at or past ``prev_tpl``'s precomputed ``g_big``
                # leave an identical entry state and share one bucket
                # edge.
                dmap_install = None
                if prev_tpl is not None and chains_on:
                    g = D - tail_cycle
                    if g >= prev_tpl[9]:
                        g = g_bucket
                    elif not 0 <= g <= g_max:
                        # Un-bucketed gaps own [0, g_max]; the bucket
                        # sentinel value itself is reserved, so a raw
                        # gap of exactly _CHAIN_G_BUCKET below g_big
                        # must NOT alias the bucket edge.
                        g = -1
                    if g >= 0 and skey < skey_max:
                        if floor <= D + 1 and entries + count <= iu_limit:
                            ek = (lb.addr * 4096 + skey) * 512 + g
                            rec = prev_tpl[8].get(ek)
                            if rec is None:
                                edge_miss = True
                            elif rec.__class__ is tuple:
                                # Fast edge (no memory plan, no deep
                                # reach): the value IS the successor
                                # template — one probe, one generation
                                # check, straight to replay.
                                if rec[7] == gen:
                                    tpl = rec
                                    hits += 1
                                    tail_cycle = D
                                else:
                                    edge_miss = True
                            else:
                                (deep_offs, mem_plan, lvl_span, tail2,
                                 tail_k2, dmap) = rec
                                dv = 0
                                okc = True
                                if deep_offs:
                                    base = D + 1
                                    for o in deep_offs:
                                        v = completions[(cnt + o) & 127] \
                                            - base
                                        if v <= 0:
                                            dv = dv * k_radix
                                        elif v <= max_delta:
                                            dv = dv * k_radix + v
                                        else:
                                            okc = False
                                            break
                                if okc:
                                    hit2 = dmap.get(dv)
                                    if hit2 is None:
                                        edge_miss = True
                                        dmap_install = dmap
                                    else:
                                        K0, rec_map = hit2
                                        # Memory probes: the stateful
                                        # work every path does, in
                                        # program order.
                                        if mem_plan:
                                            for (slot_key, is_load, base_a,
                                                 stride, span) in mem_plan:
                                                k = counters_get(slot_key, 0)
                                                counters[slot_key] = k + 1
                                                a = base_a \
                                                    + (k * stride) % span
                                                if dl1(a):
                                                    lvl = 1
                                                elif l2(a):
                                                    lvl = 2
                                                else:
                                                    lvl = 3
                                                if is_load:
                                                    levels = levels * 4 + lvl
                                                    loads += 1
                                                else:
                                                    stores += 1
                                        tpl = rec_map.get(levels)
                                        if tpl is not None \
                                                and tpl[7] == gen:
                                            # Chain hit: successor
                                            # reached with no key build,
                                            # no hash, no template-dict
                                            # probe.
                                            hits += 1
                                            tail_cycle = D
                                        else:
                                            # Profile known, level
                                            # vector new (or successor
                                            # evicted): the full key is
                                            # pure in the profile — no
                                            # offsets walk, no tail
                                            # shift.
                                            tpl = None
                                            key = (lb.addr, skey,
                                                   K0 * lvl_span + levels,
                                                   tail_k2)
                                            tail = tail2
                                            tail_k = tail_k2
                                            tail_cycle = D
                                            lvl_map = rec_map
                                            tpl = templates_get(key)

                if tpl is None and key is None:
                    # -- keyed path: shift tail, pack key, probe -------
                    # ``tail_k`` is the prefix-coded int encoding of the
                    # tail (length, then (delta, n) pairs) used in
                    # template keys; None when the tail is unknown or
                    # unencodable.
                    if tail_cycle != D:
                        if tail:
                            shift = D - tail_cycle
                            tail = tuple([
                                (dc - shift, n) for dc, n in tail
                                if dc > shift
                            ])
                            tail_k = _pack_tail(tail)
                        elif tail is None:
                            if max_issue <= D:
                                # Nothing is booked past the dispatch
                                # frontier: occupancy is exactly empty.
                                tail = ()
                                tail_k = 0
                            elif max_issue - D <= tail_dmax:
                                # Shallow backlog: reconstruct the exact
                                # occupancy at the few reachable booked
                                # cycles — re-arms the template path
                                # right after a slow-path blip.
                                t = []
                                for c in range(D + 1, max_issue + 1):
                                    s = c & iu_mask
                                    if iu_stamps[s] == c:
                                        n = iu_vals[s]
                                    elif iu_spill:
                                        n = iu_spill.get(c, 0)
                                    else:
                                        n = 0
                                    if n:
                                        t.append((c - D, n))
                                tail = tuple(t)
                                tail_k = _pack_tail(tail)
                            else:
                                tail_k = None
                        else:
                            tail_k = 0  # empty tail shifts to empty
                        tail_cycle = D

                    # -- template preconditions ------------------------
                    if tail_k is not None:
                        dlc = last - D
                        if dlc <= 2:
                            K = 0
                        elif dlc <= max_delta:
                            # Packed (last-commit delta, commits-in-cycle).
                            K = dlc * 64 + cic
                        else:
                            K = -1
                        if (
                            K >= 0
                            and floor <= D + 1
                            and entries + count <= iu_limit
                        ):
                            # Segments are at most ``width`` (<= 8)
                            # slots, so (start, count) packs into one
                            # int.
                            plan = lb._seg_plans.get(skey)
                            if plan is None:
                                plan = make_plan(lb, start, count)
                            offsets, mem_plan, lvl_span = plan
                            # An edge (or a new deep profile on an
                            # existing edge) can be installed on the
                            # previous template; the deep completion
                            # deltas fold into the profile key as the
                            # offsets walk passes them.
                            collecting = False
                            dv_new = 0
                            if edge_miss and prev_tpl[7] == gen:
                                if dmap_install is not None:
                                    collecting = (len(dmap_install)
                                                  < deep_limit)
                                else:
                                    collecting = (len(prev_tpl[8])
                                                  < edge_limit)
                                if collecting:
                                    pred_neg = -len(prev_tpl[0])
                            ok = True
                            if offsets:
                                base = D + 1
                                for o in offsets:
                                    v = completions[(cnt + o) & 127] - base
                                    if v <= 0:
                                        K = K * k_radix
                                        if collecting and o < pred_neg:
                                            dv_new = dv_new * k_radix
                                    elif v <= max_delta:
                                        K = K * k_radix + v
                                        if collecting and o < pred_neg:
                                            dv_new = dv_new * k_radix + v
                                    else:
                                        ok = False
                                        break
                            if ok:
                                # Memory probes: the stateful work both
                                # paths must do, probed in program order.
                                levels = 0
                                if mem_plan:
                                    for (slot_key, is_load, base_a, stride,
                                         span) in mem_plan:
                                        k = counters_get(slot_key, 0)
                                        counters[slot_key] = k + 1
                                        a = base_a + (k * stride) % span
                                        if dl1(a):
                                            lvl = 1
                                        elif l2(a):
                                            lvl = 2
                                        else:
                                            lvl = 3
                                        if is_load:
                                            levels = levels * 4 + lvl
                                            loads += 1
                                        else:
                                            stores += 1
                                key = (lb.addr, skey,
                                       K * lvl_span + levels, tail_k)
                                if collecting:
                                    edge_new = (dv_new, K, tail, tail_k)
                                tpl = templates_get(key)

                if tpl is not None:
                    # -- replay a memoized schedule template -----------
                    (completes, exit_lc, exit_cic, exit_tail, exit_tail_k,
                     bookings, max_issue_d, _tgen, _tchain, _gbig) = tpl
                    for cd in completes:
                        completions[cnt & 127] = D + cd
                        cnt += 1
                    for dc, n in bookings:
                        c = D + dc
                        s = c & iu_mask
                        if iu_stamps[s] == c:
                            iu_vals[s] += n
                        elif iu_spill and c in iu_spill:
                            iu_spill[c] += n
                        elif iu_stamps[s] == -1:
                            iu_stamps[s] = c
                            iu_vals[s] = n
                            entries += 1
                        else:
                            iu_spill[c] = n
                            entries += 1
                    mi = D + max_issue_d
                    if mi > max_issue:
                        max_issue = mi
                    tail = exit_tail
                    tail_k = exit_tail_k
                    last = D + exit_lc
                    cic = exit_cic
                    result_pair = (D + completes[-1], last)
                elif key is not None:
                    # -- record a new template -------------------------
                    # Run the canonical per-slot rules once (load
                    # latencies injected from the probe levels above),
                    # collecting the outputs; entry components outside
                    # the key are provably schedule-neutral, so the
                    # recording is valid for every recurrence of the
                    # key.
                    lvls = []
                    lv = levels
                    while lv:
                        lvls.append(lv % 4 - 1)
                        lv //= 4
                    lvls.reverse()
                    lvl_lat = (lvl0, lvl1, lvl2)
                    meta = lb._meta
                    bk: Dict[int, int] = {}
                    rec_completes = []
                    lvl_i = 0
                    seg_max = 0
                    for i in range(start, start + count):
                        (cls, latency, d1, d2, _mb, _ms,
                         _msp) = meta[i]
                        ready = D + 1
                        if d1:
                            dep = completions[(cnt - d1) & 127]
                            if dep > ready:
                                ready = dep
                        if d2:
                            dep = completions[(cnt - d2) & 127]
                            if dep > ready:
                                ready = dep
                        issue = ready  # floor <= D+1 <= ready
                        while True:
                            s = issue & iu_mask
                            if iu_stamps[s] == issue:
                                used = iu_vals[s]
                            elif iu_spill:
                                used = iu_spill.get(issue, 0)
                            else:
                                used = 0
                            if used < width:
                                break
                            issue += 1
                        s = issue & iu_mask
                        if iu_stamps[s] == issue:
                            iu_vals[s] += 1
                        elif iu_spill and issue in iu_spill:
                            iu_spill[issue] += 1
                        else:
                            if iu_stamps[s] == -1:
                                iu_stamps[s] = issue
                                iu_vals[s] = 1
                            else:
                                iu_spill[issue] = 1
                            entries += 1
                        bk[issue] = bk.get(issue, 0) + 1
                        if issue > max_issue:
                            max_issue = issue
                        if issue > seg_max:
                            seg_max = issue
                        if cls == _LOAD:
                            latency += lvl_lat[lvls[lvl_i]]
                            lvl_i += 1
                        complete = issue + latency
                        rec_completes.append(complete)
                        completions[cnt & 127] = complete
                        cnt += 1
                        earliest = complete + 1
                        commit = (earliest if earliest > last
                                  else last)
                        if commit == last:
                            if cic >= width:
                                commit += 1
                                cic = 1
                            else:
                                cic += 1
                        else:
                            cic = 1
                        last = commit
                    merged = dict(tail)
                    for c, n in bk.items():
                        dc = c - D
                        merged[dc] = merged.get(dc, 0) + n
                    exit_tail = tuple(sorted(merged.items()))
                    tail = exit_tail
                    tail_k = _pack_tail(exit_tail)
                    if len(templates) > cache_limit:
                        # Eviction: the generation bump exactly
                        # invalidates every chained edge pointing at
                        # the dropped templates.
                        templates.clear()
                        gen = templates.generation
                    # Far-gap threshold: a dispatch gap >= g_big leaves
                    # this template's exit state fully drained (empty
                    # shifted tail, commit delta <= 2, every shallow
                    # completion past its clamp), so all such gaps are
                    # chain-equivalent and share one bucket edge.
                    g_big = last - D - 2
                    if exit_tail and exit_tail[-1][0] > g_big:
                        g_big = exit_tail[-1][0]
                    cm = max(rec_completes) - D - 1
                    if cm > g_big:
                        g_big = cm
                    if g_big < 0:
                        g_big = 0
                    tpl = (
                        tuple([c - D for c in rec_completes]),
                        last - D,
                        cic,
                        exit_tail,
                        tail_k,
                        tuple(sorted(
                            (c - D, n) for c, n in bk.items()
                        )),
                        seg_max - D,
                        gen,
                        {},
                        g_big,
                    )
                    templates[key] = tpl
                    result_pair = (complete, last)

                if tpl is not None:
                    # The resolved template becomes the chain source for
                    # the next segment; resolve the pending installs.
                    cur_tpl = tpl
                    if lvl_map is not None:
                        if len(lvl_map) < lvl_limit:
                            lvl_map[levels] = tpl
                    elif edge_new is not None:
                        dv_n, K0n, t2, tk2 = edge_new
                        if dmap_install is not None:
                            dmap_install[dv_n] = (K0n, {levels: tpl})
                        else:
                            deep_offs = tuple([
                                o for o in offsets if o < pred_neg
                            ])
                            if deep_offs or mem_plan:
                                # General edge: a (list-typed) record
                                # resolving deep profiles and then load
                                # levels to the successor.
                                prev_tpl[8][ek] = [
                                    deep_offs, mem_plan, lvl_span, t2,
                                    tk2, {dv_n: (K0n, {levels: tpl})},
                                ]
                            else:
                                prev_tpl[8][ek] = tpl
                    args = yield result_pair
                    continue

                # -- per-slot loop (canonical rules, local state) ------
                tail = None  # occupancy tail no longer tracked exactly
                tail_k = None
                meta = lb._meta
                keys = lb._slot_keys
                ready_base = D + 1
                complete = commit = 0
                for i in range(start, start + count):
                    (cls, latency, d1, d2, mem_base, mem_stride,
                     mem_span) = meta[i]
                    ready = ready_base
                    if d1:
                        dep = completions[(cnt - d1) & 127]
                        if dep > ready:
                            ready = dep
                    if d2:
                        dep = completions[(cnt - d2) & 127]
                        if dep > ready:
                            ready = dep
                    issue = ready if ready > floor else floor
                    while True:
                        s = issue & iu_mask
                        if iu_stamps[s] == issue:
                            used = iu_vals[s]
                        elif iu_spill:
                            used = iu_spill.get(issue, 0)
                        else:
                            used = 0
                        if used < width:
                            break
                        issue += 1
                    s = issue & iu_mask
                    if iu_stamps[s] == issue:
                        iu_vals[s] += 1
                    elif iu_spill and issue in iu_spill:
                        iu_spill[issue] += 1
                    else:
                        if iu_stamps[s] == -1:
                            iu_stamps[s] = issue
                            iu_vals[s] = 1
                        else:
                            iu_spill[issue] = 1
                        entries += 1
                    if entries > iu_limit:
                        # The dict model checked its size after *every*
                        # insert, so an over-full table keeps compacting
                        # (and advancing the floor) until it shrinks.
                        self._iu_entries = entries
                        self._iu_compact(issue)
                        entries = self._iu_entries
                        iu_spill = self._iu_spill
                        floor = self._issue_floor
                    if issue > max_issue:
                        max_issue = issue

                    if cls == _LOAD or cls == _STORE:
                        slot_key = keys[i]
                        k = counters_get(slot_key, 0)
                        counters[slot_key] = k + 1
                        a = mem_base + (k * mem_stride) % (
                            mem_span if mem_span > 0 else 1
                        )
                        if dl1(a):
                            dlat = lvl0
                        elif l2(a):
                            dlat = lvl1
                        else:
                            dlat = lvl2
                        if cls == _LOAD:
                            latency += dlat
                            loads += 1
                        else:
                            stores += 1

                    complete = issue + latency
                    completions[cnt & 127] = complete
                    cnt += 1

                    earliest = complete + 1
                    commit = earliest if earliest > last else last
                    if commit == last:
                        if cic >= width:
                            commit += 1
                            cic = 1
                        else:
                            cic += 1
                    else:
                        cic = 1
                    last = commit
                args = yield (complete, commit)

            # -- park: publish the frame-local state -------------------
            self._iu_entries = entries
            self._issue_floor = floor
            self._count = cnt
            self._last_commit = last
            self._commits_in_cycle = cic
            self._max_issue = max_issue
            self._tail = tail
            self._tail_cycle = tail_cycle
            self.load_accesses = loads
            self.store_accesses = stores
            self._chain_tpl = cur_tpl
            self.seg_count = segs
            self.chain_hits = hits
            result = None

    # ------------------------------------------------------------------
    def _memory_latency(
        self,
        slot_key: Tuple[int, int],
        base: int,
        stride: int,
        span: int,
        is_store: bool,
    ) -> int:
        """Synthesize this access's address and probe the D-cache."""
        counters = self._load_counters
        k = counters.get(slot_key, 0)
        counters[slot_key] = k + 1
        addr = base + (k * stride) % (span if span > 0 else 1)
        # Inlined L1D-hit fast path of MemoryHierarchy.data_access.
        mem = self.mem
        if mem.dl1.access(addr):
            return mem._dl1_hit - 1
        if mem.l2.access(addr):
            return mem._dl1_hit + mem._l2_lat - 1
        return mem._dl1_hit + mem._l2_lat + mem._mem_lat - 1

    # ------------------------------------------------------------------
    @property
    def instructions(self) -> int:
        self._sync()
        return self._count

    @property
    def last_commit_cycle(self) -> int:
        self._sync()
        return self._last_commit
