"""A limited-window dataflow back-end model.

The paper's evaluation needs a back-end that (a) consumes at most
``width`` instructions per cycle, (b) exposes real dependence-limited
ILP so the 2-wide machine is back-end-bound while the 8-wide machine is
fetch-bound, and (c) resolves branches at a realistic depth so
misprediction penalties scale with pipeline length.  This model provides
exactly that:

* every instruction carries synthetic (class, latency, dependence
  distance) metadata generated deterministically per static slot;
* an instruction issues at the earliest cycle >= max(dispatch, source
  readiness) with a free issue slot (``width`` slots per cycle);
* loads probe the simulated L1D/L2 and extend their latency on misses;
* commit is in-order, ``width`` per cycle — the commit time feeds the
  ROB-occupancy gate that stalls fetch when the window fills.

The model is evaluated incrementally at dispatch time: because issue and
commit times depend only on *older* instructions, each instruction's
timing is final the moment it enters — which is what lets the processor
know a branch's resolution cycle as soon as it is fetched.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.params import MachineParams
from repro.common.types import InstrClass
from repro.isa.program import InstrMeta
from repro.memory.hierarchy import MemoryHierarchy

#: Ring size for completion-time lookback; must exceed the largest
#: dependence distance the metadata generator emits (64).
_RING = 128


class DataflowBackend:
    """Incremental timing model for the out-of-order core."""

    def __init__(self, machine: MachineParams, mem: MemoryHierarchy) -> None:
        self.machine = machine
        self.mem = mem
        self.width = machine.core.width
        self._completions = [0] * _RING
        self._count = 0
        self._issue_used: Dict[int, int] = {}
        self._issue_floor = 0
        self._last_commit = 0
        self._commits_in_cycle = 0
        self._load_counters: Dict[Tuple[int, int], int] = {}
        self.load_accesses = 0
        self.store_accesses = 0

    # ------------------------------------------------------------------
    def dispatch(
        self, meta: InstrMeta, slot_key: Tuple[int, int], dispatch_cycle: int
    ) -> Tuple[int, int]:
        """Schedule one instruction; returns (complete, commit) cycles."""
        cls, latency, d1, d2, mem_base, mem_stride, mem_span = meta
        index = self._count
        ready = dispatch_cycle + 1
        if d1:
            ready = max(ready, self._completions[(index - d1) % _RING])
        if d2:
            ready = max(ready, self._completions[(index - d2) % _RING])

        issue = self._allocate_issue_slot(ready)

        if cls == InstrClass.LOAD:
            latency += self._memory_latency(slot_key, mem_base, mem_stride,
                                            mem_span, is_store=False)
            self.load_accesses += 1
        elif cls == InstrClass.STORE:
            # Stores retire through the store buffer; the D-cache access
            # happens for its side effects but does not extend latency.
            self._memory_latency(slot_key, mem_base, mem_stride, mem_span,
                                 is_store=True)
            self.store_accesses += 1

        complete = issue + latency
        self._completions[index % _RING] = complete
        self._count += 1

        commit = self._allocate_commit_slot(complete + 1)
        return complete, commit

    # ------------------------------------------------------------------
    def _allocate_issue_slot(self, ready: int) -> int:
        """Earliest cycle >= ready with spare issue bandwidth."""
        cycle = max(ready, self._issue_floor)
        used = self._issue_used
        while used.get(cycle, 0) >= self.width:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        # Prune old cycles occasionally to bound memory.
        if len(used) > 4096:
            floor = cycle - 256
            self._issue_used = {c: n for c, n in used.items() if c >= floor}
            self._issue_floor = max(self._issue_floor, floor)
        return cycle

    def _allocate_commit_slot(self, earliest: int) -> int:
        """In-order commit, at most ``width`` per cycle."""
        commit = max(earliest, self._last_commit)
        if commit == self._last_commit:
            if self._commits_in_cycle >= self.width:
                commit += 1
                self._commits_in_cycle = 1
            else:
                self._commits_in_cycle += 1
        else:
            self._commits_in_cycle = 1
        self._last_commit = commit
        return commit

    def _memory_latency(
        self,
        slot_key: Tuple[int, int],
        base: int,
        stride: int,
        span: int,
        is_store: bool,
    ) -> int:
        """Synthesize this access's address and probe the D-cache."""
        k = self._load_counters.get(slot_key, 0)
        self._load_counters[slot_key] = k + 1
        addr = base + (k * stride) % max(span, 1)
        latency = self.mem.data_access(addr, is_store)
        return latency - 1  # the base latency already charges 1 cycle

    # ------------------------------------------------------------------
    @property
    def instructions(self) -> int:
        return self._count

    @property
    def last_commit_cycle(self) -> int:
        return self._last_commit
