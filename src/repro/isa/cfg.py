"""Control-flow graphs for synthetic workloads.

A :class:`ControlFlowGraph` is a set of functions, each a list of basic
blocks.  Blocks are connected at the *CFG level* (``succ_true`` /
``succ_false`` are block ids); the code layout pass later decides which
successor becomes the ISA fall-through and which is reached through a
taken branch.  This separation is the heart of the base-vs-optimized
comparison in the paper: the same CFG, walked with the same behaviours,
produces very different taken-branch statistics under different layouts.

Successor conventions by :class:`~repro.common.types.BranchKind`:

========  =======================  ==============================
kind      ``succ_true``            ``succ_false``
========  =======================  ==============================
NONE      unused                   fall-through successor
COND      successor when the       successor when the behaviour
          behaviour samples True   samples False
JUMP      jump target              unused
CALL      callee entry block       return-point block (the block
                                   control reaches after the call)
RET       unused (dynamic)         unused
IND       unused (see              unused
          ``ind_targets``)
========  =======================  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.common.types import BranchKind
from repro.isa.behavior import BranchBehavior, IndirectChooser


@dataclass
class IlpProfile:
    """Back-end-visible character of a workload's instructions.

    These parameters drive the deterministic synthesis of per-instruction
    metadata (latency, dependence distances, memory behaviour) used by
    the dataflow back-end model.
    """

    #: Mean dependence distance, in dynamic instructions (geometric).
    mean_dep_distance: float = 4.0
    #: Probability that an instruction depends on a recent producer at
    #: all (immediates and long-lived registers contribute no edge).
    dep_rate: float = 0.6
    #: Probability that an instruction has a second source dependence.
    second_source_rate: float = 0.25
    load_fraction: float = 0.22
    store_fraction: float = 0.10
    mul_fraction: float = 0.04
    #: Fraction of loads that stream with a small stride (high locality).
    load_streaming_fraction: float = 0.55
    #: Data footprint of non-streaming loads, in bytes.
    load_random_footprint: int = 1 << 19

    def __post_init__(self) -> None:
        if self.mean_dep_distance < 1.0:
            raise ValueError("mean_dep_distance must be >= 1")
        fractions = self.load_fraction + self.store_fraction + self.mul_fraction
        if fractions >= 1.0:
            raise ValueError("instruction class fractions must sum below 1")


@dataclass
class BasicBlock:
    """One static basic block (CFG level, address-free)."""

    bid: int
    size: int  # instructions, including the terminal control instruction
    kind: BranchKind = BranchKind.NONE
    succ_true: Optional[int] = None
    succ_false: Optional[int] = None
    behavior: Optional[BranchBehavior] = None
    ind_targets: Optional[List[int]] = None
    ind_chooser: Optional[IndirectChooser] = None
    func_id: int = -1

    def successors(self) -> List[int]:
        """All static successors (bid list); empty for returns."""
        if self.kind is BranchKind.IND:
            return list(self.ind_targets or [])
        out = []
        if self.kind in (BranchKind.COND, BranchKind.JUMP, BranchKind.CALL):
            if self.succ_true is not None:
                out.append(self.succ_true)
        if self.kind in (BranchKind.NONE, BranchKind.COND, BranchKind.CALL):
            if self.succ_false is not None:
                out.append(self.succ_false)
        return out


@dataclass
class Function:
    """A named group of blocks with a single entry."""

    fid: int
    name: str
    entry: int
    bids: List[int] = field(default_factory=list)


class ControlFlowGraph:
    """A whole-program CFG plus its instruction-level character."""

    def __init__(self, ilp: Optional[IlpProfile] = None) -> None:
        self.blocks: List[BasicBlock] = []
        self.functions: List[Function] = []
        self.entry_bid: Optional[int] = None
        self.ilp = ilp or IlpProfile()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_function(self, name: str) -> Function:
        func = Function(fid=len(self.functions), name=name, entry=-1)
        self.functions.append(func)
        return func

    def new_block(
        self,
        func: Function,
        size: int,
        kind: BranchKind = BranchKind.NONE,
        **kwargs,
    ) -> BasicBlock:
        if size < 1:
            raise ValueError("block size must be >= 1")
        block = BasicBlock(
            bid=len(self.blocks), size=size, kind=kind, func_id=func.fid, **kwargs
        )
        self.blocks.append(block)
        func.bids.append(block.bid)
        if func.entry < 0:
            func.entry = block.bid
        return block

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def total_instructions(self) -> int:
        return sum(b.size for b in self.blocks)

    def iter_blocks(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def conditional_blocks(self) -> List[BasicBlock]:
        return [b for b in self.blocks if b.kind is BranchKind.COND]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on problems.

        Run by workload builders after construction and by tests; the
        link step assumes these invariants hold.
        """
        if self.entry_bid is None:
            raise ValueError("CFG has no entry block")
        nblocks = len(self.blocks)

        def _check_bid(bid: Optional[int], what: str, owner: int) -> None:
            if bid is None or not 0 <= bid < nblocks:
                raise ValueError(f"block {owner}: invalid {what} ({bid})")

        for block in self.blocks:
            kind = block.kind
            if kind is BranchKind.NONE:
                _check_bid(block.succ_false, "fall-through successor", block.bid)
            elif kind is BranchKind.COND:
                _check_bid(block.succ_true, "true successor", block.bid)
                _check_bid(block.succ_false, "false successor", block.bid)
                if block.behavior is None:
                    raise ValueError(f"block {block.bid}: COND without behavior")
            elif kind is BranchKind.JUMP:
                _check_bid(block.succ_true, "jump target", block.bid)
            elif kind is BranchKind.CALL:
                _check_bid(block.succ_true, "callee entry", block.bid)
                _check_bid(block.succ_false, "return point", block.bid)
                callee = self.blocks[block.succ_true]
                entry = self.functions[callee.func_id].entry
                if callee.bid != entry:
                    raise ValueError(
                        f"block {block.bid}: call target {callee.bid} is not "
                        f"a function entry"
                    )
            elif kind is BranchKind.RET:
                pass
            elif kind is BranchKind.IND:
                if not block.ind_targets:
                    raise ValueError(f"block {block.bid}: IND without targets")
                for t in block.ind_targets:
                    _check_bid(t, "indirect target", block.bid)
                if block.ind_chooser is None:
                    raise ValueError(f"block {block.bid}: IND without chooser")
                if len(block.ind_chooser.weights) != len(block.ind_targets):
                    raise ValueError(
                        f"block {block.bid}: chooser arity mismatch"
                    )
            if block.func_id < 0 or block.func_id >= len(self.functions):
                raise ValueError(f"block {block.bid}: bad func_id")

        for func in self.functions:
            if not func.bids:
                raise ValueError(f"function {func.name} is empty")
            if func.entry != func.bids[0]:
                raise ValueError(
                    f"function {func.name}: entry must be its first block"
                )

    def out_edges(self, bid: int) -> List[int]:
        return self.blocks[bid].successors()

    def static_branch_census(self) -> Dict[str, int]:
        """Counts of block kinds — used by workload calibration tests."""
        census: Dict[str, int] = {}
        for block in self.blocks:
            census[block.kind.name] = census.get(block.kind.name, 0) + 1
        return census
