"""Branch behaviour models.

The dynamic behaviour of every conditional branch and indirect jump in a
synthetic workload is described by a small state machine attached to its
basic block.  Behaviours are sampled during the CFG walk that produces
the dynamic trace; they are *layout-invariant* — they decide between CFG
successors (``True`` selects ``succ_true``), never between ISA
taken/not-taken, so the same program behaves identically under the
baseline and optimized code layouts.

The mix of behaviour classes is what gives the branch predictors
something realistic to chew on:

* :class:`Bernoulli` — statically biased branches (the bread and butter
  of integer codes; a predictor can do no better than the majority).
* :class:`LoopTrip` — loop back-edges with a trip-count distribution;
  short trips are capturable by history predictors.
* :class:`Pattern` — periodic branches (fully predictable with enough
  history).
* :class:`GlobalCorrelated` — outcome is a parity function of recent
  conditional outcomes (what gshare-style global-history predictors are
  built to capture).
* :class:`PathCorrelated` — outcome is a function of the recent *block
  path*, which path-based predictors (the stream and trace predictors'
  second-level tables) capture more directly than outcome-history ones.
* :class:`IndirectChooser` — weighted / phase-switching target selection
  for indirect jumps.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, Dict, List, Sequence


class WalkContext:
    """Shared dynamic state threaded through a CFG walk.

    Holds the RNG, a global shift register of recent conditional
    outcomes, a short path history of recently executed blocks, and
    per-branch private state (loop counters, pattern cursors).
    """

    __slots__ = ("rng", "global_history", "path_history", "_states")

    #: How many recent conditional outcomes the global register keeps.
    HISTORY_BITS = 32
    #: How many recent block ids the path register keeps.
    PATH_DEPTH = 16

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.global_history: int = 0
        self.path_history: Deque[int] = deque(maxlen=self.PATH_DEPTH)
        self._states: Dict[int, dict] = {}

    def state_for(self, key: int) -> dict:
        """Mutable private state for the branch identified by ``key``."""
        state = self._states.get(key)
        if state is None:
            state = {}
            self._states[key] = state
        return state

    def record_outcome(self, outcome: bool) -> None:
        """Push a conditional outcome into the global shift register."""
        mask = (1 << self.HISTORY_BITS) - 1
        self.global_history = ((self.global_history << 1) | int(outcome)) & mask

    def record_block(self, bid: int) -> None:
        """Record an executed block id in the path register."""
        self.path_history.append(bid)


class BranchBehavior(ABC):
    """Decides CFG-level outcomes for one static branch."""

    @abstractmethod
    def sample(self, ctx: WalkContext, key: int) -> bool:
        """Return ``True`` to follow ``succ_true``, ``False`` otherwise.

        ``key`` identifies the static branch so the behaviour can keep
        per-branch state in the context.
        """

    def expected_true_rate(self) -> float:
        """Approximate long-run probability of sampling ``True``.

        Used by the analytical edge-profile fallback and by tests; the
        default is refined by subclasses.
        """
        return 0.5


class Bernoulli(BranchBehavior):
    """Independent coin flips with fixed probability of ``True``."""

    __slots__ = ("p_true",)

    def __init__(self, p_true: float) -> None:
        if not 0.0 <= p_true <= 1.0:
            raise ValueError(f"p_true out of range: {p_true}")
        self.p_true = p_true

    def sample(self, ctx: WalkContext, key: int) -> bool:
        return ctx.rng.random() < self.p_true

    def expected_true_rate(self) -> float:
        return self.p_true

    def __repr__(self) -> str:
        return f"Bernoulli({self.p_true:.3f})"


class LoopTrip(BranchBehavior):
    """A loop back-edge: ``True`` continues the loop, ``False`` exits.

    Each time the loop is entered, a fresh trip count is drawn from a
    geometric-ish distribution around ``mean_trip`` (optionally jittered);
    the back-edge then answers ``True`` exactly ``trip - 1`` times.
    """

    __slots__ = ("mean_trip", "jitter")

    def __init__(self, mean_trip: float, jitter: float = 0.3) -> None:
        if mean_trip < 1.0:
            raise ValueError("mean_trip must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.mean_trip = mean_trip
        self.jitter = jitter

    def _draw_trip(self, rng: random.Random) -> int:
        if self.jitter == 0.0:
            return max(1, round(self.mean_trip))
        spread = self.mean_trip * self.jitter
        trip = rng.gauss(self.mean_trip, spread)
        return max(1, round(trip))

    def sample(self, ctx: WalkContext, key: int) -> bool:
        state = ctx.state_for(key)
        remaining = state.get("remaining")
        if remaining is None or remaining <= 0:
            remaining = self._draw_trip(ctx.rng)
        if remaining > 1:
            state["remaining"] = remaining - 1
            return True
        state["remaining"] = 0
        return False

    def expected_true_rate(self) -> float:
        return max(0.0, 1.0 - 1.0 / self.mean_trip)

    def __repr__(self) -> str:
        return f"LoopTrip(mean={self.mean_trip:.1f})"


class Pattern(BranchBehavior):
    """Deterministic periodic outcomes, e.g. ``TTNTTN...``."""

    __slots__ = ("pattern",)

    def __init__(self, pattern: Sequence[bool]) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = tuple(bool(x) for x in pattern)

    def sample(self, ctx: WalkContext, key: int) -> bool:
        state = ctx.state_for(key)
        cursor = state.get("cursor", 0)
        state["cursor"] = (cursor + 1) % len(self.pattern)
        return self.pattern[cursor]

    def expected_true_rate(self) -> float:
        return sum(self.pattern) / len(self.pattern)

    def __repr__(self) -> str:
        bits = "".join("T" if b else "N" for b in self.pattern)
        return f"Pattern({bits})"


class GlobalCorrelated(BranchBehavior):
    """Outcome = parity of masked recent conditional outcomes, plus noise.

    ``mask`` selects bits of the global outcome shift register (bit 0 is
    the most recent outcome).  ``noise`` flips the result independently
    with the given probability, bounding achievable accuracy.
    """

    __slots__ = ("mask", "noise", "invert")

    def __init__(self, mask: int, noise: float = 0.02, invert: bool = False) -> None:
        if mask <= 0:
            raise ValueError("mask must select at least one bit")
        if not 0.0 <= noise <= 0.5:
            raise ValueError("noise must be in [0, 0.5]")
        self.mask = mask
        self.noise = noise
        self.invert = invert

    def sample(self, ctx: WalkContext, key: int) -> bool:
        parity = bin(ctx.global_history & self.mask).count("1") & 1
        outcome = bool(parity) ^ self.invert
        if self.noise and ctx.rng.random() < self.noise:
            outcome = not outcome
        return outcome

    def expected_true_rate(self) -> float:
        return 0.5

    def __repr__(self) -> str:
        return f"GlobalCorrelated(mask={self.mask:#x}, noise={self.noise})"


class PathCorrelated(BranchBehavior):
    """Outcome depends on which blocks were executed recently.

    The outcome is a hash-parity of the ``depth`` most recent block ids.
    Path-history predictors observe (a hash of) this same information
    directly, while outcome-history predictors see it only through the
    noisy lens of recent branch outcomes.
    """

    __slots__ = ("depth", "salt", "noise")

    def __init__(self, depth: int = 4, salt: int = 0, noise: float = 0.02) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if not 0.0 <= noise <= 0.5:
            raise ValueError("noise must be in [0, 0.5]")
        self.depth = depth
        self.salt = salt
        self.noise = noise

    def sample(self, ctx: WalkContext, key: int) -> bool:
        acc = self.salt
        history = ctx.path_history
        take = min(self.depth, len(history))
        for i in range(len(history) - take, len(history)):
            acc = (acc * 1000003 + history[i]) & 0xFFFFFFFF
        outcome = bool((acc >> 7) & 1)
        if self.noise and ctx.rng.random() < self.noise:
            outcome = not outcome
        return outcome

    def expected_true_rate(self) -> float:
        return 0.5

    def __repr__(self) -> str:
        return f"PathCorrelated(depth={self.depth}, salt={self.salt})"


class IndirectChooser:
    """Target selection for an indirect jump.

    Chooses among ``len(weights)`` successor slots.  Selection is
    weighted, with optional *phases*: the jump favours one dominant slot
    for a stretch of executions, then switches — mimicking interpreter
    dispatch loops and virtual-call sites with phase behaviour.
    """

    __slots__ = ("weights", "phase_length", "_cumulative")

    def __init__(self, weights: Sequence[float], phase_length: int = 0) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.weights = [w / total for w in weights]
        self.phase_length = phase_length
        cumulative: List[float] = []
        acc = 0.0
        for w in self.weights:
            acc += w
            cumulative.append(acc)
        self._cumulative = cumulative

    def choose(self, ctx: WalkContext, key: int) -> int:
        """Return the index of the chosen successor slot."""
        if self.phase_length:
            state = ctx.state_for(key)
            remaining = state.get("phase_remaining", 0)
            if remaining <= 0:
                state["phase_target"] = self._weighted_draw(ctx.rng)
                state["phase_remaining"] = max(
                    1, round(ctx.rng.expovariate(1.0 / self.phase_length))
                )
            state["phase_remaining"] -= 1
            # Inside a phase, mostly stick to the phase target.
            if ctx.rng.random() < 0.9:
                return state["phase_target"]
        return self._weighted_draw(ctx.rng)

    def _weighted_draw(self, rng: random.Random) -> int:
        x = rng.random()
        for i, edge in enumerate(self._cumulative):
            if x < edge:
                return i
        return len(self._cumulative) - 1

    def __repr__(self) -> str:
        return f"IndirectChooser(n={len(self.weights)}, phase={self.phase_length})"
