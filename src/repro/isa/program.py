"""Linked program images: the static "basic block dictionary".

:func:`link` turns a CFG plus a block ordering into a :class:`Program`:
every block gets an address, conditional branch senses are chosen so the
fall-through successor is the adjacent block, and trampoline stubs
(1-instruction unconditional jumps) are inserted where the layout breaks
an adjacency the CFG requires.  The resulting image is what the paper
calls the *static basic block dictionary*: fetch engines use it to walk
any path — including wrong speculative paths — through the code.

Instruction-level metadata for the back-end model (latencies, dependence
distances, memory behaviour) is synthesized deterministically per static
instruction slot from the program seed, so two runs of the same program
see identical instructions.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.types import INSTRUCTION_BYTES, BranchKind, InstrClass
from repro.isa.cfg import ControlFlowGraph, IlpProfile

#: Per-instruction metadata tuple:
#: (instr_class, base_latency, dep1_distance, dep2_distance, mem_base,
#:  mem_stride, mem_span)
#: dep distances are 0 when absent; mem_* are 0 for non-memory ops.
InstrMeta = Tuple[int, int, int, int, int, int, int]


class LinearBlock:
    """A laid-out block: address-level view of one basic block or stub."""

    __slots__ = (
        "index",
        "addr",
        "size",
        "kind",
        "target_addr",
        "origin",
        "taken_means_true",
        "ind_target_addrs",
        "_meta",
        "_slot_keys",
        "_seg_plans",
    )

    def __init__(
        self,
        index: int,
        addr: int,
        size: int,
        kind: BranchKind,
        target_addr: Optional[int],
        origin: Optional[int],
        taken_means_true: bool,
    ) -> None:
        self.index = index
        self.addr = addr
        self.size = size
        self.kind = kind
        self.target_addr = target_addr
        self.origin = origin  # CFG bid, or None for a layout stub
        self.taken_means_true = taken_means_true
        self.ind_target_addrs: Optional[List[int]] = None
        self._meta: Optional[Tuple[InstrMeta, ...]] = None
        self._slot_keys: Optional[Tuple[Tuple[int, int], ...]] = None
        #: Cached per-(start, count) dispatch-segment plans; see
        #: :func:`segment_plan`.
        self._seg_plans: Dict[int, tuple] = {}

    @property
    def fallthrough_addr(self) -> int:
        return self.addr + self.size * INSTRUCTION_BYTES

    @property
    def end_addr(self) -> int:
        return self.fallthrough_addr

    @property
    def branch_addr(self) -> Optional[int]:
        """Address of the terminal control instruction, if any."""
        if self.kind is BranchKind.NONE:
            return None
        return self.addr + (self.size - 1) * INSTRUCTION_BYTES

    @property
    def is_stub(self) -> bool:
        return self.origin is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LinearBlock(#{self.index} @{self.addr:#x} size={self.size} "
            f"{self.kind.name} origin={self.origin})"
        )


class Program:
    """An executable image: ordered linear blocks plus lookup structures."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        linear_blocks: List[LinearBlock],
        addr_of_bid: Dict[int, int],
        base_address: int,
        seed: int,
    ) -> None:
        self.cfg = cfg
        self.linear_blocks = linear_blocks
        self.addr_of_bid = addr_of_bid
        self.base_address = base_address
        self.seed = seed
        self._starts = [lb.addr for lb in linear_blocks]
        self._by_start = {lb.addr: lb for lb in linear_blocks}
        self._end_address = linear_blocks[-1].end_addr if linear_blocks else base_address
        #: Memoized pre-decode scans, filled by repro.fetch.base.scan_run.
        self._scan_cache: Dict[Tuple[int, int], tuple] = {}
        #: Memoized dynamic traces, one per walk seed — see
        #: :class:`repro.isa.trace.TraceRecord`.
        self._trace_records: Dict[int, object] = {}
        #: Addresses of all conditional branch instructions — an O(1)
        #: pre-decode surface for fetch engines that need to know "is
        #: there a conditional here?" on their per-instruction path.
        self.cond_branch_addrs = frozenset(
            lb.addr + (lb.size - 1) * INSTRUCTION_BYTES
            for lb in linear_blocks
            if lb.kind is BranchKind.COND
        )

    # ------------------------------------------------------------------
    # address queries
    # ------------------------------------------------------------------
    @property
    def entry_address(self) -> int:
        assert self.cfg.entry_bid is not None
        return self.addr_of_bid[self.cfg.entry_bid]

    @property
    def end_address(self) -> int:
        return self._end_address

    @property
    def code_bytes(self) -> int:
        return self.end_address - self.base_address

    def block_starting_at(self, addr: int) -> Optional[LinearBlock]:
        return self._by_start.get(addr)

    def block_containing(self, addr: int) -> Tuple[LinearBlock, int]:
        """Return (block, instruction offset) for any code address.

        Raises ``ValueError`` for addresses outside the image — fetch
        engines must never wander off the program, so this is loud.
        """
        if not self.base_address <= addr < self._end_address:
            raise ValueError(f"address {addr:#x} outside program image")
        pos = bisect.bisect_right(self._starts, addr) - 1
        lb = self.linear_blocks[pos]
        offset = (addr - lb.addr) // INSTRUCTION_BYTES
        if offset >= lb.size:
            raise ValueError(f"address {addr:#x} in inter-block gap")
        return lb, offset

    def next_block(self, lb: LinearBlock) -> Optional[LinearBlock]:
        nxt = lb.index + 1
        if nxt >= len(self.linear_blocks):
            return None
        return self.linear_blocks[nxt]

    # ------------------------------------------------------------------
    # instruction metadata (back-end model)
    # ------------------------------------------------------------------
    def instr_meta(self, lb: LinearBlock) -> Tuple[InstrMeta, ...]:
        """Deterministic per-slot metadata for a linear block (cached)."""
        if lb._meta is None:
            lb._meta = tuple(_synthesize_meta(lb, self.cfg.ilp, self.seed))
        return lb._meta

    def block_meta(
        self, lb: LinearBlock
    ) -> Tuple[Tuple[InstrMeta, ...], Tuple[Tuple[int, int], ...]]:
        """All per-block decode artifacts the hot dispatch loop needs.

        Returns ``(instr_meta, slot_keys)``, both computed at most once
        per block and interned on it: the processor's run loop consumes
        one element of each per instruction, so building them per
        instruction (as a naive loop would) dominates the profile.
        """
        meta = lb._meta
        if meta is None:
            meta = lb._meta = tuple(_synthesize_meta(lb, self.cfg.ilp, self.seed))
        keys = lb._slot_keys
        if keys is None:
            addr = lb.addr
            keys = lb._slot_keys = tuple((addr, i) for i in range(lb.size))
        return meta, keys

    # ------------------------------------------------------------------
    # serialization (artifact store)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle state for the on-disk artifact store.

        The scan cache and the memoized trace records are dropped: scans
        rebuild on demand, and traces are stored as separate artifacts
        keyed by walk seed (they would otherwise drag walk-context RNG
        state into the image object).  The deterministic per-block
        decode artifacts (``_meta`` / ``_slot_keys`` / segment plans)
        live on the blocks and ride along, so a loaded image is warm.
        """
        state = self.__dict__.copy()
        state["_scan_cache"] = {}
        state["_trace_records"] = {}
        return state

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def describe(self) -> str:
        stubs = sum(1 for lb in self.linear_blocks if lb.is_stub)
        return (
            f"Program: {len(self.linear_blocks)} blocks ({stubs} stubs), "
            f"{self.code_bytes // 1024} KiB of code at "
            f"{self.base_address:#x}"
        )


def link(
    cfg: ControlFlowGraph,
    order: Sequence[int],
    base_address: int = 0x10000,
    seed: int = 0,
) -> Program:
    """Lay out ``cfg`` following ``order`` and produce a :class:`Program`.

    ``order`` must be a permutation of all block ids.  Branch senses are
    flipped where that makes the hot CFG edge the fall-through, and stub
    jumps are inserted when neither conditional successor (or a required
    return point) can be adjacent.
    """
    if sorted(order) != list(range(cfg.num_blocks)):
        raise ValueError("order must be a permutation of all block ids")
    cfg.validate()

    # Pass 1: decide, for each placed block, its branch sense and whether
    # a stub must follow it. The decision depends only on the ordering.
    placements: List[Tuple[Optional[int], bool, Optional[int]]] = []
    # Each entry: (bid or None-for-stub, taken_means_true, stub_target_bid)
    for pos, bid in enumerate(order):
        block = cfg.block(bid)
        following = order[pos + 1] if pos + 1 < len(order) else None
        taken_means_true = True
        stub_target: Optional[int] = None

        if block.kind is BranchKind.NONE:
            if block.succ_false != following:
                stub_target = block.succ_false
        elif block.kind is BranchKind.COND:
            if block.succ_false == following:
                taken_means_true = True
            elif block.succ_true == following:
                taken_means_true = False  # flip: branch targets succ_false
            else:
                taken_means_true = True
                stub_target = block.succ_false
        elif block.kind is BranchKind.CALL:
            if block.succ_false != following:
                stub_target = block.succ_false
        # JUMP / RET / IND need no fall-through.

        placements.append((bid, taken_means_true, None))
        if stub_target is not None:
            placements.append((None, True, stub_target))

    # Pass 2: assign addresses.
    linear_blocks: List[LinearBlock] = []
    addr_of_bid: Dict[int, int] = {}
    addr = base_address
    stub_targets: List[Optional[int]] = []
    for index, (bid, taken_means_true, stub_target) in enumerate(placements):
        if bid is not None:
            block = cfg.block(bid)
            lb = LinearBlock(
                index=index,
                addr=addr,
                size=block.size,
                kind=block.kind,
                target_addr=None,
                origin=bid,
                taken_means_true=taken_means_true,
            )
            addr_of_bid[bid] = addr
            stub_targets.append(None)
        else:
            lb = LinearBlock(
                index=index,
                addr=addr,
                size=1,
                kind=BranchKind.JUMP,
                target_addr=None,
                origin=None,
                taken_means_true=True,
            )
            stub_targets.append(stub_target)
        linear_blocks.append(lb)
        addr += lb.size * INSTRUCTION_BYTES

    # Pass 3: resolve static targets now that all addresses are known.
    for lb, stub_target in zip(linear_blocks, stub_targets):
        if lb.is_stub:
            assert stub_target is not None
            lb.target_addr = addr_of_bid[stub_target]
            continue
        block = cfg.block(lb.origin)
        if block.kind is BranchKind.COND:
            target_bid = block.succ_true if lb.taken_means_true else block.succ_false
            lb.target_addr = addr_of_bid[target_bid]
        elif block.kind in (BranchKind.JUMP, BranchKind.CALL):
            lb.target_addr = addr_of_bid[block.succ_true]
        elif block.kind is BranchKind.IND:
            lb.ind_target_addrs = [addr_of_bid[t] for t in block.ind_targets]

    return Program(cfg, linear_blocks, addr_of_bid, base_address, seed)


# ----------------------------------------------------------------------
# dispatch-segment plans (block-batched back-end scheduling)
# ----------------------------------------------------------------------

def segment_plan(lb: LinearBlock, start: int, count: int) -> tuple:
    """Static decode artifacts for dispatching ``lb[start:start+count]``.

    Returns ``(offsets, mem_plan, lvl_span)`` and caches it on the block:

    * ``offsets`` — the sorted tuple of negative dispatch-ring offsets
      (relative to the segment's first slot) that the segment's
      dependence distances reach, i.e. which *older* completion times
      can influence this segment's schedule;
    * ``mem_plan`` — one ``(slot_key, is_load, base, stride, span)``
      tuple per memory slot, in program order, with ``span`` already
      clamped positive;
    * ``lvl_span`` — ``4 ** n_loads``, the key-space size of the
      base-4-packed per-load hit-level vector (1 when the segment has
      no loads), used to fold the vector into the template key.

    All are pure functions of the block's (cached) per-slot metadata,
    so they are computed at most once per distinct segment shape; the
    back-end's schedule-template machinery keys its memoization on them.
    ``lb._meta`` / ``lb._slot_keys`` must already be materialized (the
    trace walker does this when it first emits the block).
    """
    meta = lb._meta
    keys = lb._slot_keys
    assert meta is not None and keys is not None, "block_meta not materialized"
    offs = set()
    mem_plan = []
    n_loads = 0
    for i in range(count):
        cls, _lat, d1, d2, base, stride, span = meta[start + i]
        if d1 and i - d1 < 0:
            offs.add(i - d1)
        if d2 and i - d2 < 0:
            offs.add(i - d2)
        if cls == _MEM_LOAD or cls == _MEM_STORE:
            is_load = cls == _MEM_LOAD
            n_loads += is_load
            mem_plan.append(
                (keys[start + i], is_load, base, stride,
                 span if span > 0 else 1)
            )
    plan = (tuple(sorted(offs)), tuple(mem_plan), 4 ** n_loads)
    # Keyed as the back-end looks it up: count <= machine width <= 8.
    lb._seg_plans[start * 32 + count] = plan
    return plan


_MEM_LOAD = int(InstrClass.LOAD)
_MEM_STORE = int(InstrClass.STORE)


# ----------------------------------------------------------------------
# instruction metadata synthesis
# ----------------------------------------------------------------------

def _synthesize_meta(
    lb: LinearBlock, ilp: IlpProfile, program_seed: int
) -> List[InstrMeta]:
    """Generate the per-slot metadata for one linear block.

    Seeded by (program seed, block address) so it is stable across runs
    and across layouts of the *stub* blocks; origin blocks are seeded by
    their CFG bid so the *same* block carries the same instruction mix
    under both layouts (layout must not change the back-end workload).
    """
    key = lb.origin if lb.origin is not None else -(lb.index + 1)
    rng = random.Random((program_seed << 20) ^ (key * 2654435761 & 0xFFFFF))
    meta: List[InstrMeta] = []
    n_regular = lb.size - (1 if lb.kind.is_control else 0)
    for slot in range(n_regular):
        meta.append(_regular_instr(rng, ilp, slot))
    if lb.kind.is_control:
        dep = _dep_distance(rng, ilp)
        meta.append((int(InstrClass.BRANCH), 1, dep, 0, 0, 0, 0))
    return meta


def _regular_instr(rng: random.Random, ilp: IlpProfile, slot: int) -> InstrMeta:
    x = rng.random()
    if x < ilp.load_fraction:
        cls = InstrClass.LOAD
    elif x < ilp.load_fraction + ilp.store_fraction:
        cls = InstrClass.STORE
    elif x < ilp.load_fraction + ilp.store_fraction + ilp.mul_fraction:
        cls = InstrClass.MUL
    else:
        cls = InstrClass.ALU

    d1 = _dep_distance(rng, ilp) if rng.random() < ilp.dep_rate else 0
    d2 = _dep_distance(rng, ilp) if rng.random() < ilp.second_source_rate else 0

    mem_base = mem_stride = mem_span = 0
    if cls in (InstrClass.LOAD, InstrClass.STORE):
        x = rng.random()
        if x < 0.25:
            # Stack/temporary accesses: a tiny, always-resident region.
            mem_base = rng.randrange(0, 1 << 7) << 6
            mem_stride = rng.choice((0, 4, 8))
            mem_span = 1 << 9
        elif x < 0.25 + ilp.load_streaming_fraction:
            # Streaming access: small stride over a shared modest buffer.
            mem_base = (1 << 16) + (rng.randrange(0, 1 << 8) << 6)
            mem_stride = rng.choice((4, 8, 8, 16, 64))
            mem_span = 1 << rng.randint(11, 14)
        else:
            # Scattered access (pointer chasing) over the heap footprint;
            # the span is what decides whether it lives in L2 or memory.
            mem_base = (1 << 24) + (rng.randrange(0, 1 << 10) << 8)
            mem_stride = rng.randrange(64, 8192) | 1
            mem_span = ilp.load_random_footprint
    return (int(cls), cls.base_latency, d1, d2, mem_base, mem_stride, mem_span)


def _dep_distance(rng: random.Random, ilp: IlpProfile) -> int:
    """Geometric dependence distance with mean ``mean_dep_distance``."""
    p = 1.0 / ilp.mean_dep_distance
    distance = 1
    while rng.random() > p and distance < 64:
        distance += 1
    return distance
