"""Synthetic SPECint2000-like workloads.

The paper evaluates on the eleven SPEC CPU2000 integer benchmarks (gzip,
vpr, gcc, crafty, parser, eon, perlbmk, gap, vortex, bzip2, twolf) with
Alpha binaries and 300M-instruction ``ref`` traces.  We cannot ship SPEC,
so each benchmark is replaced by a *parameterized program generator*
whose knobs are the statistical properties the fetch architectures
actually respond to:

* code footprint (number of functions/blocks) — I-cache and predictor
  table pressure; gcc and vortex are large, gzip and bzip2 small;
* basic-block size distribution — the 5–6 instruction dynamic average of
  integer codes;
* construct mix (loops, hammocks, cold ``if-then`` checks, switches,
  calls) — determines taken-branch density and stream lengths under each
  layout;
* branch behaviour mix (biased / loop-trip / periodic / history- and
  path-correlated / hard) — determines what each predictor can learn;
* ILP profile (dependence distances, load locality) — back-end IPC
  ceiling per benchmark.

Each generator is deterministic given its seed.  ``prepare_program``
builds the linked image for either layout, using a *different* seed for
the layout profile (the paper's ``train`` input) than the one used by
the evaluation trace (``ref``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.types import BranchKind
from repro.isa.behavior import (
    Bernoulli,
    BranchBehavior,
    GlobalCorrelated,
    IndirectChooser,
    LoopTrip,
    Pattern,
    PathCorrelated,
)
from repro.isa.cfg import BasicBlock, ControlFlowGraph, Function, IlpProfile
from repro.isa.layout import natural_order, optimized_order
from repro.isa.program import Program, link
from repro.isa.trace import profile_edges

#: Seed salt for the layout profile walk (the paper's "train" input).
TRAIN_SALT = 0x7E57
#: Seed salt for the evaluation trace (the paper's "ref" input).
REF_SALT = 0x0E0F
#: Where images are linked unless a caller says otherwise.  Shared by
#: :func:`prepare_program` and the artifact-store fingerprinting so the
#: built image and its cache key can never disagree about the default.
DEFAULT_BASE_ADDRESS = 0x10000


@dataclass(frozen=True)
class WorkloadSpec:
    """All the knobs of one synthetic benchmark."""

    name: str
    description: str
    seed: int
    # --- code footprint -------------------------------------------------
    n_hot_functions: int
    n_cold_functions: int
    max_call_level: int
    constructs_per_function: float
    constructs_in_main: float
    block_size_mean: float
    block_size_sd: float
    max_nesting: int
    # --- construct mix (relative weights) -------------------------------
    w_straight: float
    w_loop: float
    w_hammock: float
    w_ifthen: float
    w_switch: float
    w_call: float
    # --- branch behaviour mix for hammock conditions ---------------------
    frac_pattern: float
    frac_global_corr: float
    frac_path_corr: float
    frac_weak: float
    bias_lo: float
    bias_hi: float
    p_true_hot: float
    cold_then_lo: float
    cold_then_hi: float
    loop_trip_mean: float
    loop_trip_sigma: float
    switch_arity: int
    switch_phase: int
    behaviour_noise: float
    ilp: IlpProfile

    def scaled(self, scale: float) -> "WorkloadSpec":
        """Scale the code footprint (functions) by ``scale``."""
        if scale == 1.0:
            return self
        return replace(
            self,
            n_hot_functions=max(2, round(self.n_hot_functions * scale)),
            n_cold_functions=max(1, round(self.n_cold_functions * scale)),
        )


def _ilp(
    dep: float,
    load: float = 0.22,
    store: float = 0.10,
    mul: float = 0.04,
    streaming: float = 0.7,
    footprint: int = 1 << 19,
) -> IlpProfile:
    return IlpProfile(
        mean_dep_distance=dep,
        load_fraction=load,
        store_fraction=store,
        mul_fraction=mul,
        load_streaming_fraction=streaming,
        load_random_footprint=footprint,
    )


# ----------------------------------------------------------------------
# The eleven SPECint2000 stand-ins.  Footprints, branch mixes and ILP
# are calibrated to the characterizations in the literature: gcc and
# vortex are large-footprint; gzip and bzip2 are small loopy codes with
# streaming memory behaviour; twolf and vpr carry many data-dependent
# (hard) branches; perlbmk and gap lean on indirect dispatch; eon is
# call-heavy C++.
# ----------------------------------------------------------------------

_SPECS: Dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    if spec.name in _SPECS:
        raise ValueError(f"duplicate benchmark {spec.name}")
    _SPECS[spec.name] = spec


_register(WorkloadSpec(
    name="gzip", description="compression: small loopy kernel, biased branches",
    seed=1640, n_hot_functions=22, n_cold_functions=8, max_call_level=3,
    constructs_per_function=7.0, constructs_in_main=10.0,
    block_size_mean=6.0, block_size_sd=2.8, max_nesting=3,
    w_straight=2.0, w_loop=2.6, w_hammock=1.6, w_ifthen=1.6, w_switch=0.2,
    w_call=1.0,
    frac_pattern=0.10, frac_global_corr=0.06, frac_path_corr=0.05,
    frac_weak=0.02, bias_lo=0.96, bias_hi=0.998, p_true_hot=0.55,
    cold_then_lo=0.02, cold_then_hi=0.10,
    loop_trip_mean=34.0, loop_trip_sigma=0.7, switch_arity=6, switch_phase=0,
    behaviour_noise=0.005,
    ilp=_ilp(dep=5.5, load=0.20, streaming=0.85),
))

_register(WorkloadSpec(
    name="vpr", description="FPGA place&route: data-dependent hard branches",
    seed=1750, n_hot_functions=36, n_cold_functions=14, max_call_level=4,
    constructs_per_function=7.0, constructs_in_main=9.0,
    block_size_mean=5.2, block_size_sd=2.4, max_nesting=3,
    w_straight=1.8, w_loop=2.0, w_hammock=2.4, w_ifthen=1.6, w_switch=0.2,
    w_call=1.2,
    frac_pattern=0.06, frac_global_corr=0.07, frac_path_corr=0.06,
    frac_weak=0.04, bias_lo=0.93, bias_hi=0.993, p_true_hot=0.55,
    cold_then_lo=0.03, cold_then_hi=0.15,
    loop_trip_mean=18.0, loop_trip_sigma=0.8, switch_arity=5, switch_phase=0,
    behaviour_noise=0.010,
    ilp=_ilp(dep=3.6, load=0.24, streaming=0.55, footprint=1 << 20),
))

_register(WorkloadSpec(
    name="gcc", description="compiler: huge footprint, short blocks, cold code",
    seed=1760, n_hot_functions=150, n_cold_functions=110, max_call_level=5,
    constructs_per_function=8.0, constructs_in_main=10.0,
    block_size_mean=4.6, block_size_sd=2.2, max_nesting=3,
    w_straight=1.8, w_loop=1.2, w_hammock=2.2, w_ifthen=2.6, w_switch=0.8,
    w_call=1.8,
    frac_pattern=0.05, frac_global_corr=0.06, frac_path_corr=0.07,
    frac_weak=0.02, bias_lo=0.95, bias_hi=0.997, p_true_hot=0.52,
    cold_then_lo=0.02, cold_then_hi=0.12,
    loop_trip_mean=14.0, loop_trip_sigma=0.9, switch_arity=10, switch_phase=0,
    behaviour_noise=0.006,
    ilp=_ilp(dep=3.2, load=0.24, streaming=0.55, footprint=1 << 20),
))

_register(WorkloadSpec(
    name="crafty", description="chess: bitboard patterns, deep correlation",
    seed=1860, n_hot_functions=44, n_cold_functions=12, max_call_level=4,
    constructs_per_function=8.0, constructs_in_main=9.0,
    block_size_mean=6.8, block_size_sd=3.0, max_nesting=3,
    w_straight=2.2, w_loop=1.6, w_hammock=2.2, w_ifthen=1.8, w_switch=0.4,
    w_call=1.4,
    frac_pattern=0.12, frac_global_corr=0.08, frac_path_corr=0.06,
    frac_weak=0.02, bias_lo=0.95, bias_hi=0.997, p_true_hot=0.55,
    cold_then_lo=0.02, cold_then_hi=0.12,
    loop_trip_mean=16.0, loop_trip_sigma=0.8, switch_arity=6, switch_phase=0,
    behaviour_noise=0.006,
    ilp=_ilp(dep=4.6, load=0.20, streaming=0.7),
))

_register(WorkloadSpec(
    name="parser", description="NLP: pointer chasing, mispredictable recursion",
    seed=1970, n_hot_functions=40, n_cold_functions=14, max_call_level=5,
    constructs_per_function=7.0, constructs_in_main=8.0,
    block_size_mean=4.8, block_size_sd=2.2, max_nesting=3,
    w_straight=1.6, w_loop=1.6, w_hammock=2.4, w_ifthen=2.0, w_switch=0.3,
    w_call=1.6,
    frac_pattern=0.04, frac_global_corr=0.06, frac_path_corr=0.06,
    frac_weak=0.03, bias_lo=0.93, bias_hi=0.993, p_true_hot=0.50,
    cold_then_lo=0.03, cold_then_hi=0.15,
    loop_trip_mean=12.0, loop_trip_sigma=0.9, switch_arity=5, switch_phase=0,
    behaviour_noise=0.010,
    ilp=_ilp(dep=3.0, load=0.27, streaming=0.4, footprint=1 << 21),
))

_register(WorkloadSpec(
    name="eon", description="C++ ray tracer: call-heavy, predictable branches",
    seed=2520, n_hot_functions=60, n_cold_functions=16, max_call_level=6,
    constructs_per_function=5.5, constructs_in_main=8.0,
    block_size_mean=6.4, block_size_sd=2.8, max_nesting=2,
    w_straight=2.2, w_loop=1.4, w_hammock=1.8, w_ifthen=1.4, w_switch=0.5,
    w_call=2.6,
    frac_pattern=0.10, frac_global_corr=0.05, frac_path_corr=0.06,
    frac_weak=0.01, bias_lo=0.96, bias_hi=0.998, p_true_hot=0.58,
    cold_then_lo=0.02, cold_then_hi=0.08,
    loop_trip_mean=14.0, loop_trip_sigma=0.6, switch_arity=4, switch_phase=40,
    behaviour_noise=0.004,
    ilp=_ilp(dep=4.8, load=0.22, mul=0.08, streaming=0.75),
))

_register(WorkloadSpec(
    name="perlbmk", description="interpreter: big switch dispatch, phases",
    seed=2530, n_hot_functions=70, n_cold_functions=40, max_call_level=5,
    constructs_per_function=7.5, constructs_in_main=9.0,
    block_size_mean=5.0, block_size_sd=2.4, max_nesting=3,
    w_straight=1.8, w_loop=1.4, w_hammock=2.0, w_ifthen=2.0, w_switch=1.4,
    w_call=1.8,
    frac_pattern=0.06, frac_global_corr=0.06, frac_path_corr=0.08,
    frac_weak=0.02, bias_lo=0.95, bias_hi=0.996, p_true_hot=0.52,
    cold_then_lo=0.02, cold_then_hi=0.12,
    loop_trip_mean=13.0, loop_trip_sigma=0.8, switch_arity=14, switch_phase=60,
    behaviour_noise=0.006,
    ilp=_ilp(dep=3.4, load=0.25, streaming=0.5, footprint=1 << 20),
))

_register(WorkloadSpec(
    name="gap", description="group theory: interpreter loops + big integers",
    seed=2540, n_hot_functions=55, n_cold_functions=20, max_call_level=4,
    constructs_per_function=7.5, constructs_in_main=9.0,
    block_size_mean=5.6, block_size_sd=2.6, max_nesting=3,
    w_straight=2.0, w_loop=2.2, w_hammock=1.8, w_ifthen=1.8, w_switch=0.8,
    w_call=1.6,
    frac_pattern=0.08, frac_global_corr=0.06, frac_path_corr=0.06,
    frac_weak=0.02, bias_lo=0.95, bias_hi=0.997, p_true_hot=0.54,
    cold_then_lo=0.02, cold_then_hi=0.10,
    loop_trip_mean=22.0, loop_trip_sigma=0.8, switch_arity=8, switch_phase=30,
    behaviour_noise=0.005,
    ilp=_ilp(dep=4.2, load=0.22, streaming=0.65),
))

_register(WorkloadSpec(
    name="vortex", description="OO database: large footprint, biased checks",
    seed=2550, n_hot_functions=120, n_cold_functions=70, max_call_level=6,
    constructs_per_function=7.0, constructs_in_main=9.0,
    block_size_mean=5.4, block_size_sd=2.4, max_nesting=2,
    w_straight=2.0, w_loop=1.2, w_hammock=1.6, w_ifthen=3.0, w_switch=0.4,
    w_call=2.2,
    frac_pattern=0.06, frac_global_corr=0.04, frac_path_corr=0.06,
    frac_weak=0.01, bias_lo=0.96, bias_hi=0.998, p_true_hot=0.52,
    cold_then_lo=0.01, cold_then_hi=0.08,
    loop_trip_mean=12.0, loop_trip_sigma=0.7, switch_arity=6, switch_phase=0,
    behaviour_noise=0.004,
    ilp=_ilp(dep=3.8, load=0.25, streaming=0.55, footprint=1 << 20),
))

_register(WorkloadSpec(
    name="bzip2", description="compression: tight loops, long trips, streams",
    seed=2560, n_hot_functions=18, n_cold_functions=6, max_call_level=3,
    constructs_per_function=7.5, constructs_in_main=10.0,
    block_size_mean=6.2, block_size_sd=2.8, max_nesting=3,
    w_straight=2.0, w_loop=3.0, w_hammock=1.6, w_ifthen=1.4, w_switch=0.2,
    w_call=0.9,
    frac_pattern=0.10, frac_global_corr=0.07, frac_path_corr=0.04,
    frac_weak=0.02, bias_lo=0.95, bias_hi=0.997, p_true_hot=0.55,
    cold_then_lo=0.02, cold_then_hi=0.10,
    loop_trip_mean=44.0, loop_trip_sigma=0.8, switch_arity=5, switch_phase=0,
    behaviour_noise=0.005,
    ilp=_ilp(dep=5.0, load=0.21, streaming=0.9),
))

_register(WorkloadSpec(
    name="twolf", description="place&route: annealing, hard accept branches",
    seed=3000, n_hot_functions=34, n_cold_functions=12, max_call_level=4,
    constructs_per_function=7.0, constructs_in_main=9.0,
    block_size_mean=5.0, block_size_sd=2.4, max_nesting=3,
    w_straight=1.8, w_loop=1.8, w_hammock=2.6, w_ifthen=1.8, w_switch=0.2,
    w_call=1.2,
    frac_pattern=0.05, frac_global_corr=0.07, frac_path_corr=0.05,
    frac_weak=0.05, bias_lo=0.92, bias_hi=0.990, p_true_hot=0.52,
    cold_then_lo=0.03, cold_then_hi=0.15,
    loop_trip_mean=16.0, loop_trip_sigma=0.8, switch_arity=4, switch_phase=0,
    behaviour_noise=0.012,
    ilp=_ilp(dep=3.2, load=0.25, streaming=0.5, footprint=1 << 20),
))

#: Benchmark order used across figures (matches Figure 9 of the paper).
SPEC_BENCHMARKS: Tuple[str, ...] = (
    "gzip", "vpr", "gcc", "crafty", "parser", "eon",
    "perlbmk", "gap", "vortex", "bzip2", "twolf",
)


def benchmark_spec(name: str) -> WorkloadSpec:
    """Look up the spec for a benchmark by name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(_SPECS)}"
        ) from None


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------

class _Patch:
    """A successor slot of a block waiting to be wired up."""

    __slots__ = ("block", "attr")

    def __init__(self, block: BasicBlock, attr: str) -> None:
        self.block = block
        self.attr = attr

    def apply(self, target_bid: int) -> None:
        setattr(self.block, self.attr, target_bid)


class _FunctionInfo:
    __slots__ = ("func", "level", "cold", "call_weight")

    def __init__(self, func: Function, level: int, cold: bool, weight: float):
        self.func = func
        self.level = level
        self.cold = cold
        self.call_weight = weight


class _WorkloadBuilder:
    """Generates one benchmark CFG from its spec (deterministic)."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.cfg = ControlFlowGraph(ilp=spec.ilp)
        self.functions: List[_FunctionInfo] = []
        self._construct_weights = [
            ("straight", spec.w_straight),
            ("loop", spec.w_loop),
            ("hammock", spec.w_hammock),
            ("ifthen", spec.w_ifthen),
            ("switch", spec.w_switch),
            ("call", spec.w_call),
        ]

    # -- top level -----------------------------------------------------
    def build(self) -> ControlFlowGraph:
        spec = self.spec
        plan: List[Tuple[int, bool]] = []  # (level, cold)
        for i in range(spec.n_hot_functions):
            plan.append((i % spec.max_call_level, False))
        for i in range(spec.n_cold_functions):
            plan.append((i % spec.max_call_level, True))
        # Generate in ascending level order so call sites can only target
        # already-built (lower-level) functions: a DAG call graph.
        plan.sort(key=lambda item: item[0])
        for idx, (level, cold) in enumerate(plan):
            kind = "cold" if cold else "hot"
            self._gen_function(f"{kind}_f{idx}", level, cold)
        self._gen_main()
        self.cfg.validate()
        return self.cfg

    # -- helpers ---------------------------------------------------------
    def _block_size(self, lo: int = 1) -> int:
        spec = self.spec
        size = round(self.rng.gauss(spec.block_size_mean, spec.block_size_sd))
        return max(lo, min(24, size))

    def _pick_construct(self, depth: int, allow_call: bool) -> str:
        if depth >= self.spec.max_nesting:
            # At the nesting cap only leaf constructs are allowed, which
            # bounds the recursion of region generation.
            return "call" if allow_call and self.rng.random() < 0.25 else "straight"
        weights = []
        for name, w in self._construct_weights:
            if name == "call" and not allow_call:
                w = 0.0
            if name in ("loop", "switch"):
                # Nested loops/switches get progressively rarer; deeply
                # multiplicative trip counts would otherwise trap the
                # trace inside a single loop nest.
                w *= 0.45 ** depth
            weights.append(w)
        total = sum(weights)
        x = self.rng.random() * total
        for (name, _), w in zip(self._construct_weights, weights):
            x -= w
            if x < 0:
                return name
        return "straight"

    def _hammock_behavior(self) -> BranchBehavior:
        spec = self.spec
        rng = self.rng
        x = rng.random()
        if x < spec.frac_pattern:
            length = rng.randint(2, 8)
            pattern = [rng.random() < 0.5 for _ in range(length)]
            if all(pattern) or not any(pattern):
                pattern[0] = not pattern[0]
            return Pattern(pattern)
        x -= spec.frac_pattern
        if x < spec.frac_global_corr:
            nbits = rng.randint(2, 4)
            mask = 0
            if rng.random() < 0.55:
                # Near correlation: within every predictor's history.
                for _ in range(nbits):
                    mask |= 1 << rng.randint(0, 7)
            else:
                # Deep correlation: beyond the 15-bit 2bcgskew history
                # but within the perceptron's 40 bits and the stream /
                # trace predictors' path depth.
                for _ in range(nbits):
                    mask |= 1 << rng.randint(12, 26)
            return GlobalCorrelated(
                mask or 1, noise=spec.behaviour_noise, invert=rng.random() < 0.5
            )
        x -= spec.frac_global_corr
        if x < spec.frac_path_corr:
            return PathCorrelated(
                depth=rng.randint(2, 6),
                salt=rng.randrange(1 << 16),
                noise=spec.behaviour_noise,
            )
        x -= spec.frac_path_corr
        if x < spec.frac_weak:
            # "Hard" data-dependent branches: a predictable majority
            # with a substantial minority, not a pure coin flip.
            p = rng.uniform(0.22, 0.38)
            return Bernoulli(p if rng.random() < 0.5 else 1.0 - p)
        # Biased hammock: the hot side is `then` with prob p_true_hot.
        bias = rng.uniform(spec.bias_lo, spec.bias_hi)
        if rng.random() < spec.p_true_hot:
            return Bernoulli(bias)
        return Bernoulli(1.0 - bias)

    # -- constructs ------------------------------------------------------
    def _region(
        self, func: Function, n_constructs: int, depth: int, allow_call: bool
    ) -> Tuple[int, List[_Patch]]:
        """A straight-line sequence of constructs; returns entry + open ends."""
        entry: Optional[int] = None
        pending: List[_Patch] = []
        for _ in range(max(1, n_constructs)):
            c_entry, c_ends = self._construct(func, depth, allow_call)
            if entry is None:
                entry = c_entry
            for patch in pending:
                patch.apply(c_entry)
            pending = c_ends
        assert entry is not None
        return entry, pending

    def _sub_region(
        self, func: Function, depth: int, allow_call: bool
    ) -> Tuple[int, List[_Patch]]:
        n = 1 if depth >= self.spec.max_nesting else self.rng.randint(1, 2)
        return self._region(func, n, depth, allow_call)

    def _construct(
        self, func: Function, depth: int, allow_call: bool
    ) -> Tuple[int, List[_Patch]]:
        kind = self._pick_construct(depth, allow_call)
        if kind == "straight":
            return self._straight(func)
        if kind == "loop":
            return self._loop(func, depth, allow_call)
        if kind == "hammock":
            return self._hammock(func, depth, allow_call)
        if kind == "ifthen":
            return self._ifthen(func, depth, allow_call)
        if kind == "switch":
            return self._switch(func, depth, allow_call)
        return self._call(func)

    def _straight(self, func: Function) -> Tuple[int, List[_Patch]]:
        block = self.cfg.new_block(func, self._block_size(), BranchKind.NONE)
        return block.bid, [_Patch(block, "succ_false")]

    def _loop(
        self, func: Function, depth: int, allow_call: bool
    ) -> Tuple[int, List[_Patch]]:
        # Loop bodies are meatier than hammock arms: real inner loops
        # contain several conditionals per back-edge, which keeps loop
        # back-edges a minority of all conditional instances.
        n_body = self.rng.randint(2, 4) if depth < self.spec.max_nesting else 1
        body_entry, body_ends = self._region(func, n_body, depth + 1, allow_call)
        spec = self.spec
        # Only outermost loops use the spec's trip scale; inner loops
        # run short trips so nest products stay bounded and the trace
        # keeps visiting the rest of the program.  Inner trips are
        # deterministic (fixed-size sweeps), like most real inner loops;
        # outer trips are data-dependent and jittered.
        if depth == 0:
            mean_trip = spec.loop_trip_mean
            jitter = 0.15
        else:
            mean_trip = min(12.0, max(6.0, spec.loop_trip_mean / 3.0))
            jitter = 0.0
        trip = math.exp(self.rng.gauss(
            math.log(mean_trip), spec.loop_trip_sigma
        ))
        tail = self.cfg.new_block(
            func,
            self._block_size(lo=2),
            BranchKind.COND,
            behavior=LoopTrip(max(1.5, trip), jitter=jitter),
        )
        for patch in body_ends:
            patch.apply(tail.bid)
        tail.succ_true = body_entry  # back edge
        return body_entry, [_Patch(tail, "succ_false")]

    def _hammock(
        self, func: Function, depth: int, allow_call: bool
    ) -> Tuple[int, List[_Patch]]:
        cond = self.cfg.new_block(
            func, self._block_size(lo=2), BranchKind.COND,
            behavior=self._hammock_behavior(),
        )
        then_entry, then_ends = self._sub_region(func, depth + 1, allow_call)
        else_entry, else_ends = self._sub_region(func, depth + 1, allow_call)
        cond.succ_true = then_entry
        cond.succ_false = else_entry
        return cond.bid, then_ends + else_ends

    def _ifthen(
        self, func: Function, depth: int, allow_call: bool
    ) -> Tuple[int, List[_Patch]]:
        spec = self.spec
        p_then = self.rng.uniform(spec.cold_then_lo, spec.cold_then_hi)
        cond = self.cfg.new_block(
            func, self._block_size(lo=2), BranchKind.COND,
            behavior=Bernoulli(p_then),
        )
        then_entry, then_ends = self._sub_region(func, depth + 1, allow_call)
        cond.succ_true = then_entry
        return cond.bid, then_ends + [_Patch(cond, "succ_false")]

    def _switch(
        self, func: Function, depth: int, allow_call: bool
    ) -> Tuple[int, List[_Patch]]:
        spec = self.spec
        arity = self.rng.randint(max(2, spec.switch_arity // 2), spec.switch_arity)
        dispatch = self.cfg.new_block(func, self._block_size(lo=2), BranchKind.IND)
        targets: List[int] = []
        ends: List[_Patch] = []
        for _ in range(arity):
            case_entry, case_ends = self._sub_region(func, depth + 1, allow_call)
            targets.append(case_entry)
            ends.extend(case_ends)
        # Zipf-skewed case weights, shuffled so the hot case is arbitrary.
        weights = [1.0 / (i + 1) ** 1.3 for i in range(arity)]
        self.rng.shuffle(weights)
        dispatch.ind_targets = targets
        dispatch.ind_chooser = IndirectChooser(weights, spec.switch_phase)
        return dispatch.bid, ends

    def _call(self, func: Function) -> Tuple[int, List[_Patch]]:
        callee = self._choose_callee()
        if callee is None:
            return self._straight(func)
        block = self.cfg.new_block(func, self._block_size(lo=2), BranchKind.CALL)
        block.succ_true = callee.entry
        return block.bid, [_Patch(block, "succ_false")]

    def _choose_callee(self) -> Optional[Function]:
        if not self.functions:
            return None
        weights = [info.call_weight for info in self.functions]
        total = sum(weights)
        x = self.rng.random() * total
        for info in self.functions:
            x -= info.call_weight
            if x < 0:
                return info.func
        return self.functions[-1].func

    # -- functions -------------------------------------------------------
    def _gen_function(self, name: str, level: int, cold: bool) -> None:
        spec = self.spec
        func = self.cfg.new_function(name)
        entry = self.cfg.new_block(func, self._block_size(), BranchKind.NONE)
        n = max(1, round(self.rng.gauss(
            spec.constructs_per_function, spec.constructs_per_function * 0.3
        )))
        allow_call = any(info.level < level for info in self.functions)
        body_entry, body_ends = self._region(func, n, 0, allow_call)
        entry.succ_false = body_entry
        ret = self.cfg.new_block(func, self.rng.randint(1, 3), BranchKind.RET)
        for patch in body_ends:
            patch.apply(ret.bid)
        weight = 0.02 if cold else 1.0 / math.sqrt(len(self.functions) + 1)
        self.functions.append(_FunctionInfo(func, level, cold, weight))

    def _gen_main(self) -> None:
        spec = self.spec
        func = self.cfg.new_function("main")
        entry = self.cfg.new_block(func, self._block_size(), BranchKind.NONE)
        n = max(2, round(spec.constructs_in_main))
        body_entry, body_ends = self._region(func, n, 0, allow_call=True)
        entry.succ_false = body_entry
        # Main loops forever: its body ends jump back to the entry block.
        back = self.cfg.new_block(func, 1, BranchKind.JUMP)
        back.succ_true = entry.bid
        for patch in body_ends:
            patch.apply(back.bid)
        self.cfg.entry_bid = entry.bid


def build_benchmark(name: str, scale: float = 1.0) -> ControlFlowGraph:
    """Build the CFG for one synthetic SPECint2000 stand-in."""
    spec = benchmark_spec(name).scaled(scale)
    return _WorkloadBuilder(spec).build()


def prepare_program(
    name: str,
    optimized: bool,
    scale: float = 1.0,
    base_address: int = DEFAULT_BASE_ADDRESS,
    profile_blocks: Optional[int] = None,
) -> Program:
    """Build and link one benchmark in the requested layout.

    The optimized layout is driven by an edge profile collected with the
    ``train`` seed; evaluation traces use the ``ref`` seed (see
    :func:`ref_trace_seed`), reproducing the paper's input split.
    """
    spec = benchmark_spec(name)
    cfg = build_benchmark(name, scale)
    if optimized:
        if profile_blocks is None:
            profile_blocks = max(30000, min(200000, cfg.num_blocks * 50))
        profile = profile_edges(cfg, seed=spec.seed ^ TRAIN_SALT,
                                n_blocks=profile_blocks)
        order = optimized_order(cfg, profile)
    else:
        order = natural_order(cfg)
    return link(cfg, order, base_address=base_address, seed=spec.seed)


def ref_trace_seed(name: str) -> int:
    """The evaluation ("ref" input) trace seed for a benchmark."""
    return benchmark_spec(name).seed ^ REF_SALT


def program_fingerprint_inputs(
    name: str,
    optimized: bool,
    scale: float = 1.0,
    base_address: int = DEFAULT_BASE_ADDRESS,
    profile_blocks: Optional[int] = None,
) -> Dict[str, object]:
    """Every input :func:`prepare_program` consumes, as plain data.

    This is the keying surface of the artifact store's program
    fingerprints (see :mod:`repro.store.fingerprint`): the *full*
    workload spec — knobs, generator seed, ILP profile — not just the
    benchmark name, so two distinct specs sharing a name can never
    alias one image.  The spec rides along as its dataclass so the
    fingerprint canonicalizer tags it with its class name (two
    parameter types with equal fields cannot collide).  Kept next to
    :func:`prepare_program` so the two evolve together.
    """
    return {
        "spec": benchmark_spec(name),
        "scale": scale,
        "optimized": optimized,
        "base_address": base_address,
        "profile_blocks": profile_blocks,
        "train_salt": TRAIN_SALT,
    }
