"""Instruction streams: extraction and statistics (paper §1, Fig. 1).

An *instruction stream* is a sequential run of instructions from the
target of a taken branch to the next taken branch.  It may span several
basic blocks as long as all intermediate branches fall through.  Streams
are a property of the executed trace plus the code layout — the same
program produces much longer streams once its layout is optimized, which
is the effect the stream fetch architecture exploits.

These utilities regenerate the fetch-unit-size comparison of Table 1 and
the layout statistics quoted in §3.2 (≈80% of conditional branch
instances not taken in optimized codes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List

from repro.common.types import BranchKind
from repro.isa.trace import DynBlock


@dataclass(frozen=True)
class Stream:
    """One dynamic instruction stream."""

    start_addr: int
    length: int  # instructions
    num_blocks: int
    end_kind: BranchKind

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("stream length must be >= 1")
        if self.num_blocks < 1:
            raise ValueError("stream must contain at least one block")


def extract_streams(
    dynblocks: Iterable[DynBlock], max_length: int | None = None
) -> Iterator[Stream]:
    """Cut a dynamic block trace into instruction streams.

    A stream ends at every taken branch.  If ``max_length`` is given,
    longer sequential runs are split — mirroring the finite length field
    of the stream predictor; the continuation then starts a new stream at
    the split point, exactly like the predictor's sequential-run capping.
    """
    start = None
    length = 0
    blocks = 0
    for dyn in dynblocks:
        offset = 0
        remaining = dyn.size
        if start is None:
            start = dyn.addr
        while max_length is not None and length + remaining > max_length:
            take = max_length - length
            yield Stream(start, max_length, max(blocks + 1, 1), BranchKind.NONE)
            offset += take
            remaining -= take
            start = dyn.addr + 4 * (offset)
            length = 0
            blocks = 0
        length += remaining
        blocks += 1
        if dyn.taken:
            yield Stream(start, length, blocks, dyn.kind)
            start = None
            length = 0
            blocks = 0
    if start is not None and length:
        yield Stream(start, length, blocks, BranchKind.NONE)


def stream_statistics(
    dynblocks: Iterable[DynBlock], n_instructions: int
) -> Dict[str, float]:
    """Aggregate stream/branch statistics over ~``n_instructions``.

    Returns the metrics the paper quotes:

    * ``avg_stream_length`` — instructions per stream (Table 1 row).
    * ``avg_block_length`` — instructions per dynamic basic block.
    * ``taken_fraction`` — fraction of conditional branch *instances*
      that were taken (§3.2: ≈20% in optimized codes).
    * ``streams_per_kinstr`` — prediction-rate proxy: how many stream
      predictions a stream front-end makes per 1000 instructions.
    """
    instr = 0
    blocks = 0
    cond = 0
    cond_taken = 0
    stream_lengths: List[int] = []
    current_len = 0

    for dyn in dynblocks:
        instr += dyn.size
        blocks += 1
        current_len += dyn.size
        if dyn.kind is BranchKind.COND:
            cond += 1
            if dyn.taken:
                cond_taken += 1
        if dyn.taken:
            stream_lengths.append(current_len)
            current_len = 0
        if instr >= n_instructions:
            break

    if not stream_lengths or blocks == 0:
        raise ValueError("trace too short for statistics")
    total_stream_instr = sum(stream_lengths)
    return {
        "instructions": float(instr),
        "dynamic_blocks": float(blocks),
        "streams": float(len(stream_lengths)),
        "avg_stream_length": total_stream_instr / len(stream_lengths),
        "avg_block_length": instr / blocks,
        "taken_fraction": (cond_taken / cond) if cond else 0.0,
        "conditional_instances": float(cond),
        "streams_per_kinstr": 1000.0 * len(stream_lengths) / instr,
    }
