"""Dynamic execution: CFG-level profiling and ISA-level trace walking.

Two walkers share the behaviour machinery:

* :func:`profile_edges` walks the CFG at block granularity (no layout
  needed) to collect the edge profile used by the optimized layout — the
  paper's ``train`` input.
* :class:`TraceWalker` walks a linked :class:`~repro.isa.program.Program`
  and yields :class:`DynBlock` records — the paper's ``ref`` input trace
  that drives the simulator.

Behaviours decide between *CFG successors*, so a given seed produces the
same CFG-level path under any layout; only the ISA-level taken/not-taken
view differs.  This mirrors how relinking a binary does not change its
program semantics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.types import BranchKind
from repro.isa.behavior import WalkContext
from repro.isa.cfg import ControlFlowGraph
from repro.isa.program import LinearBlock, Program


class DynBlock:
    """One dynamic basic-block execution in the trace.

    Immutable once constructed.  ``addr``/``size``/``kind`` are copied
    out of the linear block at construction: the simulator reads them
    once or more per instruction, so they are plain slot attributes
    rather than properties.  Because instances are immutable, walkers
    intern and re-emit one object per distinct (block, taken, next)
    triple instead of allocating a fresh record per dynamic block.
    """

    __slots__ = ("lb", "taken", "next_addr", "addr", "size", "kind",
                 "meta", "keys")

    def __init__(self, lb: LinearBlock, taken: bool, next_addr: int) -> None:
        self.lb = lb
        self.taken = taken
        self.next_addr = next_addr
        self.addr = lb.addr
        self.size = lb.size
        self.kind = lb.kind
        # Denormalized decode artifacts (filled by the interning walker):
        # the processor reads them once per dispatched segment.
        self.meta = lb._meta
        self.keys = lb._slot_keys

    @property
    def target_addr(self) -> int:
        """Where control went when ``taken`` (== ``next_addr`` then)."""
        return self.next_addr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        arrow = "T" if self.taken else "N"
        return f"DynBlock(@{self.addr:#x}+{self.size} {self.kind.name} {arrow})"


def profile_edges(
    cfg: ControlFlowGraph, seed: int, n_blocks: int
) -> Dict[Tuple[int, int], int]:
    """Walk ``n_blocks`` dynamic blocks; count (src, dst) edge traversals."""
    cfg.validate()
    ctx = WalkContext(seed)
    stack: List[int] = []
    edges: Dict[Tuple[int, int], int] = defaultdict(int)
    current = cfg.entry_bid
    assert current is not None

    for _ in range(n_blocks):
        block = cfg.block(current)
        ctx.record_block(current)
        kind = block.kind
        if kind is BranchKind.NONE:
            nxt = block.succ_false
        elif kind is BranchKind.COND:
            cond = block.behavior.sample(ctx, block.bid)
            ctx.record_outcome(cond)
            nxt = block.succ_true if cond else block.succ_false
        elif kind is BranchKind.JUMP:
            nxt = block.succ_true
        elif kind is BranchKind.CALL:
            stack.append(block.succ_false)
            nxt = block.succ_true
        elif kind is BranchKind.RET:
            nxt = stack.pop() if stack else cfg.entry_bid
        else:  # IND
            slot = block.ind_chooser.choose(ctx, block.bid)
            nxt = block.ind_targets[slot]
        edges[(current, nxt)] += 1
        current = nxt
    return dict(edges)


class TraceRecord:
    """The memoized dynamic execution of one (program, seed) pair.

    The trace a :class:`TraceWalker` yields is a pure function of the
    linked program and the walk seed — and ``run_matrix`` simulates the
    same (benchmark, layout) image under every (width, architecture)
    cell.  The record walks the behaviours once, appending the interned
    :class:`DynBlock` stream to a shared list; every walker over the
    same (program, seed) replays that list, paying a list index per
    block instead of a behaviour sample.  Records are cached on the
    :class:`~repro.isa.program.Program` (see :class:`TraceWalker`).
    """

    #: How many blocks one extension step appends.
    CHUNK = 4096

    def __init__(self, program: Program, seed: int) -> None:
        self.program = program
        self.seed = seed
        self.ctx = WalkContext(seed)
        self.stack: List[int] = []
        self._current: Optional[LinearBlock] = program.block_starting_at(
            program.entry_address
        )
        if self._current is None:
            raise ValueError("program entry address does not start a block")
        #: The materialized trace so far (append-only).
        self.blocks: List[DynBlock] = []
        # Interned DynBlocks: traces revisit the same (block, taken,
        # next) triples millions of times, and DynBlock is immutable, so
        # one record per distinct triple serves every occurrence without
        # a per-block allocation.
        self._interned: Dict[Tuple[int, bool, int], DynBlock] = {}
        self._block_at = program.block_starting_at

    def extend(self) -> None:
        """Materialize the next :data:`CHUNK` blocks of the trace."""
        append = self.blocks.append
        block_at = self._block_at
        step = self._step
        lb = self._current
        for _ in range(self.CHUNK):
            if lb is None:  # pragma: no cover - walks are infinite
                break
            record = step(lb)
            lb = block_at(record.next_addr)
            if lb is None:
                raise RuntimeError(
                    f"control transfer to non-block address "
                    f"{record.next_addr:#x}"
                )
            append(record)
        self._current = lb

    # ------------------------------------------------------------------
    # serialization (artifact store)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Program-independent replay state for the on-disk store.

        Captures the materialized step stream as (addr, taken, next)
        triples plus the complete walk state — RNG, outcome register,
        path register, per-branch private state, call stack, resume
        address — so a loaded record replays bit-identically *and*
        extends bit-identically past its saved end.
        """
        ctx = self.ctx
        return {
            "seed": self.seed,
            "steps": [(d.addr, d.taken, d.next_addr) for d in self.blocks],
            "rng": ctx.rng.getstate(),
            "global_history": ctx.global_history,
            "path_history": list(ctx.path_history),
            "branch_states": {k: dict(v) for k, v in ctx._states.items()},
            "stack": list(self.stack),
            "current_addr": None if self._current is None
            else self._current.addr,
        }

    @classmethod
    def from_state(
        cls, program: Program, seed: int, state: dict
    ) -> "TraceRecord":
        """Rebind exported state to a (freshly linked or loaded) program.

        Replays the step stream through the interning emitter, so the
        rebuilt record is indistinguishable from one that walked the
        behaviours itself.  Raises on any inconsistency (wrong seed, a
        step addressing no block) — callers treat that as a cache miss.
        """
        if state.get("seed") != seed:
            raise ValueError(
                f"trace state for seed {state.get('seed')!r}, wanted {seed}"
            )
        record = cls(program, seed)
        ctx = record.ctx
        ctx.rng.setstate(state["rng"])
        ctx.global_history = state["global_history"]
        ctx.path_history.extend(state["path_history"])
        ctx._states = {key: dict(val)
                       for key, val in state["branch_states"].items()}
        record.stack = list(state["stack"])
        block_at = program.block_starting_at
        emit = record._emit
        append = record.blocks.append
        for addr, taken, next_addr in state["steps"]:
            lb = block_at(addr)
            if lb is None:
                raise ValueError(f"trace step at non-block address {addr:#x}")
            append(emit(lb, taken, next_addr))
        current_addr = state["current_addr"]
        record._current = (
            None if current_addr is None else block_at(current_addr)
        )
        if current_addr is not None and record._current is None:
            raise ValueError(
                f"trace resumes at non-block address {current_addr:#x}"
            )
        return record

    def _emit(self, lb: LinearBlock, taken: bool, next_addr: int) -> DynBlock:
        key = (lb.addr, taken, next_addr)
        dyn = self._interned.get(key)
        if dyn is None:
            # Materialize the block's decode artifacts once, before the
            # record is interned: the processor and the back-end's
            # segment dispatch read them straight off the DynBlock.
            self.program.block_meta(lb)
            dyn = self._interned[key] = DynBlock(lb, taken, next_addr)
        return dyn

    def _step(self, lb: LinearBlock) -> DynBlock:
        program = self.program
        ctx = self.ctx
        kind = lb.kind
        if lb.origin is not None:
            ctx.record_block(lb.origin)

        if kind is BranchKind.NONE:
            return self._emit(lb, False, lb.fallthrough_addr)
        if kind is BranchKind.JUMP:
            return self._emit(lb, True, lb.target_addr)
        if kind is BranchKind.CALL:
            self.stack.append(lb.fallthrough_addr)
            return self._emit(lb, True, lb.target_addr)
        if kind is BranchKind.RET:
            if self.stack:
                target = self.stack.pop()
            else:
                target = program.entry_address
            return self._emit(lb, True, target)
        if kind is BranchKind.IND:
            block = program.cfg.block(lb.origin)
            slot = block.ind_chooser.choose(ctx, block.bid)
            return self._emit(lb, True, lb.ind_target_addrs[slot])

        # Conditional: behaviour decides the CFG successor; the layout
        # decides whether reaching it is an ISA taken or a fall-through.
        block = program.cfg.block(lb.origin)
        cond = block.behavior.sample(ctx, block.bid)
        ctx.record_outcome(cond)
        taken = cond if lb.taken_means_true else not cond
        next_addr = lb.target_addr if taken else lb.fallthrough_addr
        return self._emit(lb, taken, next_addr)


class TraceWalker:
    """Iterates the dynamic execution of a linked program.

    The walker is the simulator's oracle: it knows the true path.  The
    call stack holds ISA return addresses, so returns land on whatever
    the layout placed after the call (possibly a stub).  A return with an
    empty stack restarts at the program entry — synthetic main functions
    loop forever, so this only guards against malformed workloads.

    Walkers over one (program, seed) pair share a memoized
    :class:`TraceRecord`: the first drives the behaviour machinery, the
    rest replay its interned block stream — which is what lets
    ``run_matrix`` amortize trace generation across the (width,
    architecture) cells of one image.
    """

    def __init__(self, program: Program, seed: int) -> None:
        self.program = program
        record = program._trace_records.get(seed)
        if record is None:
            record = program._trace_records[seed] = TraceRecord(program, seed)
        self.record = record
        self._pos = 0
        self.blocks_walked = 0
        self.instructions_walked = 0

    def __iter__(self) -> Iterator[DynBlock]:
        return self

    def __next__(self) -> DynBlock:
        record = self.record
        blocks = record.blocks
        pos = self._pos
        if pos >= len(blocks):
            record.extend()
        dyn = blocks[pos]
        self._pos = pos + 1
        self.blocks_walked += 1
        self.instructions_walked += dyn.size
        return dyn
