"""Code layout: baseline ordering and profile-guided optimization.

The paper evaluates every fetch architecture on two binaries per
benchmark: a *baseline* layout (what a compiler emits without profile
data) and a *layout optimized* binary produced by the ``spike`` binary
optimizer from a ``train``-input profile.  We reproduce both:

* :func:`natural_order` — source order: functions in creation order,
  blocks in creation order.  Hot `else` sides and inline cold code leave
  many frequently-taken branches and a sparse I-cache footprint.
* :func:`optimized_order` — a Pettis–Hansen-style bottom-up chaining of
  basic blocks along hot edges, per function, followed by hot/cold chain
  splitting (cold chains are exiled to the end of the image) and hot-first
  function ordering.  The effect is the one the paper relies on: branches
  align towards not-taken, sequential runs (streams) grow long, and
  useful code packs densely into cache lines.

Edge profiles come from :func:`repro.isa.trace.profile_edges`, collected
with a *different seed* than the evaluation run (the train/ref input
split of the paper).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.common.types import BranchKind
from repro.isa.cfg import ControlFlowGraph

EdgeProfile = Mapping[Tuple[int, int], int]


def natural_order(cfg: ControlFlowGraph) -> List[int]:
    """Creation order, grouped by function — the unoptimized layout."""
    order: List[int] = []
    for func in cfg.functions:
        order.extend(func.bids)
    return order


def optimized_order(cfg: ControlFlowGraph, profile: EdgeProfile) -> List[int]:
    """Profile-guided block chaining + hot/cold splitting + function order."""
    block_weight = _block_weights(cfg, profile)

    hot_section: List[int] = []
    cold_section: List[int] = []
    func_rank: List[Tuple[float, int, List[int], List[int]]] = []

    for func in cfg.functions:
        chains = _build_chains(cfg, func.bids, profile)
        hot, cold = _split_chains(
            chains, block_weight, entry_bid=func.entry
        )
        weight = float(sum(block_weight[b] for b in func.bids))
        func_rank.append((weight, func.fid, hot, cold))

    entry_fid = cfg.block(cfg.entry_bid).func_id if cfg.entry_bid is not None else 0
    # Entry function first, then hottest functions first; creation order
    # breaks ties so the layout is deterministic.
    func_rank.sort(key=lambda item: (item[1] != entry_fid, -item[0], item[1]))
    for _, _, hot, cold in func_rank:
        hot_section.extend(hot)
        cold_section.extend(cold)
    return hot_section + cold_section


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------

def _block_weights(
    cfg: ControlFlowGraph, profile: EdgeProfile
) -> Dict[int, int]:
    """Execution counts per block, from incoming profiled edges."""
    weight: Dict[int, int] = defaultdict(int)
    for (src, dst), count in profile.items():
        weight[dst] += count
        weight[src] += 0  # make sure sources appear even if never entered
    if cfg.entry_bid is not None:
        weight[cfg.entry_bid] += 1  # the entry is executed at least once
    return weight


def _build_chains(
    cfg: ControlFlowGraph,
    bids: Sequence[int],
    profile: EdgeProfile,
) -> List[List[int]]:
    """Pettis–Hansen bottom-up chaining restricted to one function.

    Fall-through-capable edges (COND/NONE/CALL false edges and COND true
    edges) are considered in decreasing weight order; two chains merge
    when the edge connects the tail of one to the head of the other.
    """
    in_function = set(bids)
    chain_of: Dict[int, List[int]] = {bid: [bid] for bid in bids}

    candidates: List[Tuple[int, int, int]] = []
    for (src, dst), count in profile.items():
        if count <= 0 or src not in in_function or dst not in in_function:
            continue
        block = cfg.block(src)
        # Only edges that *can* become fall-throughs are useful to chain.
        if block.kind in (BranchKind.NONE, BranchKind.COND, BranchKind.CALL):
            if dst in (block.succ_true, block.succ_false):
                if block.kind is BranchKind.CALL and dst != block.succ_false:
                    continue  # the call target cannot fall through
                candidates.append((count, src, dst))
    # Deterministic order: heavy edges first, ties by block ids.
    candidates.sort(key=lambda e: (-e[0], e[1], e[2]))

    for _, src, dst in candidates:
        chain_a = chain_of[src]
        chain_b = chain_of[dst]
        if chain_a is chain_b:
            continue
        if chain_a[-1] != src or chain_b[0] != dst:
            continue  # src must be a tail and dst a head
        chain_a.extend(chain_b)
        for bid in chain_b:
            chain_of[bid] = chain_a

    seen = set()
    chains: List[List[int]] = []
    for bid in bids:
        chain = chain_of[bid]
        head = id(chain)
        if head not in seen:
            seen.add(head)
            chains.append(chain)
    return chains


def _split_chains(
    chains: List[List[int]],
    block_weight: Mapping[int, int],
    entry_bid: int,
) -> Tuple[List[int], List[int]]:
    """Order chains hot-first; never-executed chains go to the cold side."""
    entry_chain: List[int] | None = None
    scored: List[Tuple[int, List[int]]] = []
    for chain in chains:
        if entry_bid in chain:
            entry_chain = chain
            continue
        weight = max(block_weight.get(bid, 0) for bid in chain)
        scored.append((weight, chain))
    scored.sort(key=lambda item: (-item[0], item[1][0]))

    hot: List[int] = []
    cold: List[int] = []
    if entry_chain is not None:
        hot.extend(entry_chain)
    for weight, chain in scored:
        if weight > 0:
            hot.extend(chain)
        else:
            cold.extend(chain)
    return hot, cold


def layout_quality(
    cfg: ControlFlowGraph, order: Sequence[int], profile: EdgeProfile
) -> float:
    """Fraction of profiled control transfers that became fall-throughs.

    A cheap layout metric used by tests and the layout example: higher is
    better, and the optimized layout must beat the natural one on it.
    """
    position = {bid: i for i, bid in enumerate(order)}
    fallthrough = 0
    total = 0
    for (src, dst), count in profile.items():
        total += count
        if position.get(dst, -2) == position.get(src, -4) + 1:
            fallthrough += count
    if total == 0:
        return 0.0
    return fallthrough / total
