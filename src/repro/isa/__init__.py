"""Synthetic ISA substrate: CFGs, behaviours, layout, programs, traces."""

from repro.isa.cfg import BasicBlock, Function, ControlFlowGraph
from repro.isa.program import Program, LinearBlock, link
from repro.isa.layout import natural_order, optimized_order
from repro.isa.trace import TraceWalker, DynBlock, profile_edges
from repro.isa.workloads import (
    WorkloadSpec,
    SPEC_BENCHMARKS,
    build_benchmark,
    benchmark_spec,
)
from repro.isa.streams import Stream, extract_streams, stream_statistics

__all__ = [
    "BasicBlock",
    "Function",
    "ControlFlowGraph",
    "Program",
    "LinearBlock",
    "link",
    "natural_order",
    "optimized_order",
    "TraceWalker",
    "DynBlock",
    "profile_edges",
    "WorkloadSpec",
    "SPEC_BENCHMARKS",
    "build_benchmark",
    "benchmark_spec",
    "Stream",
    "extract_streams",
    "stream_statistics",
]
