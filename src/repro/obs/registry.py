"""Process-wide metrics registry: counters, gauges, histograms.

The registry is deliberately tiny and stdlib-only so every layer of
the package — store, exec, serve, accel, the core run loop — can
publish into it without import cycles or optional dependencies.  All
instruments share three properties:

* **Bounded label sets.**  Each metric declares its label names up
  front and caps the number of distinct label-value combinations
  (``max_series``).  Once the cap is hit, new combinations fold into a
  single reserved overflow series instead of growing without bound —
  a registry fed hostile or accidental high-cardinality labels (cell
  fingerprints, addresses) stays O(max_series), and the fold is
  visible both as the overflow series and as ``dropped_series``.
* **Cheap updates.**  An update is one lock acquire plus a dict
  write; instruments are meant to be called at cell/segment
  boundaries (milliseconds apart), never per simulated cycle.
* **Prometheus exposition.**  ``MetricsRegistry.render_prometheus``
  emits the text format (``# HELP`` / ``# TYPE`` / samples), which the
  serve daemon returns from its ``metrics`` op.

Instruments are get-or-create: asking for an existing name with the
same type and labels returns the same object, a mismatch raises.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
]

#: Label-value used for every label of the reserved overflow series.
OVERFLOW_LABEL_VALUE = "__overflow__"

#: Default cap on distinct label-value combinations per metric.
DEFAULT_MAX_SERIES = 64

#: Default histogram bucket upper bounds, in seconds — spans sub-ms
#: store probes up to minute-long sweep requests.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class _Metric:
    """Shared machinery: label validation, bounded series creation."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self.max_series = int(max_series)
        self.dropped_series = 0
        self._series: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    # -- label handling -------------------------------------------------

    def _series_key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        try:
            key = tuple(str(labels[name]) for name in self.label_names)
        except KeyError:
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names!r}, "
                f"got {tuple(sorted(labels))!r}"
            ) from None
        return key

    def _slot(self, key: Tuple[str, ...], default) -> Tuple[str, ...]:
        """Return the key to update, folding overflow; caller holds lock."""
        if key in self._series:
            return key
        if len(self._series) >= self.max_series:
            self.dropped_series += 1
            key = tuple(OVERFLOW_LABEL_VALUE for _ in self.label_names)
            if key not in self._series:
                self._series[key] = default
            return key
        self._series[key] = default
        return key

    # -- introspection --------------------------------------------------

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._series.items())

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self.dropped_series = 0

    def _render_labels(self, key: Tuple[str, ...]) -> str:
        if not self.label_names:
            return ""
        pairs = ", ".join(
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.label_names, key)
        )
        return "{" + pairs + "}"

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, value in self.samples():
            lines.append(
                f"{self.name}{self._render_labels(key)} "
                f"{_format_value(value)}"
            )
        return lines


class Counter(_Metric):
    """Monotonically increasing value, optionally labelled."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            key = self._slot(self._series_key(labels), 0)
            self._series[key] += amount  # type: ignore[operator]

    def value(self, **labels: object) -> float:
        key = self._series_key(labels)
        with self._lock:
            return float(self._series.get(key, 0))  # type: ignore[arg-type]

    def total(self) -> float:
        with self._lock:
            return float(sum(self._series.values()))  # type: ignore[arg-type]


class Gauge(_Metric):
    """A value that can go up and down (queue depths, residency)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            key = self._slot(self._series_key(labels), 0)
            self._series[key] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        with self._lock:
            key = self._slot(self._series_key(labels), 0)
            self._series[key] += amount  # type: ignore[operator]

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._series_key(labels)
        with self._lock:
            return float(self._series.get(key, 0))  # type: ignore[arg-type]


class _HistogramSeries:
    __slots__ = ("buckets", "total", "count")

    def __init__(self, nbuckets: int) -> None:
        self.buckets = [0] * nbuckets
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative-bucket histogram of observations (latencies)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels, max_series)
        self.buckets = tuple(sorted(float(b) for b in buckets))

    def observe(self, value: float, **labels: object) -> None:
        with self._lock:
            key = self._slot(
                self._series_key(labels), _HistogramSeries(len(self.buckets))
            )
            series = self._series[key]
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.buckets[i] += 1  # type: ignore[union-attr]
                    break
            series.total += value  # type: ignore[union-attr]
            series.count += 1  # type: ignore[union-attr]

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, series in self.samples():
            base = list(zip(self.label_names, key))
            cumulative = 0
            for bound, count in zip(self.buckets, series.buckets):
                cumulative += count
                pairs = ", ".join(
                    f'{n}="{_escape_label(v)}"' for n, v in base
                    + [("le", _format_value(float(bound)))]
                )
                lines.append(
                    f"{self.name}_bucket{{{pairs}}} {cumulative}"
                )
            pairs = ", ".join(
                f'{n}="{_escape_label(v)}"' for n, v in base + [("le", "+Inf")]
            )
            lines.append(f"{self.name}_bucket{{{pairs}}} {series.count}")
            suffix = self._render_labels(key)
            lines.append(
                f"{self.name}_sum{suffix} {_format_value(series.total)}"
            )
            lines.append(f"{self.name}_count{suffix} {series.count}")
        return lines


class MetricsRegistry:
    """Named instruments, get-or-create, rendered together."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if type(metric) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {cls.kind}"
                    )
                if metric.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{metric.label_names!r}, not {tuple(labels)!r}"
                    )
                return metric
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Counter:
        return self._get_or_create(
            Counter, name, help, labels, max_series=max_series
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, help, labels, max_series=max_series
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_series: int = DEFAULT_MAX_SERIES,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels,
            max_series=max_series, buckets=buckets,
        )

    def get(self, name: str) -> "_Metric | None":
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render_prometheus(self) -> str:
        lines: List[str] = []
        for metric in self.metrics():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Zero every series (tests); instruments stay registered."""
        for metric in self.metrics():
            metric.reset()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every repro layer publishes into."""
    return _REGISTRY
