"""Flight recorder: a ring-buffered LDJSON trace of typed events.

A :class:`FlightRecorder` keeps the last ``capacity`` events in memory
and, when given a path, appends each event as one JSON line — the same
single-``os.write`` O_APPEND discipline as the sweep journal, so
events from forked workers interleave whole-line and a crash can tear
at most the final line.  Recorder files live next to the sweep journal
(``runs/<sweep-fp>.events``) and are garbage-collected with it.

The on-disk file is itself a ring: once it would exceed ``max_bytes``
the *creating* process rewrites it atomically from the tail of the
existing file (keeping the newest ``capacity`` raw lines — including
lines appended by forked workers, which the in-memory ring never saw).
Forked children never rotate; they only append.  A concurrent append
during the rare rewrite window can be lost, which is the accepted
trade for a bounded file — this is a flight recorder, not a ledger.

:func:`read_events` mirrors the journal reader's torn-tail tolerance:
unparseable lines, non-objects, and lines without an ``"ev"`` field
are skipped, never fatal.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional

__all__ = ["FlightRecorder", "read_events"]

#: Default in-memory (and rotated on-disk) event count.
DEFAULT_CAPACITY = 2048

#: Default on-disk ceiling before the creator rewrites from the tail.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


class FlightRecorder:
    """Bounded event sink; optionally persisted as LDJSON.

    ``record`` never raises for I/O reasons: the first failed write
    degrades the recorder to memory-only for the rest of its life,
    mirroring how an unwritable store degrades to recompute.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        capacity: int = DEFAULT_CAPACITY,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.capacity = int(capacity)
        self.max_bytes = int(max_bytes)
        self._ring: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._creator_pid = os.getpid()
        self._degraded = False
        self._size = 0
        if self.path is not None:
            try:
                self._size = os.path.getsize(self.path)
            except OSError:
                self._size = 0

    # -- recording ------------------------------------------------------

    def record(self, event: Dict[str, object]) -> None:
        with self._lock:
            self._ring.append(event)
            if self.path is None or self._degraded:
                return
            try:
                line = json.dumps(
                    event, sort_keys=True, separators=(",", ":"),
                    default=str,
                )
            except (TypeError, ValueError):
                return
            data = (line + "\n").encode("utf-8")
            try:
                if (
                    self._size + len(data) > self.max_bytes
                    and os.getpid() == self._creator_pid
                ):
                    self._rotate_locked()
                fd = os.open(
                    self.path,
                    os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                    0o644,
                )
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)
                self._size += len(data)
            except OSError:
                self._degraded = True

    def _rotate_locked(self) -> None:
        """Rewrite the file from its own tail; caller holds the lock."""
        try:
            with open(self.path, "rb") as fh:
                raw_lines = fh.read().splitlines(True)
        except OSError:
            raw_lines = []
        keep = raw_lines[-self.capacity:]
        directory = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-events-", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.writelines(keep)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._size = sum(len(line) for line in keep)

    # -- inspection -----------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self._degraded

    def events(self) -> List[Dict[str, object]]:
        """The in-memory ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlightRecorder(path={self.path!r}, "
            f"events={len(self)}, degraded={self._degraded})"
        )


def read_events(path: str) -> List[Dict[str, object]]:
    """Parse a recorder file, skipping torn or alien lines.

    Tolerates exactly what the journal reader tolerates: a missing
    file reads as empty, a torn final line (crash mid-append) and any
    line that is not a JSON object with an ``"ev"`` field are skipped.
    """
    events: List[Dict[str, object]] = []
    try:
        fh: Iterable[str] = open(path, "r", encoding="utf-8", errors="replace")
    except OSError:
        return events
    with fh:  # type: ignore[union-attr]
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict) and "ev" in event:
                events.append(event)
    return events


def tail_events(path: str, count: int) -> List[Dict[str, object]]:
    """The last ``count`` well-formed events of a recorder file."""
    events = read_events(path)
    if count <= 0:
        return []
    return events[-count:]


def event_timestamp(event: Dict[str, object]) -> float:
    """Best-effort ``ts`` extraction (0.0 when absent/malformed)."""
    ts = event.get("ts")
    if isinstance(ts, (int, float)):
        return float(ts)
    return 0.0


def now() -> float:
    """Wall-clock timestamp used for every recorded event."""
    return time.time()
