"""Per-cell profiling hooks: cProfile capture keyed by fingerprint.

Generalizes the CLI's ``--profile`` one-off: any callable can be run
under :mod:`cProfile`, the raw profile optionally persisted as a
``.pstats`` file named after the cell's fingerprint (so profiles from
different cells, machines, or PRs can be diffed offline with
``pstats.Stats``), and a top-N cumulative table printed.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from typing import Callable, Optional

__all__ = ["CellProfile", "profile_call"]

#: Default number of rows in the printed top-N table.
DEFAULT_TOP = 20


class CellProfile:
    """One captured profile: the callable's result plus the stats."""

    __slots__ = ("result", "profiler", "fingerprint", "pstats_path")

    def __init__(
        self,
        result: object,
        profiler: cProfile.Profile,
        fingerprint: Optional[str],
        pstats_path: Optional[str],
    ) -> None:
        self.result = result
        self.profiler = profiler
        self.fingerprint = fingerprint
        self.pstats_path = pstats_path

    def print_stats(
        self,
        top: int = DEFAULT_TOP,
        sort: str = "cumulative",
        stream=None,
    ) -> None:
        """Print the top-``top`` functions by ``sort`` order."""
        if stream is not None:
            stats = pstats.Stats(self.profiler, stream=stream)
        else:
            stats = pstats.Stats(self.profiler)
        stats.sort_stats(sort).print_stats(top)


def profile_call(
    fn: Callable[..., object],
    *args: object,
    fingerprint: Optional[str] = None,
    out_dir: Optional[str] = None,
    **kwargs: object,
) -> CellProfile:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    With both ``out_dir`` and ``fingerprint``, the raw profile is
    dumped to ``out_dir/<fingerprint>.pstats`` (directory created on
    demand) — the file a later ``pstats.Stats(path)`` can reload, so
    top-N tables are reproducible without re-running the cell.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    pstats_path = None
    if out_dir is not None and fingerprint:
        os.makedirs(out_dir, exist_ok=True)
        pstats_path = os.path.join(out_dir, f"{fingerprint}.pstats")
        profiler.dump_stats(pstats_path)
    return CellProfile(result, profiler, fingerprint, pstats_path)
