"""Flight-recorder inspection: the ``obs dump|tail|summary`` commands.

Shared by ``python -m repro.obs`` and the ``repro-experiments obs``
subcommand.  The target may be a recorder file, a directory holding
``*.events`` files (a store root or its ``runs/`` subdirectory), or
omitted entirely — then the default store's newest recorder is used.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time
from typing import Dict, List, Optional

from .events import read_events

__all__ = ["main", "resolve_target", "summarize"]


def _candidate_files(directory: str) -> List[str]:
    files = glob.glob(os.path.join(directory, "*.events"))
    files += glob.glob(os.path.join(directory, "runs", "*.events"))
    return files


def resolve_target(target: Optional[str]) -> Optional[str]:
    """Map a file/directory/None target to one recorder file.

    Directories resolve to their most recently modified ``*.events``
    file (looking in the directory itself and a ``runs/`` child, so a
    store root works directly).  ``None`` starts from the default
    store root.  Returns ``None`` when nothing matches.
    """
    if target is None:
        from repro.store.store import default_store_root

        target = default_store_root()
        if not target:
            return None
    if os.path.isfile(target):
        return target
    if os.path.isdir(target):
        files = _candidate_files(target)
        if not files:
            return None
        return max(files, key=lambda path: os.path.getmtime(path))
    return None


def _format_ts(ts: object) -> str:
    if not isinstance(ts, (int, float)) or ts <= 0:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))


def summarize(path: str, events: List[Dict[str, object]]) -> str:
    """Human-readable digest: span, counts by type, notable events."""
    lines = [f"{path}: {len(events)} event(s)"]
    if not events:
        return lines[0]
    first, last = events[0].get("ts"), events[-1].get("ts")
    lines.append(
        f"  span     {_format_ts(first)} .. {_format_ts(last)}"
    )
    counts: Dict[str, int] = {}
    for event in events:
        ev = str(event.get("ev"))
        counts[ev] = counts.get(ev, 0) + 1
    for ev in sorted(counts):
        lines.append(f"  {ev:16s} {counts[ev]:6d}")
    notable = [
        event for event in events
        if event.get("ev") in (
            "warning", "worker_crash", "timeout", "degraded", "job_failed",
        )
    ]
    if notable:
        lines.append("  notable:")
        for event in notable[-10:]:
            detail = {
                key: value for key, value in event.items()
                if key not in ("ev", "ts")
            }
            lines.append(
                f"    {_format_ts(event.get('ts'))} {event.get('ev')} "
                f"{json.dumps(detail, sort_keys=True, default=str)}"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect repro flight-recorder (*.events) files",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    for action, help_text in (
        ("dump", "print every recorded event as JSON lines"),
        ("tail", "print the last N recorded events"),
        ("summary", "digest: span, counts by type, notable events"),
    ):
        p = sub.add_parser(action, help=help_text)
        p.add_argument(
            "target", nargs="?", default=None,
            help="recorder file, or a directory/store root to pick the "
                 "newest *.events from (default: the default store)",
        )
        p.add_argument("-n", "--count", type=int, default=20,
                       help="tail: events to show (default: 20)")
    args = parser.parse_args(argv)

    path = resolve_target(args.target)
    if path is None:
        where = args.target or "the default store"
        print(f"no recorder file found in {where}", file=sys.stderr)
        return 1
    events = read_events(path)
    if args.action == "summary":
        print(summarize(path, events))
        return 0
    if args.action == "tail":
        events = events[-max(args.count, 0):]
    for event in events:
        print(json.dumps(event, sort_keys=True, default=str))
    return 0
