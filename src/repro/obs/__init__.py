"""`repro.obs` — unified metrics, tracing, and flight recording.

Three layers, all stdlib-only so any part of the package can import
this module without cycles or optional dependencies:

* **Metrics** (:mod:`repro.obs.registry`): a process-global registry
  of counters/gauges/histograms with bounded label sets.  The store,
  exec pools, serve daemon, accel engine, and core run loop publish
  into the pre-declared instruments below.  Counter updates are a few
  microseconds and happen only at cell/segment boundaries, so they
  stay on unconditionally — the bench gate
  (``benchmarks/bench_perf.py --quick``) proves the disabled-recorder
  hook costs < 2% of even the fastest quick-mode cell.
* **Events** (:mod:`repro.obs.events`): typed LDJSON events fanned
  out to attached :class:`FlightRecorder` sinks.  With no sink
  attached, :func:`record_event` is a single truthiness check.  Sweep
  runs attach a recorder at ``runs/<sweep-fp>.events`` next to the
  journal; the serve daemon keeps one at ``runs/daemon.events``.
* **Exposition**: :func:`render_prometheus` (served by the daemon's
  ``metrics`` op), ``python -m repro.obs`` / the ``obs`` CLI
  subcommand for recorder files, and :mod:`repro.obs.profiling` for
  per-cell cProfile capture keyed by cell fingerprint.

``REPRO_OBS=0`` (also ``off``/``false``/``no``) disables event
recording and recorder attachment; metrics counters are process-local
arithmetic and keep running.  Nothing consults the environment per
event — only at attach points.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

from .events import (
    DEFAULT_CAPACITY,
    DEFAULT_MAX_BYTES,
    FlightRecorder,
    read_events,
    tail_events,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)

__all__ = [
    "FlightRecorder",
    "MetricsRegistry",
    "attach",
    "detach",
    "attached_recorders",
    "obs_enabled",
    "observe_cell",
    "read_events",
    "record_event",
    "registry",
    "render_prometheus",
    "reset_metrics",
    "tail_events",
]

#: Environment knob: set to ``0``/``off``/``false``/``no`` to disable
#: event recording (recorders are not attached; record_event no-ops).
OBS_ENV = "REPRO_OBS"

_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})

#: Content type of :func:`render_prometheus` output (text exposition
#: format version 0.0.4, the one every Prometheus scraper accepts).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def obs_enabled() -> bool:
    """True unless ``REPRO_OBS`` explicitly disables event recording."""
    value = os.environ.get(OBS_ENV, "")
    return value.strip().lower() not in _DISABLED_VALUES


# ---------------------------------------------------------------------------
# Event sinks
# ---------------------------------------------------------------------------

_SINKS: List[FlightRecorder] = []
_SINKS_LOCK = threading.Lock()


def attach(recorder: FlightRecorder) -> FlightRecorder:
    """Register a recorder to receive every :func:`record_event`."""
    with _SINKS_LOCK:
        if recorder not in _SINKS:
            _SINKS.append(recorder)
    return recorder


def detach(recorder: FlightRecorder) -> None:
    """Unregister a recorder; unknown recorders are ignored."""
    with _SINKS_LOCK:
        try:
            _SINKS.remove(recorder)
        except ValueError:
            pass


def attached_recorders() -> List[FlightRecorder]:
    with _SINKS_LOCK:
        return list(_SINKS)


def record_event(ev: str, **fields: object) -> None:
    """Fan one typed event out to every attached recorder.

    The no-sink fast path is a single truthiness check — safe to call
    from any layer at cell/segment granularity.
    """
    if not _SINKS:
        return
    event: Dict[str, object] = {"ev": ev, "ts": time.time()}
    event.update(fields)
    with _SINKS_LOCK:
        sinks = list(_SINKS)
    for sink in sinks:
        sink.record(event)


def sweep_recorder(path: str) -> Optional[FlightRecorder]:
    """Create-and-attach a recorder, honoring ``REPRO_OBS``.

    Returns ``None`` (and attaches nothing) when observability is
    disabled; callers pair this with :func:`detach` in a finally.
    """
    if not obs_enabled():
        return None
    parent = os.path.dirname(path)
    if parent:
        try:
            os.makedirs(parent, exist_ok=True)
        except OSError:
            pass  # the recorder will degrade to memory-only
    return attach(FlightRecorder(path))


# ---------------------------------------------------------------------------
# Standard instruments
# ---------------------------------------------------------------------------

_R = registry()

# store
STORE_HITS = _R.counter(
    "repro_store_hits_total",
    "Artifacts served from the content-addressed store.", ("kind",))
STORE_MISSES = _R.counter(
    "repro_store_misses_total",
    "Artifact probes that missed (includes hash-verification demotions).",
    ("kind",))
STORE_HEALS = _R.counter(
    "repro_store_heals_total",
    "Corrupt artifacts healed by rewriting a fresh copy.")
STORE_WRITE_FAILURES = _R.counter(
    "repro_store_write_failures_total",
    "Store writes that failed (store degraded to recompute).")
STORE_GC_RUNS = _R.counter(
    "repro_store_gc_runs_total", "Garbage-collection passes.")
STORE_GC_REMOVED = _R.counter(
    "repro_store_gc_removed_total",
    "Entries removed by gc, by category.", ("what",))

# exec
EXEC_JOBS = _R.counter(
    "repro_exec_jobs_total",
    "Sweep cells finishing in the executor, by outcome.", ("status",))
EXEC_RETRIES = _R.counter(
    "repro_exec_retries_total", "Cell attempts retried after a failure.")
EXEC_FALLBACKS = _R.counter(
    "repro_exec_fallbacks_total",
    "Cells switched to their fallback arguments.")
EXEC_TIMEOUTS = _R.counter(
    "repro_exec_timeouts_total", "Cells killed by the per-job deadline.")
EXEC_REBUILDS = _R.counter(
    "repro_exec_rebuilds_total", "Worker pools rebuilt after a crash.")
EXEC_DEGRADATIONS = _R.counter(
    "repro_exec_degradations_total",
    "Pools degraded to serial in-process execution.")
EXEC_WORKER_DISPATCHED = _R.gauge(
    "repro_exec_worker_dispatched",
    "Job attempts dispatched, by worker slot (slot ids are stable "
    "across rebuilds: a replacement worker inherits its slot).",
    ("slot",))
EXEC_WORKER_COMPLETED = _R.gauge(
    "repro_exec_worker_completed",
    "Job attempts completed successfully, by worker slot.", ("slot",))

# serve
SERVE_REQUESTS = _R.counter(
    "repro_serve_requests_total", "Daemon requests, by op.", ("op",))
SERVE_ADMISSIONS = _R.counter(
    "repro_serve_admissions_total",
    "Matrix requests admitted into the scheduler.")
SERVE_COALESCED = _R.counter(
    "repro_serve_coalesced_total",
    "Cells coalesced onto in-flight identical work.")
SERVE_CELLS = _R.counter(
    "repro_serve_cells_total",
    "Cells resolved by the daemon, by outcome.", ("outcome",))
SERVE_QUEUE_DEPTH = _R.gauge(
    "repro_serve_queue_depth", "Cells waiting in the scheduler backlog.")
SERVE_REQUEST_SECONDS = _R.histogram(
    "repro_serve_request_seconds",
    "Wall-clock latency of daemon matrix requests.")

# cluster
CLUSTER_DISPATCHES = _R.counter(
    "repro_cluster_dispatches_total",
    "Cells dispatched to fleet nodes, by node address.", ("node",))
CLUSTER_REDISPATCHES = _R.counter(
    "repro_cluster_redispatches_total",
    "Cells re-dispatched after a node/transport failure.")
CLUSTER_CELLS = _R.counter(
    "repro_cluster_cells_total",
    "Cluster dispatch outcomes (ok/failed/deadline/net/busy).",
    ("outcome",))
CLUSTER_BREAKER_TRIPS = _R.counter(
    "repro_cluster_breaker_trips_total",
    "Per-node circuit-breaker trips (node declared dead).", ("node",))
CLUSTER_NODE_HEALTH = _R.gauge(
    "repro_cluster_node_health",
    "Node health (3 healthy, 2 suspect, 1 probation, 0 dead).",
    ("node",))
CLUSTER_LOCAL_FALLBACKS = _R.counter(
    "repro_cluster_local_fallbacks_total",
    "Sweeps (or sweep remainders) degraded to a local pool because "
    "the whole fleet was unreachable.")

# remote store (repro.store.remote — the federated tier)
STORE_REMOTE_HITS = _R.counter(
    "repro_store_remote_hits_total",
    "Artifacts filled from a remote peer (verified + written locally).",
    ("peer",))
STORE_REMOTE_MISSES = _R.counter(
    "repro_store_remote_misses_total",
    "Remote probes answered found=false, by peer.", ("peer",))
STORE_REMOTE_INTEGRITY = _R.counter(
    "repro_store_remote_integrity_total",
    "Remote payloads quarantined after oid verification failed "
    "(treated as a miss, never served).", ("peer",))
STORE_REMOTE_ERRORS = _R.counter(
    "repro_store_remote_errors_total",
    "Remote transport failures (refused/reset/timeout/garbage frame).",
    ("peer",))
STORE_REMOTE_REPLICATED = _R.counter(
    "repro_store_remote_replicated_total",
    "Local puts replicated to a peer by the write-behind thread.",
    ("peer",))
STORE_REMOTE_REPLICATION_DROPPED = _R.counter(
    "repro_store_remote_replication_dropped_total",
    "Write-behind entries dropped (oldest-first) on queue overflow.")
STORE_REMOTE_REPLICATION_BACKLOG = _R.gauge(
    "repro_store_remote_replication_backlog",
    "Entries waiting in the write-behind replication queue.")

# accel
ACCEL_KERNEL_COMPILES = _R.counter(
    "repro_accel_kernel_compiles_total",
    "Specialized kernels actually compiled (memo misses).")
ACCEL_FALLBACKS = _R.counter(
    "repro_accel_fallbacks_total",
    "Runs that fell back from accel to the interpreted engine.")
CHAIN_SEGMENTS = _R.counter(
    "repro_accel_chain_segments_total",
    "Schedule segments simulated (chain-eligible units).")
CHAIN_HITS = _R.counter(
    "repro_accel_chain_hits_total",
    "Segments served from the chain schedule cache.")

# core run loop
CORE_CELLS = _R.counter(
    "repro_core_cells_total", "Cells simulated, by engine.", ("engine",))
CORE_INSTRUCTIONS = _R.counter(
    "repro_core_instructions_total", "Instructions committed across cells.")
CORE_CYCLES = _R.counter(
    "repro_core_cycles_total", "Cycles simulated across cells.")
CORE_CELL_SECONDS = _R.histogram(
    "repro_core_cell_seconds", "Wall-clock seconds per simulated cell.")

# warnings (fed by repro.common.warn_once)
WARNINGS = _R.counter(
    "repro_warnings_total", "warn_once invocations, by key.", ("key",))


def render_prometheus() -> str:
    """Prometheus text exposition of every registered instrument."""
    return _R.render_prometheus()


def reset_metrics() -> None:
    """Zero every instrument (tests and bench isolation)."""
    _R.reset()


# ---------------------------------------------------------------------------
# Cell-boundary hook
# ---------------------------------------------------------------------------

def observe_cell(
    engine: str,
    result: object,
    wall: float,
    cpu: float,
) -> None:
    """Publish one finished simulation into metrics and the event
    stream.  Called exactly once per cell, at the run boundary —
    never from inside the cycle loop.
    """
    CORE_CELLS.inc(engine=engine)
    instructions = getattr(result, "instructions", 0)
    cycles = getattr(result, "cycles", 0)
    if instructions:
        CORE_INSTRUCTIONS.inc(instructions)
    if cycles:
        CORE_CYCLES.inc(cycles)
    CORE_CELL_SECONDS.observe(wall)
    extras = getattr(result, "extras", None)
    if extras:
        segments = extras.get("segments", 0)
        hits = extras.get("chain_hits", 0)
        if segments:
            CHAIN_SEGMENTS.inc(segments)
        if hits:
            CHAIN_HITS.inc(hits)
    if _SINKS:
        record_event(
            "cell",
            engine=engine,
            instructions=instructions,
            cycles=cycles,
            wall=round(wall, 6),
            cpu=round(cpu, 6),
        )


# Re-exported constants for recorder construction at call sites.
DEFAULT_RECORDER_CAPACITY = DEFAULT_CAPACITY
DEFAULT_RECORDER_MAX_BYTES = DEFAULT_MAX_BYTES
