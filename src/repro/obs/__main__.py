"""``python -m repro.obs`` — inspect flight-recorder files."""

from repro.obs.inspect import main

if __name__ == "__main__":
    raise SystemExit(main())
