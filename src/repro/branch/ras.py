"""Return address stack with shadow-copy repair (§3.2 of the paper).

"The RAS is updated speculatively as guided by the branch type field,
and a shadow copy of the top of the stack is kept with each branch
instruction.  When a misprediction is detected, the stack index and the
top of the stack are restored to their correct values."
"""

from __future__ import annotations

from typing import List, Tuple

#: (stack pointer, value at the top slot) — attach one to each in-flight
#: branch; restoring both undoes any pushes/pops younger than the branch.
RasCheckpoint = Tuple[int, int]


class ReturnAddressStack:
    """A fixed-depth circular return stack."""

    __slots__ = ("depth", "_slots", "_sp", "pushes", "pops", "underflows")

    def __init__(self, depth: int = 8) -> None:
        if depth < 1:
            raise ValueError("RAS depth must be >= 1")
        self.depth = depth
        self._slots: List[int] = [0] * depth
        self._sp = 0  # index of the *next free* slot
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_addr: int) -> None:
        self._slots[self._sp % self.depth] = return_addr
        self._sp += 1
        self.pushes += 1

    def pop(self) -> int:
        self.pops += 1
        if self._sp == 0:
            self.underflows += 1
            return self._slots[0]
        self._sp -= 1
        return self._slots[self._sp % self.depth]

    def top(self) -> int:
        if self._sp == 0:
            return self._slots[0]
        return self._slots[(self._sp - 1) % self.depth]

    # ------------------------------------------------------------------
    # misprediction repair
    # ------------------------------------------------------------------
    def checkpoint(self) -> RasCheckpoint:
        """Capture (sp, top-slot value): cheap per-branch shadow copy."""
        top_index = (self._sp - 1) % self.depth if self._sp else 0
        return (self._sp, self._slots[top_index])

    def restore(self, ckpt: RasCheckpoint) -> None:
        sp, top_value = ckpt
        self._sp = sp
        if sp:
            self._slots[(sp - 1) % self.depth] = top_value
