"""Branch target buffer.

Set-associative, LRU, allocated on *taken* branches only — the
Calder–Grunwald policy the paper adopts ("only taken branches should
introduce a basic block in the BTB").  Entries store the target and the
branch kind (needed for RAS management), plus a 2-bit direction counter
used by the trace cache's secondary path.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.types import BranchKind
from repro.common.stats import CounterBag


class BTBEntry:
    __slots__ = ("tag", "target", "kind", "counter")

    def __init__(self, tag: int, target: int, kind: BranchKind) -> None:
        self.tag = tag
        self.target = target
        self.kind = kind
        self.counter = 2  # weakly taken: it was just taken

    def update_direction(self, taken: bool) -> None:
        if taken:
            if self.counter < 3:
                self.counter += 1
        elif self.counter > 0:
            self.counter -= 1

    @property
    def predict_taken(self) -> bool:
        return self.counter >= 2


class BranchTargetBuffer:
    """entries-total, assoc-way BTB indexed by instruction address."""

    def __init__(self, entries: int, assoc: int, name: str = "BTB") -> None:
        if entries % assoc:
            raise ValueError("entries must be divisible by assoc")
        self.num_sets = entries // assoc
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.assoc = assoc
        self.name = name
        # Hot-path event counters as plain ints; see the stats property.
        self.lookups = 0
        self.misses = 0
        self.allocations = 0
        self.evictions = 0
        self._sets: List[List[BTBEntry]] = [[] for _ in range(self.num_sets)]
        self._index_mask = self.num_sets - 1
        # A zero mask shifts by zero, so the unconditional expressions
        # in the hot paths cover the single-set degenerate case too.
        self._tag_shift = self._index_mask.bit_length()

    def _locate(self, pc: int) -> tuple[List[BTBEntry], int]:
        word = pc >> 2
        return self._sets[word & self._index_mask], word >> self._tag_shift

    def lookup(self, pc: int) -> Optional[BTBEntry]:
        """Probe; moves a hit to MRU.  Returns the entry or ``None``."""
        word = pc >> 2
        ways = self._sets[word & self._index_mask]
        tag = word >> self._tag_shift
        self.lookups += 1
        if ways and ways[0].tag == tag:  # MRU fast path
            return ways[0]
        for i, entry in enumerate(ways):
            if entry.tag == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return entry
        self.misses += 1
        return None

    @property
    def stats(self) -> CounterBag:
        """Counters in mergeable CounterBag form (built on demand)."""
        return CounterBag({
            "lookups": self.lookups,
            "misses": self.misses,
            "allocations": self.allocations,
            "evictions": self.evictions,
        })

    def update(self, pc: int, target: int, kind: BranchKind, taken: bool) -> None:
        """Commit-time update: allocate on taken, train direction bits."""
        word = pc >> 2
        ways = self._sets[word & self._index_mask]
        tag = word >> self._tag_shift
        for i, entry in enumerate(ways):
            if entry.tag == tag:
                entry.update_direction(taken)
                if taken:
                    entry.target = target
                    entry.kind = kind
                if i:
                    ways.insert(0, ways.pop(i))
                return
        if not taken:
            return  # never allocate on a not-taken branch
        ways.insert(0, BTBEntry(tag, target, kind))
        self.allocations += 1
        if len(ways) > self.assoc:
            ways.pop()
            self.evictions += 1
