"""Speculative / commit history registers with the paper's recovery rule.

The stream predictor (§3.2) "maintains two separate path history
registers: a lookup register which is updated immediately with
speculative information, and an update register which is updated at
commit time [...].  In the case of a misprediction, the contents of the
non-speculative register is copied to the speculative register".  The
same discipline is applied to the outcome-history registers of the
direction predictors, keeping recovery semantics identical across the
four front-ends.
"""

from __future__ import annotations

from typing import List, Sequence


class HistoryRegister:
    """A bounded global *outcome* shift register (speculative + commit)."""

    __slots__ = ("bits", "spec", "commit", "_mask")

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise ValueError("history width must be >= 1")
        self.bits = bits
        self._mask = (1 << bits) - 1
        self.spec = 0
        self.commit = 0

    def spec_push(self, outcome: bool) -> None:
        self.spec = ((self.spec << 1) | int(outcome)) & self._mask

    def commit_push(self, outcome: bool) -> None:
        self.commit = ((self.commit << 1) | int(outcome)) & self._mask

    def recover(self) -> None:
        """Misprediction recovery: speculative <- committed."""
        self.spec = self.commit

    def low_bits(self, n: int) -> int:
        return self.spec & ((1 << n) - 1)


class PathHistory:
    """A bounded *address* history (speculative + commit), oldest first."""

    __slots__ = ("depth", "spec", "commit")

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("path depth must be >= 1")
        self.depth = depth
        self.spec: List[int] = []
        self.commit: List[int] = []

    def spec_push(self, addr: int) -> None:
        self.spec.append(addr)
        if len(self.spec) > self.depth:
            del self.spec[0]

    def commit_push(self, addr: int) -> None:
        self.commit.append(addr)
        if len(self.commit) > self.depth:
            del self.commit[0]

    def recover(self) -> None:
        """Misprediction recovery: speculative <- committed."""
        self.spec = list(self.commit)

    def spec_view(self) -> Sequence[int]:
        return self.spec

    def commit_view(self) -> Sequence[int]:
        return self.commit
