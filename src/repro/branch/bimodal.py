"""Two-bit saturating counters and counter tables.

The building block of the 2bcgskew banks, the back-up direction bits in
the trace cache's BTB path, and the hysteresis counters of the stream
and trace predictors' replacement policy.
"""

from __future__ import annotations

from typing import List


class TwoBitCounter:
    """One 2-bit saturating counter (0..3; >=2 predicts taken)."""

    __slots__ = ("value",)

    def __init__(self, value: int = 1) -> None:
        if not 0 <= value <= 3:
            raise ValueError("2-bit counter value out of range")
        self.value = value

    @property
    def taken(self) -> bool:
        return self.value >= 2

    def update(self, taken: bool) -> None:
        if taken:
            if self.value < 3:
                self.value += 1
        elif self.value > 0:
            self.value -= 1


class CounterTable:
    """A direct-mapped table of 2-bit counters stored as a flat list.

    Counters are plain ints for speed; the table exposes index-level
    predict/update so callers can apply their own hashing.
    """

    __slots__ = ("size", "_counters", "_mask")

    def __init__(self, size: int, init: int = 1) -> None:
        if size < 1 or size & (size - 1):
            raise ValueError("table size must be a power of two")
        if not 0 <= init <= 3:
            raise ValueError("bad initial counter value")
        self.size = size
        self._mask = size - 1
        self._counters: List[int] = [init] * size

    def index_of(self, key: int) -> int:
        return key & self._mask

    def predict(self, index: int) -> bool:
        return self._counters[index & self._mask] >= 2

    def counter(self, index: int) -> int:
        return self._counters[index & self._mask]

    def update(self, index: int, taken: bool) -> None:
        i = index & self._mask
        value = self._counters[i]
        if taken:
            if value < 3:
                self._counters[i] = value + 1
        elif value > 0:
            self._counters[i] = value - 1

    def strengthen(self, index: int, taken: bool) -> None:
        """Reinforce only if the counter already agrees (partial update)."""
        i = index & self._mask
        value = self._counters[i]
        if taken and value >= 2 and value < 3:
            self._counters[i] = value + 1
        elif not taken and value <= 1 and value > 0:
            self._counters[i] = value - 1
