"""The 2bcgskew hybrid predictor of the Alpha EV8 (Seznec et al., 2002).

Four banks of 2-bit counters (Table 2: 4 x 32K entries, 15-bit history):

* **BIM** — a bimodal bank indexed by PC only;
* **G0** — e-gskew bank with a short slice of global history;
* **G1** — e-gskew bank with the full 15-bit global history;
* **META** — chooses between the bimodal prediction and the e-gskew
  majority vote of (BIM, G0, G1).

The *partial update* policy follows the EV8 paper: on a correct
prediction only the agreeing banks are strengthened (and META only when
the two predictions disagreed); on a misprediction META is steered
toward whichever side was right, and all three direction banks are
trained with the actual outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.branch.bimodal import CounterTable
from repro.common.hashing import fold_xor


@dataclass(frozen=True)
class GskewConfig:
    """Geometry of the 2bcgskew predictor."""

    bank_entries: int = 32 * 1024
    history_bits: int = 15
    short_history_bits: int = 7


#: Opaque per-prediction data carried to the commit-time update:
#: (bim_index, g0_index, g1_index, meta_index, pred_bim, pred_eskew)
PredictionInfo = Tuple[int, int, int, int, bool, bool]


class TwoBcGskew:
    """EV8's conditional branch direction predictor."""

    def __init__(self, config: GskewConfig | None = None) -> None:
        self.config = config or GskewConfig()
        entries = self.config.bank_entries
        self._bim = CounterTable(entries)
        self._g0 = CounterTable(entries)
        self._g1 = CounterTable(entries)
        self._meta = CounterTable(entries, init=2)  # slight e-gskew bias
        self._index_bits = entries.bit_length() - 1
        self._fold_limit = 1 << (4 * self._index_bits)
        # Direct references to the banks' counter lists: predict/update
        # run once per conditional branch and the CounterTable method
        # hops are measurable there.  Indices are already bank-masked.
        self._bim_c = self._bim._counters
        self._g0_c = self._g0._counters
        self._g1_c = self._g1._counters
        self._meta_c = self._meta._counters
        self._h0_mask = (1 << self.config.short_history_bits) - 1
        self._h1_mask = (1 << self.config.history_bits) - 1

    # ------------------------------------------------------------------
    def predict(self, pc: int, history: int) -> Tuple[bool, PredictionInfo]:
        """Predict the direction; returns (taken?, info-for-update).

        The four bank indices are computed inline (this runs once per
        fetched conditional): fold_xor is unrolled to four fold windows,
        identical to the loop for any operand below 2^(4*index_bits) —
        which covers every realistic program address — and each bank
        uses a distinct skewing function so one aliasing collision does
        not strike all banks at once.
        """
        word = pc >> 2
        bits = self._index_bits
        b2 = 2 * bits
        b3 = 3 * bits
        mask = (1 << bits) - 1
        limit = self._fold_limit
        v = word
        if v < limit:
            bim_i = (v ^ (v >> bits) ^ (v >> b2) ^ (v >> b3)) & mask
        else:  # pragma: no cover - beyond any simulated image
            bim_i = fold_xor(v, bits)
        v = word ^ ((history & self._h0_mask) << 5) ^ (word << 2)
        if v < limit:
            g0_i = (v ^ (v >> bits) ^ (v >> b2) ^ (v >> b3)) & mask
        else:  # pragma: no cover
            g0_i = fold_xor(v, bits)
        h1 = history & self._h1_mask
        v = word ^ (h1 << 3) ^ (word << 7)
        if v < limit:
            g1_i = (v ^ (v >> bits) ^ (v >> b2) ^ (v >> b3)) & mask
        else:  # pragma: no cover
            g1_i = fold_xor(v, bits)
        v = word ^ (h1 << 9) ^ (word << 4)
        if v < limit:
            meta_i = (v ^ (v >> bits) ^ (v >> b2) ^ (v >> b3)) & mask
        else:  # pragma: no cover
            meta_i = fold_xor(v, bits)

        p_bim = self._bim_c[bim_i] >= 2
        p_g0 = self._g0_c[g0_i] >= 2
        p_g1 = self._g1_c[g1_i] >= 2
        p_eskew = (p_bim + p_g0 + p_g1) >= 2
        prediction = p_eskew if self._meta_c[meta_i] >= 2 else p_bim
        return prediction, (bim_i, g0_i, g1_i, meta_i, p_bim, p_eskew)

    def update(self, info: PredictionInfo, taken: bool) -> None:
        """Commit-time update with the EV8 partial-update policy."""
        bim_i, g0_i, g1_i, meta_i, p_bim, p_eskew = info
        use_eskew = self._meta_c[meta_i] >= 2
        prediction = p_eskew if use_eskew else p_bim

        if prediction == taken:
            if p_bim != p_eskew:
                # The chooser picked the right side: reinforce it.
                self._meta.update(meta_i, use_eskew)
            # Strengthen only the agreeing banks.
            if p_bim == taken:
                self._bim.strengthen(bim_i, taken)
            if use_eskew or p_bim != taken:
                if (self._g0_c[g0_i] >= 2) == taken:
                    self._g0.strengthen(g0_i, taken)
                if (self._g1_c[g1_i] >= 2) == taken:
                    self._g1.strengthen(g1_i, taken)
            return

        # Misprediction: steer the chooser toward whichever was correct,
        # then train all direction banks with the actual outcome.
        if p_bim != p_eskew:
            self._meta.update(meta_i, p_eskew == taken)
        self._bim.update(bim_i, taken)
        self._g0.update(g0_i, taken)
        self._g1.update(g1_i, taken)
