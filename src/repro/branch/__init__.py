"""Branch prediction substrate shared by the fetch architectures."""

from repro.branch.history import HistoryRegister, PathHistory
from repro.branch.bimodal import TwoBitCounter, CounterTable
from repro.branch.btb import BranchTargetBuffer, BTBEntry
from repro.branch.ras import ReturnAddressStack
from repro.branch.twobcgskew import TwoBcGskew
from repro.branch.perceptron import PerceptronPredictor

__all__ = [
    "HistoryRegister",
    "PathHistory",
    "TwoBitCounter",
    "CounterTable",
    "BranchTargetBuffer",
    "BTBEntry",
    "ReturnAddressStack",
    "TwoBcGskew",
    "PerceptronPredictor",
]
