"""The perceptron branch predictor (Jimenez & Lin, HPCA 2001).

Table 2 pairs the FTB front-end with a perceptron predictor: 512
perceptrons, 40 bits of global history, and a 4096-entry x 14-bit local
history table.  Each perceptron holds one weight per history bit (global
+ local) plus a bias weight; the prediction is the sign of the dot
product between the weights and the +1/-1 encoded history.

Training (on mispredictions, or whenever the output magnitude is below
the threshold) adds the correlation of each history bit with the actual
outcome to the corresponding weight, saturating at 8-bit range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class PerceptronConfig:
    num_perceptrons: int = 512
    global_history_bits: int = 40
    local_table_entries: int = 4096
    local_history_bits: int = 14
    weight_min: int = -128
    weight_max: int = 127

    @property
    def num_inputs(self) -> int:
        return self.global_history_bits + self.local_history_bits

    @property
    def threshold(self) -> int:
        # Jimenez & Lin's empirically optimal training threshold.
        return int(1.93 * self.num_inputs + 14)


#: (perceptron index, local table index, input bits, output) for update.
PredictionInfo = Tuple[int, int, int, int]


class PerceptronPredictor:
    """A global+local perceptron direction predictor."""

    def __init__(self, config: PerceptronConfig | None = None) -> None:
        self.config = config or PerceptronConfig()
        cfg = self.config
        if cfg.num_perceptrons & (cfg.num_perceptrons - 1):
            raise ValueError("num_perceptrons must be a power of two")
        if cfg.local_table_entries & (cfg.local_table_entries - 1):
            raise ValueError("local_table_entries must be a power of two")
        n = cfg.num_inputs
        self._weights: List[List[int]] = [
            [0] * (n + 1) for _ in range(cfg.num_perceptrons)
        ]
        self._local: List[int] = [0] * cfg.local_table_entries
        self._local_mask = (1 << cfg.local_history_bits) - 1
        # Sum of the non-bias weights per perceptron, maintained by
        # update(): lets predict() visit only the *set* history bits
        # (y = bias - wsum + 2 * sum of weights at set bits).
        self._wsum: List[int] = [0] * cfg.num_perceptrons
        # Memoized dot products: the output for a given input vector is
        # fixed until the perceptron trains, so (perceptron, training
        # epoch, inputs) -> y is exact.  Loopy codes re-see the same
        # history vectors constantly between trainings.
        self._epoch: List[int] = [0] * cfg.num_perceptrons
        self._y_memo: dict = {}
        # Config-derived constants, hoisted off the per-update path
        # (``threshold`` is a computed property — float math per call).
        self._threshold = cfg.threshold
        self._n_inputs = cfg.num_inputs
        self._wmin = cfg.weight_min
        self._wmax = cfg.weight_max
        self._pidx_mask = cfg.num_perceptrons - 1
        self._lidx_mask = cfg.local_table_entries - 1
        self._ghist_mask = (1 << cfg.global_history_bits) - 1
        self._lh_bits = cfg.local_history_bits

    # ------------------------------------------------------------------
    def _inputs(self, pc: int, global_history: int) -> Tuple[int, int, int]:
        cfg = self.config
        pidx = (pc >> 2) & (cfg.num_perceptrons - 1)
        lidx = (pc >> 2) & (cfg.local_table_entries - 1)
        ghist = global_history & ((1 << cfg.global_history_bits) - 1)
        bits = (ghist << cfg.local_history_bits) | self._local[lidx]
        return pidx, lidx, bits

    def predict(self, pc: int, global_history: int) -> Tuple[bool, PredictionInfo]:
        # _inputs(), inlined: this runs once per fetched conditional.
        word = pc >> 2
        pidx = word & self._pidx_mask
        lidx = word & self._lidx_mask
        bits = (((global_history & self._ghist_mask) << self._lh_bits)
                | self._local[lidx])
        memo = self._y_memo
        key = (pidx, self._epoch[pidx], bits)
        y = memo.get(key)
        if y is None:
            weights = self._weights[pidx]
            # Dot product over +1/-1 inputs, visiting only the set bits:
            # y = bias + sum(w_i for set i) - sum(w_i for clear i)
            #   = bias - wsum + 2 * sum(w_i for set i).
            s = 0
            x = bits
            i = 1
            while x:
                if x & 1:
                    s += weights[i]
                x >>= 1
                i += 1
            y = weights[0] - self._wsum[pidx] + 2 * s
            if len(memo) > (1 << 16):  # deterministic bound
                memo.clear()
            memo[key] = y
        return y >= 0, (pidx, lidx, bits, y)

    # ------------------------------------------------------------------
    def update(self, info: PredictionInfo, taken: bool) -> None:
        """Train at commit; also shifts the branch's local history."""
        pidx, lidx, bits, y = info
        predicted = y >= 0
        if predicted != taken or abs(y) <= self._threshold:
            weights = self._weights[pidx]
            wmin = self._wmin
            wmax = self._wmax
            t = 1 if taken else -1
            w = weights[0] + t
            weights[0] = wmax if w > wmax else (wmin if w < wmin else w)
            x = bits
            s = 0
            for i in range(1, self._n_inputs + 1):
                w = weights[i] + (t if x & 1 else -t)
                w = wmax if w > wmax else (wmin if w < wmin else w)
                weights[i] = w
                s += w
                x >>= 1
            # The loop above visited every non-bias weight, so the
            # cached sum (see predict()) falls out of it for free;
            # advance the training epoch so memoized outputs expire.
            self._wsum[pidx] = s
            self._epoch[pidx] += 1
        # Local history is maintained non-speculatively (commit order).
        self._local[lidx] = ((self._local[lidx] << 1) | int(taken)) & self._local_mask
