"""Regeneration of the paper's figures from simulation matrices.

* **Figure 8** (a/b/c): harmonic-mean IPC over the SPECint suite for the
  four fetch architectures at pipe widths 2, 4 and 8, baseline and
  optimized layouts.
* **Figure 9**: per-benchmark IPC for the 8-wide processor with
  optimized code layouts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.stats import harmonic_mean
from repro.experiments.configs import ARCH_LABELS, ARCHITECTURES
from repro.experiments.reporting import ascii_bars, format_table
from repro.experiments.runner import RunMatrixResult


def figure8_data(
    matrix: RunMatrixResult,
    benchmarks: Sequence[str],
    widths: Sequence[int] = (2, 4, 8),
) -> Dict[int, Dict[str, Dict[bool, float]]]:
    """IPC harmonic means: width -> arch -> {False: base, True: opt}."""
    data: Dict[int, Dict[str, Dict[bool, float]]] = {}
    for width in widths:
        data[width] = {}
        for arch in ARCHITECTURES:
            per_layout = {}
            for optimized in (False, True):
                ipcs = [
                    matrix.get(arch, b, width, optimized).ipc
                    for b in benchmarks
                ]
                per_layout[optimized] = harmonic_mean(ipcs)
            data[width][arch] = per_layout
    return data


def figure8_text(
    matrix: RunMatrixResult,
    benchmarks: Sequence[str],
    widths: Sequence[int] = (2, 4, 8),
) -> str:
    """Render Figure 8 as one table per pipeline width."""
    data = figure8_data(matrix, benchmarks, widths)
    sections: List[str] = []
    for width in widths:
        rows = []
        for arch in ARCHITECTURES:
            base = data[width][arch][False]
            opt = data[width][arch][True]
            rows.append(
                [ARCH_LABELS[arch], base, opt, opt / base]
            )
        sections.append(
            format_table(
                ["fetch engine", "IPC (base)", "IPC (optimized)", "opt/base"],
                rows,
                title=f"Figure 8: {width}-wide processor (hmean of "
                      f"{len(benchmarks)} benchmarks)",
            )
        )
    return "\n\n".join(sections)


def figure9_data(
    matrix: RunMatrixResult, benchmarks: Sequence[str], width: int = 8
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark IPC (optimized layout): benchmark -> arch -> IPC."""
    out: Dict[str, Dict[str, float]] = {}
    for benchmark in benchmarks:
        out[benchmark] = {
            arch: matrix.get(arch, benchmark, width, True).ipc
            for arch in ARCHITECTURES
        }
    out["hmean"] = {
        arch: harmonic_mean([out[b][arch] for b in benchmarks])
        for arch in ARCHITECTURES
    }
    return out


def figure9_text(
    matrix: RunMatrixResult, benchmarks: Sequence[str], width: int = 8
) -> str:
    data = figure9_data(matrix, benchmarks, width)
    rows = []
    order = ["hmean"] + list(benchmarks)
    for benchmark in order:
        per_arch = data[benchmark]
        best = max(per_arch, key=per_arch.get)
        rows.append(
            [benchmark]
            + [per_arch[a] for a in ARCHITECTURES]
            + [ARCH_LABELS[best]]
        )
    return format_table(
        ["benchmark"] + [ARCH_LABELS[a] for a in ARCHITECTURES] + ["best"],
        rows,
        title=f"Figure 9: per-benchmark IPC, {width}-wide, optimized layout",
    )


def figure8_bars(
    matrix: RunMatrixResult,
    benchmarks: Sequence[str],
    width: int,
    optimized: bool,
) -> str:
    data = figure8_data(matrix, benchmarks, widths=(width,))
    values = {
        ARCH_LABELS[arch]: data[width][arch][optimized]
        for arch in ARCHITECTURES
    }
    layout = "optimized" if optimized else "base"
    header = f"IPC, {width}-wide, {layout} layout"
    return header + "\n" + ascii_bars(values)
