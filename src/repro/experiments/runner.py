"""Run matrices of simulations and collect results.

The harness amortizes program generation: each (benchmark, layout) image
is linked once and shared across architectures and widths, exactly like
the paper simulating the same binaries on every fetch engine.

``run_matrix`` can shard the cross product across worker processes
(``jobs > 1``).  Work is grouped by (benchmark, layout) so each worker
links its program image exactly once — the same amortization the serial
path gets from :class:`ProgramCache`.  Every simulation is fully
deterministic given its :class:`RunSpec`, so the parallel path produces
bit-identical :class:`SimulationResult`\\ s to the serial path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.results import SimulationResult
from repro.experiments.configs import ARCHITECTURES, build_processor
from repro.isa.program import Program
from repro.isa.workloads import prepare_program, ref_trace_seed


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment matrix."""

    arch: str
    benchmark: str
    width: int
    optimized: bool


@dataclass
class RunMatrixResult:
    """All results of a matrix run, with lookup helpers."""

    instructions: int
    scale: float
    results: Dict[RunSpec, SimulationResult] = field(default_factory=dict)

    def get(
        self, arch: str, benchmark: str, width: int, optimized: bool
    ) -> SimulationResult:
        return self.results[RunSpec(arch, benchmark, width, optimized)]

    def select(
        self,
        arch: Optional[str] = None,
        benchmark: Optional[str] = None,
        width: Optional[int] = None,
        optimized: Optional[bool] = None,
    ) -> List[SimulationResult]:
        out = []
        for spec, result in self.results.items():
            if arch is not None and spec.arch != arch:
                continue
            if benchmark is not None and spec.benchmark != benchmark:
                continue
            if width is not None and spec.width != width:
                continue
            if optimized is not None and spec.optimized != optimized:
                continue
            out.append(result)
        return out


class ProgramCache:
    """Links each (benchmark, layout, scale) image at most once."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, bool, float], Program] = {}

    def get(self, benchmark: str, optimized: bool, scale: float) -> Program:
        key = (benchmark, optimized, scale)
        program = self._cache.get(key)
        if program is None:
            program = prepare_program(benchmark, optimized=optimized, scale=scale)
            self._cache[key] = program
        return program


def _run_cell(
    program: Program,
    benchmark: str,
    optimized: bool,
    width: int,
    arch: str,
    instructions: int,
    warmup: int,
) -> SimulationResult:
    """Simulate one matrix cell on an already-linked image."""
    processor = build_processor(
        arch, program, width,
        benchmark=benchmark, optimized=optimized,
        trace_seed=ref_trace_seed(benchmark),
    )
    return processor.run(instructions, warmup=warmup)


def _run_group(
    benchmark: str,
    optimized: bool,
    widths: Sequence[int],
    archs: Sequence[str],
    instructions: int,
    warmup: int,
    scale: float,
) -> List[Tuple[RunSpec, SimulationResult]]:
    """Worker entry point: all cells of one (benchmark, layout) image.

    Links the image once, then runs every (width, arch) cell on it —
    mirroring the serial path's iteration order within the group.
    """
    program = prepare_program(benchmark, optimized=optimized, scale=scale)
    out: List[Tuple[RunSpec, SimulationResult]] = []
    for width in widths:
        for arch in archs:
            result = _run_cell(program, benchmark, optimized, width, arch,
                               instructions, warmup)
            out.append((RunSpec(arch, benchmark, width, optimized), result))
    return out


def run_matrix(
    benchmarks: Sequence[str],
    widths: Sequence[int] = (8,),
    archs: Sequence[str] = ARCHITECTURES,
    layouts: Sequence[bool] = (False, True),
    instructions: int = 100_000,
    warmup: Optional[int] = None,
    scale: float = 1.0,
    program_cache: Optional[ProgramCache] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
    jobs: int = 1,
) -> RunMatrixResult:
    """Simulate the full cross product and return all results.

    ``warmup`` defaults to a third of the instruction budget — the
    predictors and caches train during it, and it is excluded from the
    reported metrics (the paper's fast-forward equivalent).

    ``jobs > 1`` shards the (benchmark, layout) groups across a process
    pool.  ``jobs`` is a cap: the effective worker count is
    ``min(jobs, cpu_count, groups)`` — oversubscribing a core only adds
    scheduler thrash, so a 1-CPU host runs the pool with one worker.
    Results are bit-identical to the serial path (every cell is an
    isolated deterministic simulation); only wall-clock changes.
    ``progress`` is still invoked in the main process, per result, in
    the same deterministic order as the serial path.

    An explicitly provided ``program_cache`` forces the serial path:
    the caller asked for shared already-linked images, which worker
    processes cannot see (they relink per group).
    """
    if warmup is None:
        warmup = instructions // 3
    out = RunMatrixResult(instructions=instructions, scale=scale)

    groups = [(benchmark, optimized)
              for benchmark in benchmarks for optimized in layouts]

    if jobs > 1 and len(groups) > 1 and program_cache is None:
        max_workers = max(1, min(jobs, len(groups), os.cpu_count() or 1))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(_run_group, benchmark, optimized, tuple(widths),
                            tuple(archs), instructions, warmup, scale)
                for benchmark, optimized in groups
            ]
            # Collect in submission order so results and progress
            # callbacks land exactly like the serial path.
            for future in futures:
                for spec, result in future.result():
                    out.results[spec] = result
                    if progress is not None:
                        progress(result)
        return out

    cache = program_cache or ProgramCache()
    for benchmark, optimized in groups:
        program = cache.get(benchmark, optimized, scale)
        for width in widths:
            for arch in archs:
                result = _run_cell(program, benchmark, optimized, width,
                                   arch, instructions, warmup)
                out.results[RunSpec(arch, benchmark, width, optimized)] = result
                if progress is not None:
                    progress(result)
    return out
