"""Run matrices of simulations and collect results.

The harness amortizes program generation: each (benchmark, layout) image
is linked once and shared across architectures and widths, exactly like
the paper simulating the same binaries on every fetch engine.  The
memoized trace record on each image does the same for the dynamic trace.

``run_matrix`` can shard the cross product across worker processes
(``jobs > 1``) at **cell** granularity: each (arch, benchmark, width,
layout) cell is one unit of work pulled from the pool's shared queue,
which load-balances far better than group sharding when the matrix is
uneven (one benchmark, many widths/architectures).  Program images are
amortized fork-server style: the parent pre-links every (benchmark,
layout) image into a module-level cache *before* the pool starts, so on
fork-capable platforms every worker inherits the warm cache and never
links at all; on spawn platforms each worker lazily links each image at
most once.  Every simulation is fully deterministic given its
:class:`RunSpec`, so the parallel path produces bit-identical
:class:`SimulationResult`\\ s to the serial path, in the same order.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.results import SimulationResult
from repro.experiments.configs import ARCHITECTURES, build_processor
from repro.isa.program import Program
from repro.isa.workloads import prepare_program, ref_trace_seed


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment matrix."""

    arch: str
    benchmark: str
    width: int
    optimized: bool


@dataclass
class RunMatrixResult:
    """All results of a matrix run, with lookup helpers."""

    instructions: int
    scale: float
    results: Dict[RunSpec, SimulationResult] = field(default_factory=dict)
    #: Per-axis indexes over ``results`` (value -> specs in insertion
    #: order), maintained by :meth:`add` and rebuilt lazily when
    #: ``results`` was populated directly.
    _axes: Dict[str, Dict[object, List[RunSpec]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _indexed: int = field(default=0, repr=False, compare=False)

    def add(self, spec: RunSpec, result: SimulationResult) -> None:
        """Insert one result, maintaining the per-axis indexes."""
        self.results[spec] = result
        if self._indexed == len(self.results) - 1:
            self._index_one(spec)
            self._indexed += 1

    def _index_one(self, spec: RunSpec) -> None:
        axes = self._axes
        if not axes:
            axes.update(arch={}, benchmark={}, width={}, optimized={})
        for axis in ("arch", "benchmark", "width", "optimized"):
            axes[axis].setdefault(getattr(spec, axis), []).append(spec)

    def _reindex(self) -> None:
        self._axes.clear()
        for spec in self.results:
            self._index_one(spec)
        self._indexed = len(self.results)

    def get(
        self, arch: str, benchmark: str, width: int, optimized: bool
    ) -> SimulationResult:
        return self.results[RunSpec(arch, benchmark, width, optimized)]

    def select(
        self,
        arch: Optional[str] = None,
        benchmark: Optional[str] = None,
        width: Optional[int] = None,
        optimized: Optional[bool] = None,
    ) -> List[SimulationResult]:
        """All results matching the given axes, in insertion order.

        Served from per-axis indexes: the narrowest matching axis list
        is scanned and filtered on the remaining criteria, so figure and
        table generation is O(matching cells), not O(all cells) per
        query.
        """
        if self._indexed != len(self.results):
            self._reindex()
        criteria = [
            (axis, value)
            for axis, value in (
                ("arch", arch), ("benchmark", benchmark),
                ("width", width), ("optimized", optimized),
            )
            if value is not None
        ]
        if not criteria:
            return list(self.results.values())
        candidate_lists = [
            self._axes[axis].get(value, []) for axis, value in criteria
        ]
        smallest = min(candidate_lists, key=len)
        results = self.results
        out = []
        for spec in smallest:
            for axis, value in criteria:
                if getattr(spec, axis) != value:
                    break
            else:
                out.append(results[spec])
        return out


class ProgramCache:
    """Links each (benchmark, layout, scale) image at most once."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, bool, float], Program] = {}

    def get(self, benchmark: str, optimized: bool, scale: float) -> Program:
        key = (benchmark, optimized, scale)
        program = self._cache.get(key)
        if program is None:
            program = prepare_program(benchmark, optimized=optimized, scale=scale)
            self._cache[key] = program
        return program


def _run_cell(
    program: Program,
    benchmark: str,
    optimized: bool,
    width: int,
    arch: str,
    instructions: int,
    warmup: int,
) -> SimulationResult:
    """Simulate one matrix cell on an already-linked image."""
    processor = build_processor(
        arch, program, width,
        benchmark=benchmark, optimized=optimized,
        trace_seed=ref_trace_seed(benchmark),
    )
    return processor.run(instructions, warmup=warmup)


#: Fork-server image cache: primed in the parent before the pool forks
#: (so workers inherit every linked image), or filled lazily per worker
#: under spawn.  Module-level on purpose — it must survive across the
#: tasks a worker executes, and repeated ``run_matrix`` calls in one
#: process (a long-lived experiment server, the perf harness) reuse the
#: linked images and their memoized trace records instead of relinking.
_WORKER_CACHE: Optional[ProgramCache] = None


def _default_cache() -> ProgramCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ProgramCache()
    return _WORKER_CACHE


def _worker_init() -> None:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ProgramCache()


def _run_cell_worker(
    spec: RunSpec, instructions: int, warmup: int, scale: float
) -> SimulationResult:
    """Pool entry point: one (arch, benchmark, width, layout) cell."""
    global _WORKER_CACHE
    if _WORKER_CACHE is None:  # pragma: no cover - initializer always ran
        _WORKER_CACHE = ProgramCache()
    program = _WORKER_CACHE.get(spec.benchmark, spec.optimized, scale)
    return _run_cell(program, spec.benchmark, spec.optimized, spec.width,
                     spec.arch, instructions, warmup)


def run_matrix(
    benchmarks: Sequence[str],
    widths: Sequence[int] = (8,),
    archs: Sequence[str] = ARCHITECTURES,
    layouts: Sequence[bool] = (False, True),
    instructions: int = 100_000,
    warmup: Optional[int] = None,
    scale: float = 1.0,
    program_cache: Optional[ProgramCache] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
    jobs: int = 1,
) -> RunMatrixResult:
    """Simulate the full cross product and return all results.

    ``warmup`` defaults to a third of the instruction budget — the
    predictors and caches train during it, and it is excluded from the
    reported metrics (the paper's fast-forward equivalent).

    ``jobs > 1`` shards individual cells across a process pool (see the
    module docstring for the fork-server image amortization).  ``jobs``
    is a cap: the effective worker count is ``min(jobs, cpu_count,
    cells)`` — oversubscribing a core only adds scheduler thrash, so a
    1-CPU host runs the pool with one worker.  Results are bit-identical
    to the serial path (every cell is an isolated deterministic
    simulation); only wall-clock changes.  ``progress`` is still invoked
    in the main process, per result, in the same deterministic order as
    the serial path.

    An explicitly provided ``program_cache`` forces the serial path:
    the caller asked for shared already-linked images, which worker
    processes cannot see.
    """
    if warmup is None:
        warmup = instructions // 3
    out = RunMatrixResult(instructions=instructions, scale=scale)

    specs = [
        RunSpec(arch, benchmark, width, optimized)
        for benchmark in benchmarks
        for optimized in layouts
        for width in widths
        for arch in archs
    ]

    if jobs > 1 and len(specs) > 1 and program_cache is None:
        max_workers = max(1, min(jobs, len(specs), os.cpu_count() or 1))
        if multiprocessing.get_start_method() == "fork":
            # Fork server: link every image once in the parent; forked
            # workers inherit the warm cache and pull cells from the
            # shared queue without ever linking.
            cache = _default_cache()
            for benchmark in benchmarks:
                for optimized in layouts:
                    cache.get(benchmark, optimized, scale)
        with ProcessPoolExecutor(
            max_workers=max_workers, initializer=_worker_init
        ) as pool:
            futures = [
                pool.submit(_run_cell_worker, spec, instructions, warmup,
                            scale)
                for spec in specs
            ]
            # Collect in submission order so results and progress
            # callbacks land exactly like the serial path.
            for spec, future in zip(specs, futures):
                result = future.result()
                out.add(spec, result)
                if progress is not None:
                    progress(result)
        return out

    cache = program_cache or _default_cache()
    for spec in specs:
        program = cache.get(spec.benchmark, spec.optimized, scale)
        result = _run_cell(program, spec.benchmark, spec.optimized,
                           spec.width, spec.arch, instructions, warmup)
        out.add(spec, result)
        if progress is not None:
            progress(result)
    return out
