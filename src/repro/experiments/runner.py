"""Run matrices of simulations and collect results.

The harness amortizes program generation: each (benchmark, layout) image
is linked once and shared across architectures and widths, exactly like
the paper simulating the same binaries on every fetch engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.results import SimulationResult
from repro.experiments.configs import ARCHITECTURES, build_processor
from repro.isa.program import Program
from repro.isa.workloads import prepare_program, ref_trace_seed


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment matrix."""

    arch: str
    benchmark: str
    width: int
    optimized: bool


@dataclass
class RunMatrixResult:
    """All results of a matrix run, with lookup helpers."""

    instructions: int
    scale: float
    results: Dict[RunSpec, SimulationResult] = field(default_factory=dict)

    def get(
        self, arch: str, benchmark: str, width: int, optimized: bool
    ) -> SimulationResult:
        return self.results[RunSpec(arch, benchmark, width, optimized)]

    def select(
        self,
        arch: Optional[str] = None,
        benchmark: Optional[str] = None,
        width: Optional[int] = None,
        optimized: Optional[bool] = None,
    ) -> List[SimulationResult]:
        out = []
        for spec, result in self.results.items():
            if arch is not None and spec.arch != arch:
                continue
            if benchmark is not None and spec.benchmark != benchmark:
                continue
            if width is not None and spec.width != width:
                continue
            if optimized is not None and spec.optimized != optimized:
                continue
            out.append(result)
        return out


class ProgramCache:
    """Links each (benchmark, layout, scale) image at most once."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, bool, float], Program] = {}

    def get(self, benchmark: str, optimized: bool, scale: float) -> Program:
        key = (benchmark, optimized, scale)
        program = self._cache.get(key)
        if program is None:
            program = prepare_program(benchmark, optimized=optimized, scale=scale)
            self._cache[key] = program
        return program


def run_matrix(
    benchmarks: Sequence[str],
    widths: Sequence[int] = (8,),
    archs: Sequence[str] = ARCHITECTURES,
    layouts: Sequence[bool] = (False, True),
    instructions: int = 100_000,
    warmup: Optional[int] = None,
    scale: float = 1.0,
    program_cache: Optional[ProgramCache] = None,
    progress: Optional[callable] = None,
) -> RunMatrixResult:
    """Simulate the full cross product and return all results.

    ``warmup`` defaults to a third of the instruction budget — the
    predictors and caches train during it, and it is excluded from the
    reported metrics (the paper's fast-forward equivalent).
    """
    if warmup is None:
        warmup = instructions // 3
    cache = program_cache or ProgramCache()
    out = RunMatrixResult(instructions=instructions, scale=scale)
    for benchmark in benchmarks:
        for optimized in layouts:
            program = cache.get(benchmark, optimized, scale)
            for width in widths:
                for arch in archs:
                    processor = build_processor(
                        arch, program, width,
                        benchmark=benchmark, optimized=optimized,
                        trace_seed=ref_trace_seed(benchmark),
                    )
                    result = processor.run(instructions, warmup=warmup)
                    out.results[RunSpec(arch, benchmark, width, optimized)] = result
                    if progress is not None:
                        progress(result)
    return out
