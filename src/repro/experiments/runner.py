"""Run matrices of simulations and collect results.

The harness amortizes program generation: each (benchmark, layout) image
is linked once and shared across architectures and widths, exactly like
the paper simulating the same binaries on every fetch engine.  The
memoized trace record on each image does the same for the dynamic trace.

``run_matrix`` can shard the cross product across worker processes
(``jobs > 1``) at **cell** granularity: each (arch, benchmark, width,
layout) cell is one unit of work pulled from the pool's shared queue,
which load-balances far better than group sharding when the matrix is
uneven (one benchmark, many widths/architectures).  Program images are
amortized fork-server style: the parent pre-links every (benchmark,
layout) image into a module-level cache *before* the pool starts, so on
fork-capable platforms every worker inherits the warm cache and never
links at all; on spawn platforms each worker lazily links each image at
most once.  Every simulation is fully deterministic given its
:class:`RunSpec`, so the parallel path produces bit-identical
:class:`SimulationResult`\\ s to the serial path, in the same order.

Dispatch goes through the fault-tolerant pools in :mod:`repro.exec`
(:class:`~repro.exec.pool.SerialPool` /
:class:`~repro.exec.pool.ForkServerPool`): worker crashes lose only the
cells that worker held, failing cells retry under the configured
:class:`~repro.exec.policy.FaultPolicy` (accel cells fall back to the
interpreter before giving up), and a sweep that still cannot finish
raises :class:`~repro.exec.policy.SweepError` naming the failed cells
*after* everything else settled and persisted.

``store=`` extends the amortization *across processes and runs*: cells
whose result fingerprint resolves in the on-disk artifact store (see
:mod:`repro.store`) are served from it, only misses are simulated, and
fresh results / images / traces are written back.  A warm run returns a
:class:`RunMatrixResult` bit-identical to a cold one — the store is a
shortcut, never an approximation.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, \
    Tuple, Union

from repro import obs
from repro.accel import resolve_engine_mode
from repro.common.params import default_machine
from repro.common.warnonce import warn_once
from repro.core.results import SimulationResult
from repro.exec.journal import SweepJournal, sweep_fingerprint
from repro.exec.policy import FaultPolicy, SweepError
from repro.exec.pool import ForkServerPool, Job, Pool, SerialPool
from repro.experiments.configs import ARCHITECTURES, build_processor
from repro.isa.program import Program
from repro.isa.workloads import prepare_program, ref_trace_seed
from repro.store.cache import ArtifactCache, as_artifact_cache
from repro.store.fingerprint import program_fingerprint, result_fingerprint
from repro.store.store import ArtifactStore


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment matrix."""

    arch: str
    benchmark: str
    width: int
    optimized: bool


@dataclass
class RunMatrixResult:
    """All results of a matrix run, with lookup helpers."""

    instructions: int
    scale: float
    results: Dict[RunSpec, SimulationResult] = field(default_factory=dict)
    #: Per-axis indexes over ``results`` (value -> specs in insertion
    #: order), maintained by :meth:`add` and rebuilt lazily when
    #: ``results`` was populated directly.
    _axes: Dict[str, Dict[object, List[RunSpec]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _indexed: int = field(default=0, repr=False, compare=False)

    def add(self, spec: RunSpec, result: SimulationResult) -> None:
        """Insert one result, maintaining the per-axis indexes."""
        self.results[spec] = result
        if self._indexed == len(self.results) - 1:
            self._index_one(spec)
            self._indexed += 1

    def _index_one(self, spec: RunSpec) -> None:
        axes = self._axes
        if not axes:
            axes.update(arch={}, benchmark={}, width={}, optimized={})
        for axis in ("arch", "benchmark", "width", "optimized"):
            axes[axis].setdefault(getattr(spec, axis), []).append(spec)

    def _reindex(self) -> None:
        self._axes.clear()
        for spec in self.results:
            self._index_one(spec)
        self._indexed = len(self.results)

    def get(
        self, arch: str, benchmark: str, width: int, optimized: bool
    ) -> SimulationResult:
        return self.results[RunSpec(arch, benchmark, width, optimized)]

    def select(
        self,
        arch: Optional[str] = None,
        benchmark: Optional[str] = None,
        width: Optional[int] = None,
        optimized: Optional[bool] = None,
    ) -> List[SimulationResult]:
        """All results matching the given axes, in insertion order.

        Served from per-axis indexes: the narrowest matching axis list
        is scanned and filtered on the remaining criteria, so figure and
        table generation is O(matching cells), not O(all cells) per
        query.
        """
        if self._indexed != len(self.results):
            self._reindex()
        criteria = [
            (axis, value)
            for axis, value in (
                ("arch", arch), ("benchmark", benchmark),
                ("width", width), ("optimized", optimized),
            )
            if value is not None
        ]
        if not criteria:
            return list(self.results.values())
        candidate_lists = [
            self._axes[axis].get(value, []) for axis, value in criteria
        ]
        smallest = min(candidate_lists, key=len)
        results = self.results
        out = []
        for spec in smallest:
            for axis, value in criteria:
                if getattr(spec, axis) != value:
                    break
            else:
                out.append(results[spec])
        return out


class ProgramCache:
    """Links each distinct program image at most once.

    Keyed on the **full workload fingerprint** — every input
    :func:`~repro.isa.workloads.prepare_program` consumes (the complete
    spec with its generator seed and ILP profile, scale, layout, base
    address) plus the code version — not on the historical
    ``(benchmark, optimized, scale)`` triple, so spec-bearing callers
    can never alias two distinct programs that share a benchmark name.

    When constructed with an :class:`~repro.store.cache.ArtifactCache`,
    a miss consults the on-disk store before linking from scratch (and
    populates it), which is how spawn-platform pool workers and warm
    CLI re-runs skip program generation entirely.
    """

    def __init__(self, artifacts: Optional[ArtifactCache] = None) -> None:
        self._cache: Dict[str, Program] = {}
        self.artifacts = artifacts

    def get(
        self,
        benchmark: str,
        optimized: bool,
        scale: float,
        key: Optional[str] = None,
        artifacts: Optional[ArtifactCache] = None,
    ) -> Program:
        """The image for a workload, via the store when one is bound.

        ``key`` is the workload's program fingerprint when the caller
        already computed it.  ``artifacts`` overrides the cache's own
        store binding for this lookup — the parent ``run_matrix`` uses
        a per-call store without attaching it to the shared
        module-level cache.  With a store, a *hit* still backfills: an
        already-linked image may pick up a stored trace, and the store
        may still need the image (it was linked before this run had a
        store).
        """
        if key is None:
            key = program_fingerprint(benchmark, optimized, scale)
        if artifacts is None:
            artifacts = self.artifacts
        program = self._cache.get(key)
        if program is None:
            if artifacts is not None:
                program = artifacts.program(
                    benchmark, optimized, scale, program_fp=key
                )
            else:
                program = prepare_program(
                    benchmark, optimized=optimized, scale=scale
                )
            self._cache[key] = program
        elif artifacts is not None:
            artifacts.load_trace(program, key, ref_trace_seed(benchmark))
            artifacts.ensure_program(program, key, benchmark, optimized,
                                     scale)
        return program


def matrix_specs(
    benchmarks: Sequence[str],
    widths: Sequence[int],
    archs: Sequence[str],
    layouts: Sequence[bool],
) -> List[RunSpec]:
    """The deterministic cell enumeration of one matrix cross product.

    This order *is* the contract: results, ``progress`` callbacks and
    the serve protocol's cell lists all stream in it, so the serial
    path, the pool path and a daemon answer are comparable
    element-wise.
    """
    return [
        RunSpec(arch, benchmark, width, optimized)
        for benchmark in benchmarks
        for optimized in layouts
        for width in widths
        for arch in archs
    ]


def program_fingerprints(
    specs: Sequence[RunSpec], scale: float
) -> Dict[Tuple[str, bool], str]:
    """Program fingerprint per distinct (benchmark, layout) image."""
    return {
        (spec.benchmark, spec.optimized):
            program_fingerprint(spec.benchmark, spec.optimized, scale)
        for spec in specs
    }


def cell_fingerprints(
    specs: Sequence[RunSpec],
    instructions: int,
    warmup: int,
    scale: float,
    program_fps: Optional[Dict[Tuple[str, bool], str]] = None,
) -> Dict[RunSpec, str]:
    """Result fingerprint per cell — the identity the store, the sweep
    journal and the serve daemon's coalescing all key on."""
    if program_fps is None:
        program_fps = program_fingerprints(specs, scale)
    machines = {
        width: default_machine(width).key_payload()
        for width in {spec.width for spec in specs}
    }
    return {
        spec: result_fingerprint(
            program_fps[(spec.benchmark, spec.optimized)],
            spec.arch, spec.width, instructions, warmup,
            ref_trace_seed(spec.benchmark),
            machine=machines[spec.width],
        )
        for spec in specs
    }


def _run_cell(
    program: Program,
    benchmark: str,
    optimized: bool,
    width: int,
    arch: str,
    instructions: int,
    warmup: int,
    engine_mode: Optional[str] = None,
) -> SimulationResult:
    """Simulate one matrix cell on an already-linked image."""
    processor = build_processor(
        arch, program, width,
        benchmark=benchmark, optimized=optimized,
        trace_seed=ref_trace_seed(benchmark),
        engine_mode=engine_mode,
    )
    return processor.run(instructions, warmup=warmup)


#: Fork-server image cache: primed in the parent before the pool forks
#: (so workers inherit every linked image), or filled lazily per worker
#: under spawn.  Module-level on purpose — it must survive across the
#: tasks a worker executes, and repeated ``run_matrix`` calls in one
#: process (a long-lived experiment server, the perf harness) reuse the
#: linked images and their memoized trace records instead of relinking.
_WORKER_CACHE: Optional[ProgramCache] = None


def _default_cache() -> ProgramCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ProgramCache()
    return _WORKER_CACHE


def reset_program_cache() -> None:
    """Drop the module-level image cache (fresh-process semantics).

    For harnesses that need a genuinely cold measurement inside a warm
    process — the next :func:`run_matrix` relinks (or store-loads)
    every image instead of reusing in-memory ones.
    """
    global _WORKER_CACHE
    _WORKER_CACHE = None


def _worker_init(store_root: Optional[str] = None) -> None:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ProgramCache()
    if store_root is not None and _WORKER_CACHE.artifacts is None:
        # Attach the store in the *worker* only: under fork this mutates
        # the child's copy of the inherited cache, so the parent's
        # module-level cache stays store-free for later storeless runs.
        _WORKER_CACHE.artifacts = ArtifactCache(ArtifactStore(store_root))


def _run_cell_worker(
    spec: RunSpec,
    instructions: int,
    warmup: int,
    scale: float,
    program_key: Optional[str] = None,
    engine_mode: Optional[str] = None,
) -> SimulationResult:
    """Pool entry point: one (arch, benchmark, width, layout) cell.

    ``program_key`` is the parent's precomputed program fingerprint
    (None on storeless runs, where the worker keys its own cache).
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:  # pragma: no cover - initializer always ran
        _WORKER_CACHE = ProgramCache()
    cache = _WORKER_CACHE
    key = program_key or program_fingerprint(
        spec.benchmark, spec.optimized, scale
    )
    program = cache.get(spec.benchmark, spec.optimized, scale, key=key)
    result = _run_cell(program, spec.benchmark, spec.optimized, spec.width,
                       spec.arch, instructions, warmup,
                       engine_mode=engine_mode)
    if cache.artifacts is not None:
        # Persist the (possibly grown) dynamic trace; racing writers on
        # one key are safe — writes are atomic and any saved prefix
        # extends deterministically.
        cache.artifacts.save_traces(program, key)
    return result


def _result_meta(spec: RunSpec, instructions: int, warmup: int,
                 scale: float) -> dict:
    """Human-readable index metadata for one stored result."""
    return {
        "benchmark": spec.benchmark,
        "arch": spec.arch,
        "width": spec.width,
        "optimized": spec.optimized,
        "instructions": instructions,
        "warmup": warmup,
        "scale": scale,
    }


def _try_serve(
    serve: str,
    benchmarks: Sequence[str],
    widths: Sequence[int],
    archs: Sequence[str],
    layouts: Sequence[bool],
    instructions: int,
    warmup: int,
    scale: float,
    engine_mode: Optional[str],
    progress: Optional[Callable[[SimulationResult], None]],
) -> Optional[RunMatrixResult]:
    """Ask a serve daemon for the matrix; None means "run locally".

    Unreachable, overloaded or draining daemons degrade to local
    execution with one warning per address — a missing daemon costs
    speed, never a result.  Genuine sweep failures
    (:class:`~repro.exec.policy.SweepError`) and protocol breakage
    propagate: those are answers, not absence.
    """
    from repro.serve.client import (
        ServeClient,
        ServeDraining,
        ServeOverloaded,
        ServeUnavailable,
    )

    try:
        return ServeClient.at(serve).run_matrix(
            benchmarks, widths=widths, archs=archs, layouts=layouts,
            instructions=instructions, warmup=warmup, scale=scale,
            engine_mode=engine_mode, progress=progress,
        )
    except (ServeUnavailable, ServeOverloaded, ServeDraining) as exc:
        # Keyed per address: one warning, then every further matrix
        # against that daemon quietly runs locally.
        warn_once(
            f"serve.unreachable:{serve}",
            f"repro.serve: daemon at {serve} did not take the run "
            f"({exc}); running locally",
            stacklevel=4,
        )
        return None


def _federate_store(
    store: Optional[Union[ArtifactCache, ArtifactStore, str]],
    peers: Union[str, Sequence[str]],
) -> Tuple[Optional[Union[ArtifactCache, ArtifactStore, str]], Any]:
    """Layer ``peers`` under ``store`` as a :class:`TieredStore`.

    Returns ``(store, owned_tier)``: the possibly-wrapped store, plus
    the tier this run constructed (and must close) — None when the
    caller already brought a federated store or no wrapping applies.
    ``peers`` without a store is a warn-once no-op: the federation is
    a cache layer, and there is nothing to layer it on.
    """
    from repro.store.remote import parse_peers
    from repro.store.remote.tiered import TieredStore

    peer_list = parse_peers(peers)
    if not peer_list:
        return store, None
    if store is None:
        warn_once(
            "store.remote.peers-without-store",
            "run_matrix: peers= requires store=...; running without "
            "the federated tier",
            stacklevel=3,
        )
        return None, None
    if isinstance(store, TieredStore):
        return store, None  # caller owns its tier
    if isinstance(store, ArtifactCache):
        if isinstance(store.store, TieredStore):
            return store, None
        tier = TieredStore(store.store.root, peer_list)
        store.store = tier  # keep the cache's hit/miss counters
        return store, tier
    root = store.root if isinstance(store, ArtifactStore) else \
        os.fspath(store)
    tier = TieredStore(root, peer_list)
    return tier, tier


def _attach_store(
    store: Optional[Union[ArtifactCache, ArtifactStore, str]],
) -> Optional[ArtifactCache]:
    """Bind the store for one run, probing writability up front.

    An unwritable store root (read-only mount, path shadowed by a
    regular file, revoked permissions) degrades the run to storeless
    with a single warning per root — detected at attach time in the
    parent, not as a surprise ``OSError`` on the first ``put`` inside a
    worker process.
    """
    if store is None:
        return None
    artifacts = as_artifact_cache(store)
    error = artifacts.store.check_writable()
    if error is None:
        return artifacts
    root = str(artifacts.store.root)
    # Keyed per root: the warning fires once per root, then every
    # matrix against it runs storeless.
    warn_once(
        f"store.unwritable:{root}",
        f"repro.store: store root {root} is not writable ({error}); "
        f"running without the artifact store",
        stacklevel=3,
    )
    return None


def run_matrix(
    benchmarks: Sequence[str],
    widths: Sequence[int] = (8,),
    archs: Sequence[str] = ARCHITECTURES,
    layouts: Sequence[bool] = (False, True),
    instructions: int = 100_000,
    warmup: Optional[int] = None,
    scale: float = 1.0,
    program_cache: Optional[ProgramCache] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
    jobs: int = 1,
    store: Optional[Union[ArtifactCache, ArtifactStore, str]] = None,
    engine_mode: Optional[str] = None,
    fault_policy: Optional[FaultPolicy] = None,
    resume: bool = False,
    serve: Optional[str] = None,
    cluster: Optional[Union[str, Sequence[str], Any]] = None,
    peers: Optional[Union[str, Sequence[str]]] = None,
) -> RunMatrixResult:
    """Simulate the full cross product and return all results.

    ``engine_mode`` selects accelerated ("accel") or interpreted
    ("interp") simulation per cell — results (and therefore store
    fingerprints) are bit-identical either way; None/"auto" consults
    ``$REPRO_ACCEL`` and defaults to the accelerator.

    ``warmup`` defaults to a third of the instruction budget — the
    predictors and caches train during it, and it is excluded from the
    reported metrics (the paper's fast-forward equivalent).

    ``jobs > 1`` shards individual cells across a process pool (see the
    module docstring for the fork-server image amortization).  ``jobs``
    is a cap: the effective worker count is ``min(jobs, cpu_count,
    cells)`` — oversubscribing a core only adds scheduler thrash, so a
    1-CPU host runs the pool with one worker.  Results are bit-identical
    to the serial path (every cell is an isolated deterministic
    simulation); only wall-clock changes.  ``progress`` is still invoked
    in the main process, per result, in the same deterministic order as
    the serial path.

    ``store`` (a directory path, :class:`~repro.store.store
    .ArtifactStore`, or :class:`~repro.store.cache.ArtifactCache`)
    enables the **incremental** path: each cell's result fingerprint is
    looked up first, only misses are simulated (serially or across the
    pool), and fresh results, images and traces are written back.  The
    returned matrix is bit-identical to a storeless run, cached cells
    included, and ``progress`` still fires once per cell in the
    deterministic order.

    An explicitly provided ``program_cache`` forces the serial path:
    the caller asked for shared already-linked images, which worker
    processes cannot see.

    ``fault_policy`` tunes per-cell fault handling (attempt timeout,
    retries with deterministic backoff, worker-rebuild budget — see
    :class:`~repro.exec.policy.FaultPolicy`); both the serial and the
    pooled path run through :mod:`repro.exec`, so they degrade
    identically.  A cell that keeps failing under the accelerator is
    retried once interpreted (with one warning) before it counts as
    failed; if any cell remains failed after every other cell settles,
    :class:`~repro.exec.policy.SweepError` names them — everything
    that completed was already delivered to ``progress`` and persisted
    to the store and its sweep journal, so a re-run with the same
    ``store`` resumes instead of starting over.  ``resume=True``
    (requires ``store``) additionally reports the journaled progress of
    the interrupted sweep on stderr before running the missing cells.

    ``serve="host:port"`` sends the matrix to a running ``repro.serve``
    daemon instead (bit-identical results — the daemon ships the
    store's own result encoding); an unreachable or overloaded daemon
    falls back to local execution with one warning per address.  The
    daemon applies its own store, worker pool and fault policy, so
    ``jobs``/``store``/``fault_policy`` govern only the local fallback.

    ``cluster`` shards the *missing* cells across a fleet of serve
    daemons instead of local workers: a comma-separated address string
    (``"host:port,host:port"``), a sequence of addresses, or an
    already-constructed :class:`~repro.cluster.pool.ClusterPool`.
    Unlike ``serve=``, the cluster path keeps the local store in the
    loop — cached cells are never sent anywhere, remote results are
    ingested byte-for-byte into the store and journal as they settle,
    and ``fault_policy.timeout`` propagates as the per-request serve
    deadline.  Dead or partitioned nodes cost redispatches; an
    entirely unreachable fleet degrades (warn-once) to the local pool
    the run would otherwise have used.

    ``peers`` federates the store (requires ``store=``): admission
    probes read through to the listed ``repro.serve`` daemons'
    stores (see :mod:`repro.store.remote`) and fresh results
    replicate to them write-behind.  Peers are a shortcut exactly
    like the store itself: dead, lying or version-skewed peers cost
    at most recomputes (warn-once, circuit-broken), never a changed
    result.  Workers keep plain local stores; all federated traffic
    happens in this process.
    """
    if warmup is None:
        warmup = instructions // 3
    if serve is not None:
        remote = _try_serve(serve, benchmarks, widths, archs, layouts,
                            instructions, warmup, scale, engine_mode,
                            progress)
        if remote is not None:
            return remote
    if resume and store is None:
        raise ValueError(
            "resume=True requires an artifact store (store=...)"
        )
    out = RunMatrixResult(instructions=instructions, scale=scale)

    specs = matrix_specs(benchmarks, widths, archs, layouts)

    artifacts: Optional[ArtifactCache] = None
    cached: Dict[RunSpec, SimulationResult] = {}
    result_fps: Dict[RunSpec, str] = {}
    # Computed once per image (not per cell): the fingerprint keys the
    # in-process ProgramCache on storeless runs too.
    program_fps = program_fingerprints(specs, scale)
    owned_tier = None
    if peers:
        store, owned_tier = _federate_store(store, peers)
    artifacts = _attach_store(store)
    if artifacts is not None:
        result_fps = cell_fingerprints(specs, instructions, warmup, scale,
                                       program_fps=program_fps)
        for spec in specs:
            hit = artifacts.result(result_fps[spec])
            if hit is not None:
                cached[spec] = hit

    misses = [spec for spec in specs if spec not in cached]
    policy = fault_policy or FaultPolicy()
    mode = resolve_engine_mode(engine_mode)

    journal: Optional[SweepJournal] = None
    recorder = None
    if artifacts is not None:
        sweep_fp = sweep_fingerprint(result_fps.values())
        journal = SweepJournal(artifacts.store, sweep_fp, len(specs))
        already = journal.read()
        if resume:
            print(
                f"resume: sweep {sweep_fp[:12]}: {len(already)}/"
                f"{len(specs)} cell(s) journaled, {len(cached)} served "
                f"from the store, {len(misses)} to simulate",
                file=sys.stderr,
            )
        # The sweep's flight recorder rides next to its journal.  It is
        # attached *before* any pool starts, so fork-platform workers
        # inherit the sink and their cell events append (O_APPEND, one
        # line per write) to the same file as the parent's crash/retry
        # events.  None when REPRO_OBS disables recording.
        recorder = obs.sweep_recorder(artifacts.store.events_path(sweep_fp))
        if recorder is not None:
            obs.record_event(
                "sweep_begin", sweep=sweep_fp, cells=len(specs),
                cached=len(cached), misses=len(misses), jobs=jobs,
                engine=mode,
            )

    def finish_recording() -> None:
        if recorder is not None:
            obs.record_event(
                "sweep_end", sweep=sweep_fp, completed=len(done),
                cells=len(specs),
            )
            obs.detach(recorder)
        if owned_tier is not None:
            # Bounded write-behind drain: peers that are up get the
            # fresh results now; a slow or dead peer cannot hold the
            # sweep's return hostage.
            owned_tier.close()

    # Completions arrive out of order from the pool; results and
    # ``progress`` must still stream in deterministic spec order.  The
    # frontier advances through ``specs`` as far as settled cells allow,
    # exactly reproducing the serial ordering.
    done: Dict[RunSpec, SimulationResult] = dict(cached)
    frontier = 0

    def advance() -> None:
        nonlocal frontier
        while frontier < len(specs) and specs[frontier] in done:
            result = done[specs[frontier]]
            out.add(specs[frontier], result)
            frontier += 1
            if progress is not None:
                progress(result)

    if journal is not None:
        for spec in cached:
            journal.append(result_fps[spec])
    advance()
    if not misses:
        finish_recording()
        return out

    def on_completed(job: Job, result: SimulationResult) -> None:
        # Fires the moment each cell settles, so everything finished is
        # durable (store + journal) before any later failure can abort
        # the sweep.
        spec = job.key
        if artifacts is not None:
            artifacts.put_result(
                result_fps[spec], result,
                meta=_result_meta(spec, instructions, warmup, scale),
            )
            if journal is not None:
                journal.append(result_fps[spec])
        done[spec] = result
        advance()

    def make_job(spec: RunSpec) -> Job:
        args = (spec, instructions, warmup, scale,
                program_fps.get((spec.benchmark, spec.optimized)), mode)
        # An accel cell that exhausts its retries gets one last shot
        # interpreted — results are bit-identical across engines, so a
        # kernel-level fault must not fail the sweep.
        fallback = args[:-1] + ("interp",) if mode == "accel" else None
        return Job(spec, args, fallback_args=fallback)

    cell_jobs = [make_job(spec) for spec in misses]

    if cluster is not None:
        from repro.cluster.pool import ClusterPool

        fb_store_root = (
            artifacts.store.root if artifacts is not None else None
        )

        def _local_fallback_pool() -> Pool:
            # Mirror the pool this run would have used without a
            # fleet, so full-fleet degradation behaves exactly like a
            # plain local run.
            if jobs > 1 and len(misses) > 1:
                workers = max(1, min(jobs, len(misses),
                                     os.cpu_count() or 1))
                return ForkServerPool(
                    workers, initializer=_worker_init,
                    initargs=(fb_store_root,), policy=policy,
                )
            return SerialPool(policy=policy)

        if isinstance(cluster, ClusterPool):
            cluster_pool = cluster
            owns_pool = False
        else:
            addresses = (
                [a.strip() for a in cluster.split(",") if a.strip()]
                if isinstance(cluster, str)
                else [str(a) for a in cluster]
            )
            cluster_pool = ClusterPool(
                addresses, policy=policy,
                fallback_factory=_local_fallback_pool,
            )
            owns_pool = True

        def on_cluster_completed(job: Job,
                                 result: SimulationResult) -> None:
            spec = job.key
            raw = cluster_pool.take_raw(spec)
            if artifacts is not None:
                meta = _result_meta(spec, instructions, warmup, scale)
                ingested = None
                if raw is not None:
                    # Remote-result ingest: persist the daemon's wire
                    # bytes verbatim (already the store's canonical
                    # encoding), validated by decode.
                    ingested = artifacts.put_result_bytes(
                        result_fps[spec], raw, meta=meta
                    )
                if ingested is None:
                    artifacts.put_result(result_fps[spec], result,
                                         meta=meta)
                if journal is not None:
                    journal.append(result_fps[spec])
            done[spec] = result
            advance()

        try:
            cluster_pool.run(_run_cell_worker, cell_jobs,
                             completed=on_cluster_completed)
        finally:
            if owns_pool:
                cluster_pool.close()
            finish_recording()
        return out

    if jobs > 1 and len(misses) > 1 and program_cache is None:
        max_workers = max(1, min(jobs, len(misses), os.cpu_count() or 1))
        store_root = artifacts.store.root if artifacts is not None else None
        if multiprocessing.get_start_method() == "fork":
            # Fork server: link or load every missing image once in the
            # parent; forked workers (including ones rebuilt after a
            # crash) inherit the warm cache (stored traces included) and
            # pull cells from the shared queue without ever linking.
            cache = _default_cache()
            needed = {(spec.benchmark, spec.optimized) for spec in misses}
            for benchmark in benchmarks:
                for optimized in layouts:
                    if (benchmark, optimized) in needed:
                        cache.get(benchmark, optimized, scale,
                                  key=program_fps.get((benchmark, optimized)),
                                  artifacts=artifacts)
        try:
            with ForkServerPool(
                max_workers, initializer=_worker_init,
                initargs=(store_root,), policy=policy,
            ) as pool:
                pool.run(_run_cell_worker, cell_jobs,
                         completed=on_completed)
        finally:
            finish_recording()
        return out

    cache = program_cache or _default_cache()
    used_programs: Dict[Tuple[str, bool], Program] = {}

    def serial_cell(
        spec: RunSpec,
        cell_instructions: int,
        cell_warmup: int,
        cell_scale: float,
        program_key: Optional[str],
        cell_mode: Optional[str],
    ) -> SimulationResult:
        program = cache.get(spec.benchmark, spec.optimized, cell_scale,
                            key=program_key, artifacts=artifacts)
        used_programs[(spec.benchmark, spec.optimized)] = program
        return _run_cell(program, spec.benchmark, spec.optimized,
                         spec.width, spec.arch, cell_instructions,
                         cell_warmup, engine_mode=cell_mode)

    try:
        with SerialPool(policy=policy) as pool:
            pool.run(serial_cell, cell_jobs, completed=on_completed)
    finally:
        # Persist grown traces even when a long run fails or is
        # interrupted mid-matrix (per-cell results above are already
        # durable); mirrors the per-cell save in _run_cell_worker.
        if artifacts is not None:
            for (benchmark, optimized), program in used_programs.items():
                artifacts.save_traces(
                    program, program_fps[(benchmark, optimized)]
                )
        finish_recording()
    return out
