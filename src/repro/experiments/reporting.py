"""Plain-text rendering of experiment results (tables and bar rows).

The paper's figures are bar charts; with no plotting stack available
offline, the harness renders aligned text tables plus simple ASCII bars
so shapes (who wins, by how much, where the crossovers are) are visible
directly in terminal output and in the committed experiment logs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    materialized: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def ascii_bars(
    values: Dict[str, float], width: int = 40, unit: str = ""
) -> str:
    """Render a labelled horizontal bar chart."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    label_w = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        n = 0 if peak <= 0 else round(width * value / peak)
        lines.append(
            f"{name.ljust(label_w)}  {'#' * n}{' ' * (width - n)} "
            f"{value:.3f}{unit}"
        )
    return "\n".join(lines)


def relative_speedups(values: Dict[str, float], base: str) -> Dict[str, float]:
    """Speedup of every entry relative to ``base`` (1.0 = equal)."""
    if base not in values:
        raise KeyError(f"base {base!r} not among {sorted(values)}")
    denom = values[base]
    if denom <= 0:
        raise ValueError("base value must be positive")
    return {name: value / denom for name, value in values.items()}
