"""Ablation studies for the design choices the paper discusses.

* **Cache line width** (Fig. 7 / §3.4): the stream architecture reads a
  single, very wide line per cycle; narrower lines reintroduce the
  misalignment problem and cut the effective fetch width.
* **FTQ depth** (§3.3): the FTQ tolerates predictor/cache rate mismatch;
  depth 0 (well, 1) couples them tightly.
* **Selective trace storage / partial matching** (§4.1 footnote): the
  paper uses selective storage and reports partial matching *hurts*
  with layout-optimized codes.
* **Cascade second level**: how much of the stream predictor's accuracy
  comes from path correlation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.common.params import (
    CacheParams,
    MachineParams,
    default_machine,
)
from repro.core.results import SimulationResult
from repro.experiments.configs import build_processor
from repro.experiments.reporting import format_table
from repro.fetch.stream_predictor import StreamPredictorConfig
from repro.isa.program import Program
from repro.isa.workloads import prepare_program, ref_trace_seed


def _run(
    arch: str,
    program: Program,
    benchmark: str,
    width: int,
    instructions: int,
    machine: MachineParams = None,
    engine_mode: str = None,
    **overrides,
) -> SimulationResult:
    processor = build_processor(
        arch, program, width,
        benchmark=benchmark, optimized=True,
        trace_seed=ref_trace_seed(benchmark),
        machine=machine,
        engine_mode=engine_mode,
        **overrides,
    )
    return processor.run(instructions, warmup=instructions // 3)


def line_width_sweep(
    benchmark: str,
    line_bytes_options: Sequence[int] = (16, 32, 64, 128, 256),
    width: int = 8,
    instructions: int = 60_000,
    scale: float = 1.0,
    engine_mode: str = None,
) -> str:
    """Fig. 7: stream fetch IPC vs. instruction cache line width."""
    program = prepare_program(benchmark, optimized=True, scale=scale)
    rows: List[List[object]] = []
    for line_bytes in line_bytes_options:
        base = default_machine(width)
        memory = replace(
            base.memory,
            il1=CacheParams(
                size_bytes=base.memory.il1.size_bytes,
                assoc=base.memory.il1.assoc,
                line_bytes=line_bytes,
            ),
        )
        machine = replace(base, memory=memory)
        result = _run("stream", program, benchmark, width, instructions,
                      machine=machine, engine_mode=engine_mode)
        rows.append([
            line_bytes,
            line_bytes // 4,
            result.fetch_ipc,
            result.ipc,
            result.memory_stats["il1_miss_rate"],
        ])
    return format_table(
        ["line bytes", "instrs/line", "fetch IPC", "IPC", "L1I miss rate"],
        rows,
        title=f"Figure 7 ablation: stream fetch vs. I-cache line width "
              f"({benchmark}, {width}-wide, optimized)",
    )


def ftq_depth_sweep(
    benchmark: str,
    depths: Sequence[int] = (1, 2, 4, 8),
    width: int = 8,
    instructions: int = 60_000,
    scale: float = 1.0,
    engine_mode: str = None,
) -> str:
    """FTQ depth sensitivity of the stream front-end."""
    program = prepare_program(benchmark, optimized=True, scale=scale)
    rows: List[List[object]] = []
    for depth in depths:
        base = default_machine(width)
        machine = replace(base, core=replace(base.core, ftq_entries=depth))
        result = _run("stream", program, benchmark, width, instructions,
                      machine=machine, engine_mode=engine_mode)
        rows.append([depth, result.fetch_ipc, result.ipc])
    return format_table(
        ["FTQ entries", "fetch IPC", "IPC"],
        rows,
        title=f"FTQ depth ablation ({benchmark}, {width}-wide, optimized)",
    )


def trace_storage_ablation(
    benchmark: str,
    width: int = 8,
    instructions: int = 60_000,
    scale: float = 1.0,
    engine_mode: str = None,
) -> str:
    """Selective trace storage and partial matching on/off."""
    program = prepare_program(benchmark, optimized=True, scale=scale)
    rows: List[List[object]] = []
    variants = [
        ("selective (paper)", dict(selective_storage=True,
                                   partial_matching=False)),
        ("store everything", dict(selective_storage=False,
                                  partial_matching=False)),
        ("+ partial matching", dict(selective_storage=True,
                                    partial_matching=True)),
    ]
    for name, kwargs in variants:
        result = _run("trace", program, benchmark, width, instructions,
                      engine_mode=engine_mode, **kwargs)
        stats = result.engine_stats
        hits = stats.get("tc_hits", 0)
        misses = stats.get("tc_misses", 0)
        rows.append([
            name,
            result.ipc,
            result.fetch_ipc,
            hits / max(hits + misses, 1),
        ])
    return format_table(
        ["trace cache variant", "IPC", "fetch IPC", "TC hit rate"],
        rows,
        title=f"Trace storage ablation ({benchmark}, {width}-wide, optimized)",
    )


def cascade_ablation(
    benchmark: str,
    width: int = 8,
    instructions: int = 60_000,
    scale: float = 1.0,
    engine_mode: str = None,
) -> str:
    """Stream predictor: full cascade vs. first-level-only."""
    program = prepare_program(benchmark, optimized=True, scale=scale)
    rows: List[List[object]] = []
    variants = [
        ("cascade (paper)", StreamPredictorConfig()),
        ("address table only", replace(
            StreamPredictorConfig(), second_entries=4, second_assoc=1
        )),
        ("double first level", replace(
            StreamPredictorConfig(), first_entries=2048,
            second_entries=4, second_assoc=1,
        )),
    ]
    for name, config in variants:
        result = _run("stream", program, benchmark, width, instructions,
                      engine_mode=engine_mode, predictor_config=config)
        rows.append([
            name,
            result.ipc,
            100.0 * result.branch_misprediction_rate,
        ])
    return format_table(
        ["stream predictor variant", "IPC", "mispred %"],
        rows,
        title=f"Cascade ablation ({benchmark}, {width}-wide, optimized)",
    )
