"""Experiment harness: Table 2 configurations and figure/table runners."""

from repro.experiments.configs import (
    ARCHITECTURES,
    build_engine,
    build_processor,
    simulate,
)
from repro.experiments.runner import run_matrix, RunSpec

__all__ = [
    "ARCHITECTURES",
    "build_engine",
    "build_processor",
    "simulate",
    "run_matrix",
    "RunSpec",
]
