"""Command-line entry point: regenerate any paper figure or table.

Examples::

    repro-experiments fig8 --widths 2 4 8 --instructions 100000
    repro-experiments fig9
    repro-experiments table1
    repro-experiments table3
    repro-experiments ablations --benchmark gzip
    repro-experiments fig9 --profile stream   # cProfile one cell

``--profile [ARCH]`` short-circuits the command: instead of the full
matrix it runs one representative cell (the first requested benchmark,
optimized layout, the first requested width) under :mod:`cProfile` and
prints the top-20 functions by cumulative time — so performance PRs can
cite before/after profiles instead of guessing.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from typing import List

from repro.experiments import ablations
from repro.experiments.figures import figure8_text, figure9_text
from repro.experiments.runner import run_matrix
from repro.experiments.tables import table1_text, table3_text
from repro.isa.workloads import SPEC_BENCHMARKS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmarks", nargs="*", default=list(SPEC_BENCHMARKS),
        help="benchmark subset (default: all eleven)",
    )
    parser.add_argument("--instructions", type=int, default=90_000)
    parser.add_argument("--scale", type=float, default=0.6,
                        help="code footprint scale factor")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation matrix "
                             "(results are identical to --jobs 1)")
    parser.add_argument("--profile", nargs="?", const="stream",
                        metavar="ARCH", default=None,
                        help="profile one cell (ARCH, first benchmark, "
                             "optimized layout) under cProfile and print "
                             "the top-20 cumulative entries instead of "
                             "running the command")
    parser.add_argument("--quiet", action="store_true")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures/tables of 'Fetching Instruction "
                    "Streams' (MICRO-35, 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig8 = sub.add_parser("fig8", help="Figure 8: IPC vs pipe width")
    p_fig8.add_argument("--widths", nargs="*", type=int, default=[2, 4, 8])
    _add_common(p_fig8)

    p_fig9 = sub.add_parser("fig9", help="Figure 9: per-benchmark IPC")
    _add_common(p_fig9)

    p_t1 = sub.add_parser("table1", help="Table 1: fetch unit sizes")
    _add_common(p_t1)

    p_t3 = sub.add_parser("table3", help="Table 3: mispred + fetch IPC")
    _add_common(p_t3)

    p_abl = sub.add_parser("ablations", help="design-choice ablations")
    p_abl.add_argument("--benchmark", default="gzip")
    _add_common(p_abl)

    args = parser.parse_args(argv)
    t0 = time.time()

    if args.profile is not None:
        return _profile_cell(args)

    if args.command in ("table1", "ablations") and args.jobs > 1:
        # These commands drive their own serial simulation loops rather
        # than a run_matrix cross product; don't let the flag silently
        # promise parallelism it does not deliver.
        print(f"note: --jobs is ignored by {args.command} "
              f"(serial simulation sweep)", file=sys.stderr)

    def progress(result) -> None:
        if not args.quiet:
            print(f"[{time.time() - t0:6.0f}s] {result.summary()}",
                  file=sys.stderr, flush=True)

    if args.command == "fig8":
        matrix = run_matrix(args.benchmarks, widths=tuple(args.widths),
                            instructions=args.instructions,
                            scale=args.scale, progress=progress,
                            jobs=args.jobs)
        print(figure8_text(matrix, args.benchmarks, tuple(args.widths)))
    elif args.command == "fig9":
        matrix = run_matrix(args.benchmarks, widths=(8,), layouts=(True,),
                            instructions=args.instructions,
                            scale=args.scale, progress=progress,
                            jobs=args.jobs)
        print(figure9_text(matrix, args.benchmarks))
    elif args.command == "table1":
        print(table1_text(args.benchmarks, args.instructions, args.scale))
    elif args.command == "table3":
        matrix = run_matrix(args.benchmarks, widths=(8,),
                            instructions=args.instructions,
                            scale=args.scale, progress=progress,
                            jobs=args.jobs)
        print(table3_text(matrix, args.benchmarks))
    elif args.command == "ablations":
        print(ablations.line_width_sweep(
            args.benchmark, instructions=args.instructions,
            scale=args.scale))
        print()
        print(ablations.ftq_depth_sweep(
            args.benchmark, instructions=args.instructions,
            scale=args.scale))
        print()
        print(ablations.trace_storage_ablation(
            args.benchmark, instructions=args.instructions,
            scale=args.scale))
        print()
        print(ablations.cascade_ablation(
            args.benchmark, instructions=args.instructions,
            scale=args.scale))
    print(f"(elapsed {time.time() - t0:.0f}s)", file=sys.stderr)
    return 0


def _profile_cell(args) -> int:
    """Run one representative cell under cProfile; print top-20 by
    cumulative time."""
    from repro.experiments.configs import ARCHITECTURES, build_processor
    from repro.isa.workloads import prepare_program, ref_trace_seed

    arch = args.profile
    if arch not in ARCHITECTURES:
        print(f"unknown architecture {arch!r}; choose from "
              f"{', '.join(ARCHITECTURES)}", file=sys.stderr)
        return 2
    benchmark = args.benchmarks[0]
    width = getattr(args, "widths", [8])[0] if hasattr(args, "widths") else 8
    program = prepare_program(benchmark, optimized=True, scale=args.scale)
    processor = build_processor(
        arch, program, width,
        benchmark=benchmark, optimized=True,
        trace_seed=ref_trace_seed(benchmark),
    )
    print(f"profiling {arch}/{benchmark}/w{width} for "
          f"{args.instructions} instructions", file=sys.stderr)
    profiler = cProfile.Profile()
    profiler.enable()
    processor.run(args.instructions)
    profiler.disable()
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
