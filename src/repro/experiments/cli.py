"""Command-line entry point: regenerate any paper figure or table.

Examples::

    repro-experiments fig8 --widths 2 4 8 --instructions 100000
    repro-experiments fig9
    repro-experiments table1
    repro-experiments table3
    repro-experiments ablations --benchmark gzip
    repro-experiments fig9 --profile stream   # cProfile one cell

    repro-experiments fig8 --store ~/.repro-store   # incremental runs
    repro-experiments fig8 --store DIR --resume     # finish an
                                                    # interrupted sweep
    repro-experiments fig9 --timeout 300 --retries 1  # fault policy
    repro-experiments cache stats                   # store maintenance
    repro-experiments cache verify
    repro-experiments cache gc --max-bytes 500000000
    repro-experiments cache sync HOST:PORT          # anti-entropy pass
    repro-experiments cache verify --peers HOST:PORT
    repro-experiments fig8 --store DIR --store-peers HOST:PORT
    repro-experiments obs summary                   # flight recorder

``--store DIR`` (default: the ``REPRO_STORE`` environment variable)
points every matrix-driven command at a persistent artifact store:
cells whose fingerprints resolve are served from disk, only misses are
simulated, and fresh programs / traces / results are written back — so
re-rendering a figure against a warm store takes seconds, not minutes.
The ``cache`` subcommand inspects (``stats``), integrity-checks
(``verify`` — re-hashes every object) and prunes (``gc`` — drops
orphans, optionally enforces a size cap) that store.

``--profile [ARCH]`` short-circuits the command: instead of the full
matrix it runs one representative cell (the first requested benchmark,
optimized layout, the first requested width) under :mod:`cProfile` and
prints the top-20 functions by cumulative time — so performance PRs can
cite before/after profiles instead of guessing.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.exec.policy import FaultPolicy
from repro.experiments import ablations
from repro.experiments.figures import figure8_text, figure9_text
from repro.experiments.runner import run_matrix
from repro.experiments.tables import table1_text, table3_text
from repro.isa.workloads import SPEC_BENCHMARKS
from repro.accel import ACCEL_ENV
from repro.store.store import STORE_ENV, ArtifactStore, default_store_root


def _add_store(parser: argparse.ArgumentParser) -> None:
    # Default None so an explicit flag is distinguishable from the
    # $REPRO_STORE fallback (filled in after parsing).
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="artifact store directory for incremental runs "
             f"(default: ${STORE_ENV})",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmarks", nargs="*", default=list(SPEC_BENCHMARKS),
        help="benchmark subset (default: all eleven)",
    )
    parser.add_argument("--instructions", type=int, default=90_000)
    parser.add_argument("--scale", type=float, default=0.6,
                        help="code footprint scale factor")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation matrix "
                             "(results are identical to --jobs 1)")
    accel = parser.add_mutually_exclusive_group()
    accel.add_argument(
        "--accel", dest="engine_mode", action="store_const", const="accel",
        default=None,
        help="run the exec-compiled simulation kernels (default: "
             f"${ACCEL_ENV}, else on; results are bit-identical)",
    )
    accel.add_argument(
        "--no-accel", dest="engine_mode", action="store_const",
        const="interp",
        help="force the interpreted simulation paths",
    )
    _add_store(parser)
    parser.add_argument(
        "--serve", metavar="HOST:PORT", default=None,
        help="send the matrix to a running repro.serve daemon (results "
             "are bit-identical; falls back to local execution if the "
             "daemon is unreachable or overloaded)",
    )
    parser.add_argument(
        "--cluster", metavar="HOST:PORT,HOST:PORT", default=None,
        help="shard missing cells across a fleet of repro.serve "
             "daemons (bit-identical results; dead or partitioned "
             "nodes are redispatched around, and a fully unreachable "
             "fleet falls back to local execution)",
    )
    parser.add_argument(
        "--store-peers", metavar="HOST:PORT[,...]", default=None,
        help="federate the store with these repro.serve daemons: "
             "misses read through to them, fresh results replicate "
             "back (requires --store; default: $REPRO_STORE_PEERS; "
             "bit-identical results even with every peer down)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell attempt deadline; an over-deadline worker is "
             "killed and the cell retried (default: no deadline)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="re-run a failed/crashed/timed-out cell up to N times "
             "before it fails the sweep (default: 2)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="report the journaled progress of an interrupted sweep and "
             "simulate only its missing cells (requires a store)",
    )
    parser.add_argument("--profile", nargs="?", const="stream",
                        metavar="ARCH", default=None,
                        help="profile one cell (ARCH, first benchmark, "
                             "optimized layout) under cProfile and print "
                             "the top-20 cumulative entries instead of "
                             "running the command")
    parser.add_argument("--profile-dir", metavar="DIR", default=None,
                        help="with --profile: also dump the raw pstats "
                             "to DIR/<cell-fingerprint>.pstats for "
                             "offline comparison")
    parser.add_argument("--quiet", action="store_true")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures/tables of 'Fetching Instruction "
                    "Streams' (MICRO-35, 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig8 = sub.add_parser("fig8", help="Figure 8: IPC vs pipe width")
    p_fig8.add_argument("--widths", nargs="*", type=int, default=[2, 4, 8])
    _add_common(p_fig8)

    p_fig9 = sub.add_parser("fig9", help="Figure 9: per-benchmark IPC")
    _add_common(p_fig9)

    p_t1 = sub.add_parser("table1", help="Table 1: fetch unit sizes")
    _add_common(p_t1)

    p_t3 = sub.add_parser("table3", help="Table 3: mispred + fetch IPC")
    _add_common(p_t3)

    p_abl = sub.add_parser("ablations", help="design-choice ablations")
    p_abl.add_argument("--benchmark", default="gzip")
    _add_common(p_abl)

    p_cache = sub.add_parser(
        "cache", help="artifact store maintenance "
                      "(stats/verify/gc/sync)"
    )
    p_cache.add_argument("action", choices=("stats", "verify", "gc",
                                            "sync"))
    p_cache.add_argument("peers", nargs="?", default=None,
                         metavar="HOST:PORT[,...]",
                         help="sync: serve daemons to reconcile with "
                              "(also usable positionally for "
                              "stats/verify)")
    _add_store(p_cache)
    p_cache.add_argument("--peers", dest="peers_opt", default=None,
                         metavar="HOST:PORT[,...]",
                         help="stats/verify: add a remote section / "
                              "cross-check shared fingerprints against "
                              "these peers (default: "
                              "$REPRO_STORE_PEERS)")
    p_cache.add_argument("--direction", choices=("push", "pull", "both"),
                         default="both",
                         help="sync: transfer direction (default: both)")
    p_cache.add_argument("--sample", type=int, default=16, metavar="N",
                         help="verify --peers: shared fingerprints "
                              "cross-checked per kind per peer "
                              "(default: 16)")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="gc: evict least-recently-written entries "
                              "until live objects fit this many bytes")
    p_cache.add_argument("--journal-days", type=float, default=None,
                         metavar="N",
                         help="gc: drop sweep journals untouched for N "
                              "days even when incomplete (default: 30)")
    p_cache.add_argument("--dry-run", action="store_true",
                         help="gc: report what would be deleted, delete "
                              "nothing")

    p_obs = sub.add_parser(
        "obs", help="inspect flight-recorder event files "
                    "(dump/tail/summary; see python -m repro.obs)"
    )
    p_obs.add_argument("obs_args", nargs=argparse.REMAINDER,
                       help="arguments for repro.obs "
                            "(e.g. 'summary', 'tail PATH -n 50')")

    args = parser.parse_args(argv)
    if args.command == "obs":
        from repro.obs.inspect import main as obs_main
        return obs_main(args.obs_args)
    store_flag_given = args.store is not None
    if args.store is None:
        args.store = default_store_root()
    if getattr(args, "store_peers", None) is None:
        args.store_peers = os.environ.get("REPRO_STORE_PEERS") or None
    t0 = time.time()

    if args.command == "cache":
        return _cache_command(args)

    fault_policy = None
    if args.timeout is not None or args.retries is not None:
        kwargs = {}
        if args.timeout is not None:
            kwargs["timeout"] = args.timeout
        if args.retries is not None:
            kwargs["retries"] = args.retries
        fault_policy = FaultPolicy(**kwargs)
    if args.resume and not args.store:
        print(f"--resume needs an artifact store: pass --store DIR or "
              f"set ${STORE_ENV}", file=sys.stderr)
        return 2

    if args.profile is not None:
        if store_flag_given:
            print("note: --store is ignored by --profile "
                  "(single-cell profiling run)", file=sys.stderr)
        return _profile_cell(args)

    if args.command in ("table1", "ablations"):
        # These commands drive their own serial simulation loops rather
        # than a run_matrix cross product; don't let the flags silently
        # promise parallelism or caching they do not deliver.  (Only an
        # *explicit* --store warns: a mere $REPRO_STORE in the
        # environment is not a request these commands are declining.)
        for flag, value in (("--jobs", args.jobs > 1),
                            ("--store", store_flag_given),
                            ("--timeout/--retries", fault_policy is not None),
                            ("--resume", args.resume),
                            ("--serve", args.serve is not None),
                            ("--cluster", args.cluster is not None),
                            ("--store-peers",
                             args.store_peers is not None)):
            if value:
                print(f"note: {flag} is ignored by {args.command} "
                      f"(serial simulation sweep)", file=sys.stderr)
    if args.command == "table1" and args.engine_mode is not None:
        # Table 1 walks the trace directly (no processor), so there is
        # no engine to accelerate or interpret.
        print("note: --accel/--no-accel is ignored by table1 "
              "(trace walk, no simulation)", file=sys.stderr)

    def progress(result) -> None:
        if not args.quiet:
            print(f"[{time.time() - t0:6.0f}s] {result.summary()}",
                  file=sys.stderr, flush=True)

    if args.command == "fig8":
        matrix = run_matrix(args.benchmarks, widths=tuple(args.widths),
                            instructions=args.instructions,
                            scale=args.scale, progress=progress,
                            jobs=args.jobs, store=args.store,
                            engine_mode=args.engine_mode,
                            fault_policy=fault_policy, resume=args.resume,
                            serve=args.serve, cluster=args.cluster,
                            peers=args.store_peers)
        print(figure8_text(matrix, args.benchmarks, tuple(args.widths)))
    elif args.command == "fig9":
        matrix = run_matrix(args.benchmarks, widths=(8,), layouts=(True,),
                            instructions=args.instructions,
                            scale=args.scale, progress=progress,
                            jobs=args.jobs, store=args.store,
                            engine_mode=args.engine_mode,
                            fault_policy=fault_policy, resume=args.resume,
                            serve=args.serve, cluster=args.cluster,
                            peers=args.store_peers)
        print(figure9_text(matrix, args.benchmarks))
    elif args.command == "table1":
        print(table1_text(args.benchmarks, args.instructions, args.scale))
    elif args.command == "table3":
        matrix = run_matrix(args.benchmarks, widths=(8,),
                            instructions=args.instructions,
                            scale=args.scale, progress=progress,
                            jobs=args.jobs, store=args.store,
                            engine_mode=args.engine_mode,
                            fault_policy=fault_policy, resume=args.resume,
                            serve=args.serve, cluster=args.cluster,
                            peers=args.store_peers)
        print(table3_text(matrix, args.benchmarks))
    elif args.command == "ablations":
        print(ablations.line_width_sweep(
            args.benchmark, instructions=args.instructions,
            scale=args.scale, engine_mode=args.engine_mode))
        print()
        print(ablations.ftq_depth_sweep(
            args.benchmark, instructions=args.instructions,
            scale=args.scale, engine_mode=args.engine_mode))
        print()
        print(ablations.trace_storage_ablation(
            args.benchmark, instructions=args.instructions,
            scale=args.scale, engine_mode=args.engine_mode))
        print()
        print(ablations.cascade_ablation(
            args.benchmark, instructions=args.instructions,
            scale=args.scale, engine_mode=args.engine_mode))
    print(f"(elapsed {time.time() - t0:.0f}s)", file=sys.stderr)
    return 0


def _cache_command(args) -> int:
    """``cache stats|verify|gc|sync`` against the configured store."""
    if not args.store:
        print(f"no store configured: pass --store DIR or set ${STORE_ENV}",
              file=sys.stderr)
        return 2
    store = ArtifactStore(args.store)
    peers = (args.peers or args.peers_opt
             or os.environ.get("REPRO_STORE_PEERS") or None)
    if args.action == "sync":
        if not peers:
            print("cache sync needs peers: "
                  "repro-experiments cache sync HOST:PORT[,...]",
                  file=sys.stderr)
            return 2
        from repro.store.remote import sync_with_peers
        rows = sync_with_peers(store, peers, direction=args.direction,
                               out=print)
        errors = sum(row["errors"] for row in rows)
        skipped = sum(1 for row in rows if row["skipped"])
        if skipped == len(rows):
            print("cache sync: every peer skipped", file=sys.stderr)
            return 1
        return 1 if errors else 0
    if args.action == "stats":
        stats = store.stats()
        print(f"store {stats['root']}")
        for kind in ("program", "trace", "result"):
            row = stats["kinds"].get(kind, {"entries": 0, "bytes": 0})
            print(f"  {kind:8s} {row['entries']:6d} entries  "
                  f"{row['bytes']:>12,d} bytes")
        print(f"  objects  {stats['objects']:6d} files    "
              f"{stats['object_bytes']:>12,d} bytes  "
              f"({stats['orphan_objects']} orphans)")
        if stats.get("journals"):
            complete = stats.get("journals_complete", 0)
            ages = ""
            oldest = stats.get("journal_oldest_seconds")
            newest = stats.get("journal_newest_seconds")
            if oldest is not None and newest is not None:
                ages = (f"  ({complete} complete, ages "
                        f"{_fmt_age(newest)}..{_fmt_age(oldest)})")
            print(f"  journals {stats['journals']:6d} sweeps   "
                  f"{stats['journal_bytes']:>12,d} bytes{ages}")
        if stats["bad_entries"]:
            print(f"  WARNING: {stats['bad_entries']} unreadable index "
                  f"entries (run gc)")
        if peers:
            _remote_stats(peers)
        return 0
    if args.action == "verify":
        report = store.verify()
        print(f"checked {report['checked']} objects: "
              f"{len(report['corrupt_objects'])} corrupt, "
              f"{len(report['unreadable_objects'])} unreadable, "
              f"{len(report['dangling_entries'])} dangling entries, "
              f"{len(report['bad_entries'])} unreadable entries")
        for oid in report["corrupt_objects"]:
            print(f"  corrupt object {oid} (run gc to reclaim)")
        for oid in report["unreadable_objects"]:
            print(f"  unreadable object {oid} (possibly transient; "
                  f"gc leaves it alone)")
        for kind, fp in report["dangling_entries"]:
            print(f"  dangling entry {kind}/{fp}")
        for kind, fp in report["bad_entries"]:
            print(f"  unreadable entry {kind}/{fp}")
        ok = not (report["corrupt_objects"] or report["unreadable_objects"]
                  or report["dangling_entries"] or report["bad_entries"])
        if peers:
            ok = _remote_verify(store, peers, args.sample) and ok
        if ok:
            print("store is clean")
        return 0 if ok else 1
    # gc
    journal_max_age = (
        args.journal_days * 86400.0 if args.journal_days is not None
        else None
    )
    report = store.gc(max_bytes=args.max_bytes, dry_run=args.dry_run,
                      journal_max_age=journal_max_age)
    verb = "would delete" if args.dry_run else "deleted"
    print(f"{verb} {report['deleted_objects']} objects "
          f"({report['freed_bytes']:,d} bytes), evicted "
          f"{report['evicted_entries']} index entries, removed "
          f"{report['tmp_removed']} temp files and "
          f"{report.get('journals_removed', 0)} sweep journals; "
          f"{report['live_bytes']:,d} live bytes remain")
    return 0


def _remote_stats(peers) -> None:
    """The ``cache stats`` remote section: one row per peer."""
    from repro.serve.client import ServeClient, ServeError
    from repro.store.remote import parse_peers
    from repro.store.remote.client import (
        RemoteStoreClient,
        RemoteStoreError,
        StorePeerUnusable,
    )

    print("remote peers:")
    for address in parse_peers(peers):
        client = RemoteStoreClient(address)
        try:
            client.hello()
        except StorePeerUnusable as exc:
            print(f"  {address:21s} unusable ({exc})")
            continue
        except RemoteStoreError as exc:
            print(f"  {address:21s} unreachable ({exc})")
            continue
        counts = []
        for kind in ("program", "trace", "result"):
            try:
                counts.append(f"{kind} {len(client.has(kind, None))}")
            except RemoteStoreError:
                counts.append(f"{kind} ?")
        print(f"  {address:21s} up  ({', '.join(counts)})")
        # A federated daemon's status carries its own STORE_REMOTE_*
        # view (per-peer hits/misses/integrity, replication backlog).
        try:
            remote = (ServeClient.at(address).status()
                      .get("store", {}).get("remote"))
        except ServeError:
            remote = None
        if remote:
            for row in remote.get("peers", []):
                print(f"    -> {row['peer']:21s} {row['state']:9s} "
                      f"hits {row['hits']}  misses {row['misses']}  "
                      f"integrity {row['integrity']}  "
                      f"errors {row['errors']}  "
                      f"replicated {row['replicated']}")
            rep = remote.get("replication", {})
            print(f"    replication backlog {rep.get('backlog', 0)}, "
                  f"dropped {rep.get('dropped', 0)}")


def _remote_verify(store, peers, sample: int) -> bool:
    """``cache verify --peers``: cross-check shared fingerprint oids.

    Samples up to ``sample`` shared fingerprints per kind per peer and
    compares oids.  Trace records are prefix-extensible (the same
    fingerprint legitimately maps to different oids as traces grow),
    so only ``program`` and ``result`` — immutable by construction —
    are cross-checked.
    """
    from repro.store.remote import parse_peers
    from repro.store.remote.client import (
        RemoteStoreClient,
        RemoteStoreError,
        StorePeerUnusable,
    )

    local: dict = {}
    for kind, fp, entry in store.iter_index():
        if entry is not None:
            local.setdefault(kind, {})[fp] = entry["object"]
    ok = True
    for address in parse_peers(peers):
        client = RemoteStoreClient(address)
        try:
            client.hello()
        except (StorePeerUnusable, RemoteStoreError) as exc:
            print(f"peer {address}: skipped ({exc})")
            continue
        for kind in ("program", "result"):
            ours = local.get(kind, {})
            if not ours:
                continue
            try:
                theirs = client.has(kind, None)
            except RemoteStoreError as exc:
                print(f"peer {address}: {kind} listing failed ({exc})")
                continue
            shared = sorted(set(ours) & set(theirs))[:max(0, sample)]
            mismatched = [fp for fp in shared if ours[fp] != theirs[fp]]
            for fp in mismatched:
                ok = False
                print(f"peer {address}: {kind}/{fp} oid mismatch "
                      f"(local {ours[fp][:12]}.. != "
                      f"peer {theirs[fp][:12]}..)")
            print(f"peer {address}: {kind}: {len(shared)} shared "
                  f"fingerprints checked, "
                  f"{len(mismatched)} mismatched")
        print(f"peer {address}: trace records skipped "
              f"(prefix-extensible)")
    return ok


def _fmt_age(seconds: Optional[float]) -> str:
    """A compact human age: ``42s``, ``13m``, ``6h``, ``12d``."""
    if seconds is None:
        return "?"
    seconds = max(0.0, seconds)
    for unit, span in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= span:
            return f"{seconds / span:.0f}{unit}"
    return f"{seconds:.0f}s"


def _profile_cell(args) -> int:
    """Run one representative cell under cProfile; print top-20 by
    cumulative time (and persist the pstats with --profile-dir)."""
    from repro.experiments.configs import ARCHITECTURES, build_processor
    from repro.experiments.runner import RunSpec, cell_fingerprints
    from repro.isa.workloads import prepare_program, ref_trace_seed
    from repro.obs.profiling import profile_call

    arch = args.profile
    if arch not in ARCHITECTURES:
        print(f"unknown architecture {arch!r}; choose from "
              f"{', '.join(ARCHITECTURES)}", file=sys.stderr)
        return 2
    benchmark = args.benchmarks[0]
    width = getattr(args, "widths", [8])[0] if hasattr(args, "widths") else 8
    program = prepare_program(benchmark, optimized=True, scale=args.scale)
    processor = build_processor(
        arch, program, width,
        benchmark=benchmark, optimized=True,
        trace_seed=ref_trace_seed(benchmark),
        engine_mode=args.engine_mode,
    )
    # The same fingerprint the store/journal would use for this cell
    # (warmup 0 — the profiling run has none), so before/after pstats
    # files from identical configurations land on identical names.
    spec = RunSpec(arch, benchmark, width, True)
    fingerprint = cell_fingerprints(
        [spec], args.instructions, 0, args.scale
    )[spec]
    print(f"profiling {arch}/{benchmark}/w{width} for "
          f"{args.instructions} instructions", file=sys.stderr)
    profiled = profile_call(
        processor.run, args.instructions,
        fingerprint=fingerprint, out_dir=args.profile_dir,
    )
    profiled.print_stats()
    if profiled.pstats_path is not None:
        print(f"pstats written to {profiled.pstats_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
