"""Regeneration of the paper's tables from simulations and trace analysis.

* **Table 1**: fetch-unit size comparison — dynamic basic blocks (the
  BTB/EV8 unit), FTB fetch blocks, instruction streams and trace-cache
  traces, measured on the same executed traces.
* **Table 3**: branch misprediction rate and fetch IPC for the 8-wide
  processor, baseline and optimized layouts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.types import BranchKind
from repro.experiments.configs import ARCH_LABELS, ARCHITECTURES
from repro.experiments.reporting import format_table
from repro.experiments.runner import RunMatrixResult
from repro.fetch.ftb import FTB_MAX_LENGTH
from repro.fetch.stream_predictor import MAX_STREAM_LENGTH
from repro.fetch.trace_predictor import MAX_TRACE_BRANCHES, MAX_TRACE_LENGTH
from repro.isa.trace import TraceWalker
from repro.isa.workloads import prepare_program, ref_trace_seed


def fetch_unit_sizes(
    benchmark: str,
    optimized: bool,
    n_instructions: int = 60_000,
    scale: float = 1.0,
) -> Dict[str, float]:
    """Average size (instructions) of each architecture's fetch unit.

    One pass over the dynamic trace measures all four unit definitions:

    * *basic block* — the BTB-architecture unit (also EV8's upper bound
      per prediction);
    * *fetch block* — run ending at an ever-taken branch or the FTB
      length cap (never-taken branches are invisible);
    * *stream* — run ending at a taken branch (not-taken branches are
      invisible in all their instances), capped by the length field;
    * *trace* — up to 16 instructions / 3 conditionals, crossing taken
      branches.
    """
    program = prepare_program(benchmark, optimized=optimized, scale=scale)
    walker = TraceWalker(program, ref_trace_seed(benchmark))

    instr = 0
    blocks = 0
    ever_taken: set = set()

    fetch_blocks = 0
    fetch_len = 0
    streams = 0
    stream_len = 0
    traces = 0
    trace_len = 0
    trace_branches = 0

    for dyn in walker:
        instr += dyn.size
        blocks += 1

        # --- FTB fetch blocks (ever-taken boundaries + length cap) ---
        fetch_len += dyn.size
        baddr = dyn.lb.branch_addr
        if dyn.taken and baddr is not None:
            ever_taken.add(baddr)
        while fetch_len > FTB_MAX_LENGTH:
            fetch_blocks += 1
            fetch_len -= FTB_MAX_LENGTH
        if dyn.kind.is_control and (
            dyn.kind is not BranchKind.COND or baddr in ever_taken
        ):
            if fetch_len:
                fetch_blocks += 1
                fetch_len = 0

        # --- streams (taken boundaries + length cap) ---
        stream_len += dyn.size
        while stream_len > MAX_STREAM_LENGTH:
            streams += 1
            stream_len -= MAX_STREAM_LENGTH
        if dyn.taken and stream_len:
            streams += 1
            stream_len = 0

        # --- traces (16 instructions / 3 conditionals / ret-ind) ---
        trace_len += dyn.size
        if dyn.kind is BranchKind.COND:
            trace_branches += 1
        while trace_len > MAX_TRACE_LENGTH:
            traces += 1
            trace_len -= MAX_TRACE_LENGTH
            trace_branches = 0
        if trace_len and (
            trace_branches >= MAX_TRACE_BRANCHES
            or dyn.kind in (BranchKind.RET, BranchKind.IND)
        ):
            traces += 1
            trace_len = 0
            trace_branches = 0

        if instr >= n_instructions:
            break

    return {
        "basic_block": instr / max(blocks, 1),
        "fetch_block": instr / max(fetch_blocks, 1),
        "stream": instr / max(streams, 1),
        "trace": instr / max(traces, 1),
    }


def table1_text(
    benchmarks: Sequence[str],
    n_instructions: int = 60_000,
    scale: float = 1.0,
) -> str:
    """Table 1: average fetch-unit sizes across the suite."""
    sections = []
    for optimized in (False, True):
        sums = {"basic_block": 0.0, "fetch_block": 0.0,
                "stream": 0.0, "trace": 0.0}
        rows: List[List[object]] = []
        for benchmark in benchmarks:
            sizes = fetch_unit_sizes(benchmark, optimized,
                                     n_instructions, scale)
            rows.append([benchmark, sizes["basic_block"],
                         sizes["fetch_block"], sizes["trace"],
                         sizes["stream"]])
            for key in sums:
                sums[key] += sizes[key]
        n = len(benchmarks)
        rows.append(["mean", sums["basic_block"] / n,
                     sums["fetch_block"] / n, sums["trace"] / n,
                     sums["stream"] / n])
        layout = "optimized" if optimized else "base"
        sections.append(format_table(
            ["benchmark", "basic block", "FTB fetch block",
             "trace", "stream"],
            rows,
            title=f"Table 1: average fetch unit size (instructions), "
                  f"{layout} layout",
        ))
    return "\n\n".join(sections)


def table3_text(
    matrix: RunMatrixResult, benchmarks: Sequence[str], width: int = 8
) -> str:
    """Table 3: misprediction rate + fetch IPC, 8-wide, base/optimized."""
    rows = []
    for arch in ARCHITECTURES:
        row: List[object] = [ARCH_LABELS[arch]]
        for optimized in (False, True):
            results = [
                matrix.get(arch, b, width, optimized) for b in benchmarks
            ]
            branches = sum(r.branches for r in results)
            mispredicts = sum(r.mispredictions for r in results)
            fetched = sum(r.fetched_instructions for r in results)
            fetch_cycles = sum(r.fetch_cycles for r in results)
            row.append(100.0 * mispredicts / max(branches, 1))
            row.append(fetched / max(fetch_cycles, 1))
        rows.append(row)
    return format_table(
        ["fetch engine", "mispred% (base)", "fetch IPC (base)",
         "mispred% (opt)", "fetch IPC (opt)"],
        rows,
        title=f"Table 3: branch misprediction rate and fetch IPC, "
              f"{width}-wide processor",
    )
