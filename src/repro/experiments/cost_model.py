"""Storage and complexity accounting for the four fetch architectures.

The paper's central argument is not raw performance but *performance per
cost*: "a fetch engine will be better if it provides better performance,
but also if it takes fewer resources, requires less chip area, or
consumes less power" (§1), and Table 1 grades the engines low/high on
cost and complexity.  This module makes that grading quantitative: it
counts the bits of predictor/cache state each Table 2 configuration
requires and the number of distinct hardware mechanisms (instruction
paths, predictors, special-purpose stores) each engine coordinates.

The structural findings of §3.1 fall out directly:

* the trace cache needs **two instruction paths** (trace cache + I-cache)
  and **two predictors** (trace predictor + back-up BTB);
* the stream engine needs **one of each**, like a basic-block front-end,
  while its predictor state is comparable to the others' (~45KB budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.branch.perceptron import PerceptronConfig
from repro.branch.twobcgskew import GskewConfig
from repro.fetch.stream_predictor import (
    MAX_STREAM_LENGTH,
    StreamPredictorConfig,
)
from repro.fetch.trace_predictor import (
    MAX_TRACE_BRANCHES,
    MAX_TRACE_LENGTH,
    TracePredictorConfig,
)

#: Physical address width assumed for tag/target sizing (bits).
ADDRESS_BITS = 32
#: Branch-type field: NONE/COND/JUMP/CALL/RET/IND.
TYPE_BITS = 3


@dataclass
class CostReport:
    """Bit counts and mechanism counts for one fetch architecture."""

    name: str
    components: Dict[str, int] = field(default_factory=dict)  # bits
    instruction_paths: int = 1
    predictors: int = 1
    special_stores: int = 0

    @property
    def total_bits(self) -> int:
        return sum(self.components.values())

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8 / 1024

    def add(self, component: str, bits: int) -> None:
        self.components[component] = self.components.get(component, 0) + bits


def _entry_bits(tag_bits: int, payload_bits: int) -> int:
    return tag_bits + payload_bits


def _set_assoc_tag_bits(entries: int, assoc: int) -> int:
    sets = entries // assoc
    index_bits = int(math.log2(sets)) if sets > 1 else 0
    return ADDRESS_BITS - 2 - index_bits  # word-aligned addresses


def _btb_bits(entries: int, assoc: int) -> int:
    tag = _set_assoc_tag_bits(entries, assoc)
    payload = ADDRESS_BITS + TYPE_BITS + 2  # target + kind + 2-bit ctr
    return entries * _entry_bits(tag, payload)


def ev8_cost(config: GskewConfig | None = None,
             btb_entries: int = 2048, btb_assoc: int = 4) -> CostReport:
    """EV8: 4 banks of 2-bit counters + BTB + RAS."""
    config = config or GskewConfig()
    report = CostReport("ev8")
    report.add("2bcgskew banks", 4 * config.bank_entries * 2)
    report.add("BTB", _btb_bits(btb_entries, btb_assoc))
    report.add("RAS", 8 * ADDRESS_BITS)
    report.add("history registers", 2 * config.history_bits)
    report.instruction_paths = 1
    report.predictors = 1
    report.special_stores = 0
    return report


def ftb_cost(perceptron: PerceptronConfig | None = None,
             ftb_entries: int = 2048, ftb_assoc: int = 4) -> CostReport:
    """FTB: fetch target buffer + perceptron weights + local histories."""
    perceptron = perceptron or PerceptronConfig()
    report = CostReport("ftb")
    length_bits = 5  # up to 16-instruction fetch blocks
    tag = _set_assoc_tag_bits(ftb_entries, ftb_assoc)
    report.add("FTB",
               ftb_entries * _entry_bits(
                   tag, ADDRESS_BITS + length_bits + TYPE_BITS))
    weight_bits = 8
    report.add("perceptron weights",
               perceptron.num_perceptrons
               * (perceptron.num_inputs + 1) * weight_bits)
    report.add("local history table",
               perceptron.local_table_entries
               * perceptron.local_history_bits)
    report.add("RAS", 8 * ADDRESS_BITS)
    report.add("history registers", 2 * perceptron.global_history_bits)
    report.instruction_paths = 1
    report.predictors = 1
    report.special_stores = 0
    return report


def stream_cost(config: StreamPredictorConfig | None = None) -> CostReport:
    """Streams: two stream tables + RAS; nothing else."""
    config = config or StreamPredictorConfig()
    report = CostReport("stream")
    length_bits = int(math.ceil(math.log2(MAX_STREAM_LENGTH + 1)))
    payload = ADDRESS_BITS + length_bits + TYPE_BITS + 2  # next+len+type+ctr
    t1_tag = _set_assoc_tag_bits(config.first_entries, config.first_assoc)
    report.add("first-level table",
               config.first_entries * _entry_bits(t1_tag, payload))
    # Path-indexed table: hashed tag (16 bits is ample for aliasing).
    report.add("second-level table",
               config.second_entries * _entry_bits(16, payload))
    report.add("RAS", 8 * ADDRESS_BITS)
    depth = config.dolc.depth
    report.add("path registers", 2 * depth * ADDRESS_BITS)
    report.instruction_paths = 1
    report.predictors = 1
    report.special_stores = 0
    return report


def trace_cost(config: TracePredictorConfig | None = None,
               tc_entries: int = 512,
               btb_entries: int = 1024, btb_assoc: int = 4) -> CostReport:
    """Trace cache: predictor tables + trace storage + back-up BTB."""
    config = config or TracePredictorConfig()
    report = CostReport("trace")
    # Descriptor: start + outcome bits/count + length + type + next.
    length_bits = int(math.ceil(math.log2(MAX_TRACE_LENGTH + 1)))
    descr = (ADDRESS_BITS + MAX_TRACE_BRANCHES + 2 + length_bits
             + TYPE_BITS + ADDRESS_BITS)
    t1_tag = _set_assoc_tag_bits(config.first_entries, config.first_assoc)
    report.add("first-level table",
               config.first_entries * _entry_bits(t1_tag, descr))
    report.add("second-level table",
               config.second_entries * _entry_bits(16, descr))
    # Trace cache data: 16 instructions x 4 bytes per entry (the paper
    # counts "instruction storage only" = 32KB), plus identity tags.
    report.add("trace cache data",
               tc_entries * MAX_TRACE_LENGTH * 32)
    report.add("trace cache tags",
               tc_entries * (ADDRESS_BITS + MAX_TRACE_BRANCHES + 2))
    report.add("backup BTB", _btb_bits(btb_entries, btb_assoc))
    report.add("RAS", 8 * ADDRESS_BITS)
    report.add("path registers", 2 * config.dolc.depth * ADDRESS_BITS)
    report.instruction_paths = 2   # trace cache + instruction cache
    report.predictors = 2          # trace predictor + back-up BTB
    report.special_stores = 1      # the trace cache itself
    return report


def cost_comparison() -> List[CostReport]:
    """All four Table 2 configurations, in the paper's order."""
    return [ev8_cost(), ftb_cost(), stream_cost(), trace_cost()]


def cost_table_text() -> str:
    """Render the quantitative version of Table 1's cost column."""
    from repro.experiments.reporting import format_table

    rows = []
    for report in cost_comparison():
        rows.append([
            report.name,
            round(report.total_kib, 1),
            report.instruction_paths,
            report.predictors,
            report.special_stores,
        ])
    return format_table(
        ["engine", "state (KiB)", "instr paths", "predictors",
         "special stores"],
        rows,
        title="Quantified cost/complexity (Table 1's cost column)",
    )
