"""Table 2 machine configurations, one per fetch architecture.

Every architecture shares the common settings (pipe width 2/4/8, 16
stages, 4-entry FTQ, 64KB 2-way L1I with 4x-width lines, 64KB 2-way L1D,
1MB 4-way L2 at 15 cycles, 100-cycle memory) and differs only in its
prediction machinery:

* ``ev8``    — 2bcgskew (4 x 32K entries, 15-bit history), 2048-entry
  4-way BTB, 8-entry RAS.
* ``ftb``    — 2048-entry 4-way FTB; perceptron (512 perceptrons,
  40-bit global history, 4096 x 14-bit local history); 8-entry RAS.
* ``stream`` — next stream predictor: 1K-entry 4-way first table,
  6K-entry 3-way second table, DOLC 12-2-4-10; 8-entry RAS.
* ``trace``  — next trace predictor: 1K-entry 4-way first level,
  4K-entry 4-way second level, DOLC 9-4-7-9; 32KB 2-way trace cache
  with selective trace storage; 1K-entry 4-way back-up BTB; 8-entry RAS.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.branch.perceptron import PerceptronConfig
from repro.branch.twobcgskew import GskewConfig
from repro.common.params import MachineParams, default_machine
from repro.core.processor import Processor
from repro.core.results import SimulationResult
from repro.fetch.base import FetchEngine
from repro.fetch.ev8 import EV8FetchEngine
from repro.fetch.ftb import FTBFetchEngine
from repro.fetch.stream import StreamFetchEngine
from repro.fetch.stream_predictor import StreamPredictorConfig
from repro.fetch.trace_cache import TraceCacheFetchEngine
from repro.fetch.trace_predictor import TracePredictorConfig
from repro.isa.program import Program
from repro.isa.trace import TraceWalker
from repro.isa.workloads import prepare_program, ref_trace_seed
from repro.memory.hierarchy import MemoryHierarchy

#: Architecture names in the paper's presentation order.
ARCHITECTURES: Tuple[str, ...] = ("ev8", "ftb", "stream", "trace")

#: Display labels matching the paper's figure legends.
ARCH_LABELS: Dict[str, str] = {
    "ev8": "EV8+2bcgskew",
    "ftb": "FTB+perceptron",
    "stream": "Streams",
    "trace": "Tcache+Tpred",
}


def build_engine(
    arch: str,
    program: Program,
    machine: MachineParams,
    mem: MemoryHierarchy,
    **overrides,
) -> FetchEngine:
    """Instantiate one Table 2 fetch engine."""
    if arch == "ev8":
        return EV8FetchEngine(
            program, machine, mem,
            gskew_config=overrides.pop("gskew_config", GskewConfig()),
            **overrides,
        )
    if arch == "ftb":
        return FTBFetchEngine(
            program, machine, mem,
            perceptron_config=overrides.pop(
                "perceptron_config", PerceptronConfig()
            ),
            **overrides,
        )
    if arch == "stream":
        return StreamFetchEngine(
            program, machine, mem,
            predictor_config=overrides.pop(
                "predictor_config", StreamPredictorConfig()
            ),
            **overrides,
        )
    if arch == "trace":
        return TraceCacheFetchEngine(
            program, machine, mem,
            predictor_config=overrides.pop(
                "predictor_config", TracePredictorConfig()
            ),
            **overrides,
        )
    raise ValueError(f"unknown architecture {arch!r}; choose from {ARCHITECTURES}")


def build_processor(
    arch: str,
    program: Program,
    width: int,
    benchmark: str = "?",
    optimized: bool = False,
    trace_seed: Optional[int] = None,
    machine: Optional[MachineParams] = None,
    engine_mode: Optional[str] = None,
    **engine_overrides,
) -> Processor:
    """Assemble a complete simulated machine for one architecture.

    ``engine_mode`` selects accelerated ("accel") or interpreted
    ("interp") execution — results are bit-identical; None/"auto"
    consults ``$REPRO_ACCEL`` and defaults to the accelerator.
    """
    machine = machine or default_machine(width)
    mem = MemoryHierarchy(machine.memory)
    engine = build_engine(arch, program, machine, mem, **engine_overrides)
    walker = TraceWalker(program, trace_seed if trace_seed is not None else 0)
    return Processor(
        engine, walker, machine, mem,
        benchmark=benchmark, optimized=optimized,
        engine_mode=engine_mode,
    )


def simulate(
    arch: str,
    benchmark: str,
    width: int,
    optimized: bool,
    instructions: int,
    scale: float = 1.0,
    warmup: int = 0,
    program: Optional[Program] = None,
    engine_mode: Optional[str] = None,
    **engine_overrides,
) -> SimulationResult:
    """One-call simulation of a (architecture, benchmark, width, layout).

    Pass ``program`` to reuse an already-linked image across runs (the
    benchmark harness does this to amortize generation time).
    """
    if program is None:
        program = prepare_program(benchmark, optimized=optimized, scale=scale)
    processor = build_processor(
        arch, program, width,
        benchmark=benchmark, optimized=optimized,
        trace_seed=ref_trace_seed(benchmark),
        engine_mode=engine_mode,
        **engine_overrides,
    )
    return processor.run(instructions, warmup=warmup)
