"""The stream fetch engine — the paper's contribution (§3, Fig. 4).

Structure per cycle:

* the **next stream predictor** produces one fetch request per cycle —
  a whole instruction stream (start address + length + terminating
  branch type + next stream address) — into the FTQ;
* the **instruction cache** is driven by FTQ requests, one (very wide)
  line per cycle, delivering up to ``width`` instructions; requests
  larger than one access are updated in place (Fig. 6);
* there is a **single instruction path** and a **single predictor**: on
  a stream predictor miss the engine falls back to *sequential
  fetching* — no back-up predictor, no second instruction store.

All branches inside a stream are implicitly predicted not-taken; the
terminating branch is implicitly taken.  A misprediction does *not*
roll back the stream: the processor redirects fetch to the correct
address and the run from there to the next taken branch forms a
*partial stream* with its own predictor entry.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.history import PathHistory
from repro.branch.ras import ReturnAddressStack
from repro.common.params import MachineParams
from repro.common.types import INSTRUCTION_BYTES, BranchKind
from repro.fetch.base import FetchEngine, FetchFragment, scan_run
from repro.fetch.ftq import FetchRequest, FetchTargetQueue
from repro.fetch.stream_predictor import (
    MAX_STREAM_LENGTH,
    NextStreamPredictor,
    StreamPredictorConfig,
    StreamRecord,
)
from repro.isa.program import Program
from repro.isa.trace import DynBlock
from repro.memory.hierarchy import MemoryHierarchy

#: Instructions per sequential-fallback fetch request.
SEQUENTIAL_CHUNK = 16


def stream_path_key(start: int, length: int, use_length: bool = True) -> int:
    """Path-history key for one stream.

    A stream "is fully identified by the starting instruction address
    and the stream length" (§1), so the path register can hash both —
    this lets the path table count iterations of loops whose body and
    exit streams share a starting address.
    """
    if not use_length:
        return start
    return start ^ (length << 20)


class StreamFetchEngine(FetchEngine):
    """Next stream predictor + FTQ + wide-line instruction cache."""

    name = "stream"

    def __init__(
        self,
        program: Program,
        machine: MachineParams,
        mem: MemoryHierarchy,
        predictor_config: StreamPredictorConfig | None = None,
        ras_depth: int = 8,
    ) -> None:
        super().__init__(program, machine, mem)
        self.predictor = NextStreamPredictor(predictor_config)
        self.ras = ReturnAddressStack(ras_depth)
        self._length_keys = self.predictor.config.path_key_includes_length
        self.path = PathHistory(self.predictor.config.dolc.depth)
        self.ftq = FetchTargetQueue(machine.core.ftq_entries)
        self.predict_addr = program.entry_address
        # Commit-side stream reconstruction.
        self._s_start = program.entry_address
        self._s_len = 0
        self._s_mispredicted = False
        # Partial streams pending inside the current stream:
        # (start address, instructions consumed before it).
        self._s_partials: list = []
        # After a redirect from a fell-through stream terminal, the next
        # prediction is a partial stream; its start is not pushed to the
        # path history (the commit side does not push partials either).
        self._skip_next_path_push = False
        # Placeholder value awaiting repair in the speculative path: a
        # fell-through terminal means the current stream's true length
        # is unknown until it commits; the placeholder is patched then.
        self._pending_repair: int | None = None
        self._repair_counter = 0

    # ------------------------------------------------------------------
    def cycle(self, now: int) -> Optional[List[FetchFragment]]:
        if self._waiting_resolve:
            return None
        queue = self.ftq._queue
        request = queue[0] if queue else None
        self._predict_stage(now)
        if now < self._busy_until or request is None:
            return None
        return self._fetch_stage(now, request)

    # -- next stream predictor stage ---------------------------------------
    def _predict_stage(self, now: int) -> None:
        ftq = self.ftq
        if len(ftq._queue) >= ftq.capacity:
            return
        pc = self.predict_addr
        prediction = self.predictor.predict(self.path.spec_view(), pc)
        if prediction is None:
            # No stream known here: fall back to sequential fetching
            # (no back-up predictor in this architecture).  A pending
            # partial-stream push skip is consumed here too: the partial
            # is being fetched via fallback and is never pushed.
            self._skip_next_path_push = False
            self.stats.add("stream_pred_misses")
            ckpt_pre = (self.ras.checkpoint(), tuple(self.path.spec), None)
            nxt = pc + SEQUENTIAL_CHUNK * INSTRUCTION_BYTES
            self.ftq.push(
                FetchRequest(pc, SEQUENTIAL_CHUNK, None, nxt,
                             ckpt_pre=ckpt_pre, is_fallback=True)
            )
            self.predict_addr = nxt
            return
        self.stats.add("stream_pred_hits")
        if self._skip_next_path_push:
            self._skip_next_path_push = False
        else:
            self.path.spec_push(stream_path_key(
                pc, prediction.length, self._length_keys
            ))
        kind = prediction.kind
        ras_pre = self.ras.checkpoint()
        if kind is BranchKind.RET:
            nxt = self.ras.pop()
        elif kind is BranchKind.CALL:
            self.ras.push(pc + prediction.length * INSTRUCTION_BYTES)
            nxt = prediction.next_addr
        else:
            nxt = prediction.next_addr
        path_snap = tuple(self.path.spec)
        # Intermediate branches restore to before the terminal's RAS
        # operation; the terminal restores to just after its own.  The
        # stream start rides along so redirects can repair the length
        # component of the just-pushed path key.
        ckpt_pre = (ras_pre, path_snap, pc)
        ckpt = (self.ras.checkpoint(), path_snap, pc)
        terminal = kind if kind is not BranchKind.NONE else None
        self.ftq.push(
            FetchRequest(pc, prediction.length, terminal, nxt, None, ckpt,
                         ckpt_pre=ckpt_pre)
        )
        self.predict_addr = nxt

    # -- instruction cache stage --------------------------------------------
    def _fetch_stage(
        self, now: int, request: FetchRequest
    ) -> Optional[List[FetchFragment]]:
        addr = request.start
        if not self._on_image(addr):
            self._waiting_resolve = True
            return None
        if not self._fetch_line(now, addr):
            return None
        n = min(self.width, self._instrs_to_line_end(addr), request.remaining)
        controls, avail = scan_run(self.program, addr, n)
        if avail == 0:
            self._waiting_resolve = True
            return None
        n = min(n, avail)
        terminal_addr = (
            request.terminal_addr if request.terminal_kind is not None else None
        )

        # The window is walked control-to-control: one fragment per
        # straight-line run, ending at each recognised control.
        bundle: List[FetchFragment] = []
        frag_start = addr
        ib = INSTRUCTION_BYTES
        end = addr + n * ib
        done_early = False
        emitted = 0
        append = bundle.append
        ckpt_pre = request.ckpt_pre

        for baddr, lb in controls:
            if terminal_addr is not None and terminal_addr < baddr:
                break  # stale-length terminal before the next control
            run = (baddr - frag_start) // ib + 1
            if baddr == terminal_addr:
                # The predicted stream terminal.  The stored branch-type
                # field only drives RAS management; even if it is stale
                # (kind mismatch), the engine follows its own next-stream
                # prediction — a wrong target resolves as an ordinary
                # misprediction.
                append((frag_start, run, request.pred_next, request.ckpt,
                        request.payload))
                emitted += run
                done_early = True
                break
            if lb.kind is BranchKind.COND:
                # Intermediate branch: implicitly not taken.
                append((frag_start, run, baddr + ib, ckpt_pre, None))
                emitted += run
                frag_start = baddr + ib
                continue
            # Unconditional control inside the (predicted or fallback)
            # stream: decode fixup.
            if frag_start < baddr:
                append((frag_start, run - 1, baddr, None, None))
                emitted += run - 1
            self._decode_fixup(now, bundle, baddr, lb)
            emitted += 1
            done_early = True
            break

        if not done_early:
            if terminal_addr is not None and frag_start <= terminal_addr < end:
                # Predicted stream length is stale: there is no branch
                # at the predicted terminal.  Decode fixes this up —
                # continue sequentially and resync the prediction
                # pipeline.
                self.stats.add("length_misfetches")
                run = (terminal_addr - frag_start) // ib + 1
                append((frag_start, run, terminal_addr + ib, None, None))
                emitted += run
                self._resync(now, terminal_addr + ib)
                done_early = True
            elif frag_start < end:
                run = (end - frag_start) // ib
                append((frag_start, run, end, None, None))
                emitted += run

        if done_early:
            # A decode fixup may already have flushed the queue.
            if self.ftq.head() is request:
                self.ftq.pop()
        elif request.consume(n):
            self.ftq.pop()

        self.fetch_cycles += 1
        self.fetched_instructions += emitted
        return bundle

    def _decode_fixup(
        self, now: int, bundle: List[FetchFragment], cursor: int, lb
    ) -> None:
        kind = lb.kind
        self.stats.add("decode_redirects")
        if kind is BranchKind.CALL:
            self.ras.push(cursor + INSTRUCTION_BYTES)
            target = lb.target_addr
        elif kind is BranchKind.JUMP:
            target = lb.target_addr
        elif kind is BranchKind.RET:
            target = self.ras.pop()
        else:  # IND: sequential fetching cannot guess the target
            bundle.append(
                (cursor, 1, None,
                 (self.ras.checkpoint(), tuple(self.path.spec), None), None)
            )
            self.stats.add("indirect_stalls")
            self._waiting_resolve = True
            self.ftq.flush()
            return
        ckpt = (self.ras.checkpoint(), tuple(self.path.spec), None)
        bundle.append((cursor, 1, target, ckpt, None))
        self._resync(now, target)
        self._stall(now, self.decode_bubble)

    def _resync(self, now: int, addr: int) -> None:
        """Restart the prediction pipeline at ``addr`` (decode fixup).

        The path register keeps its current value: fixups happen during
        sequential fallback, whose requests never pushed path entries.
        """
        self.ftq.flush()
        self.predict_addr = addr

    # ------------------------------------------------------------------
    def redirect(self, now, correct_addr, ckpt, resolved=None) -> None:
        self.ftq.flush()
        self.predict_addr = correct_addr
        stream_start = None
        if isinstance(ckpt, tuple):
            ras_ckpt, path_snap, stream_start = ckpt
            self.ras.restore(ras_ckpt)
            self.path.spec = list(path_snap)
        else:
            self.path.recover()
        # A fell-through predicted terminal starts a *partial* stream at
        # the redirect address; partial starts are not part of the path
        # history on either the fetch or the commit side.
        nt_terminal = (
            resolved is not None
            and resolved.kind is BranchKind.COND
            and not resolved.taken
        )
        self._skip_next_path_push = nt_terminal
        # Repair the current stream's path key: the prediction pushed a
        # key with the *predicted* length.
        if (self._length_keys and stream_start is not None
                and resolved is not None and self.path.spec):
            if resolved.taken:
                # The actual stream ended at the resolved branch.
                actual_len = (
                    (resolved.lb.branch_addr - stream_start)
                    // INSTRUCTION_BYTES + 1
                )
                if 0 < actual_len <= MAX_STREAM_LENGTH:
                    self.path.spec[-1] = stream_path_key(
                        stream_start, actual_len, True
                    )
            else:
                # Length unknown until the stream commits: leave a
                # placeholder the commit side will patch.  Placeholders
                # live far outside the code address space so they hash
                # like ordinary (if meaningless) keys until patched.
                self._repair_counter += 1
                placeholder = (0x7F00_0000_0000
                               | (self._repair_counter & 0xFFFFFF))
                self.path.spec[-1] = placeholder
                self._pending_repair = (placeholder, stream_start)
        self._waiting_resolve = False
        self._busy_until = now + 1
        self.stats.add("redirects")

    # ------------------------------------------------------------------
    def note_commit(
        self, dyn: DynBlock, payload: object, mispredicted: bool
    ) -> None:
        """Reconstruct streams in commit order and train the predictor.

        Not-taken branches are invisible here — the property that gives
        the stream predictor its low table pressure — with one twist: a
        *mispredicted* not-taken branch (a predicted stream terminal
        that fell through) marks the start of a **partial stream** (§1
        of the paper).  The enclosing long stream is still recorded
        under its own start address — with the misprediction flag, so
        the path table learns the exit-path variant — and the partial
        stream is recorded under the redirect address so recovery
        fetches hit the predictor immediately.
        """
        if not dyn.taken:
            if mispredicted:
                self._s_partials.append((dyn.next_addr, self._s_len + dyn.size))
                self._s_mispredicted = True
            self._s_len += dyn.size
            return
        self._s_len += dyn.size
        self._s_mispredicted = self._s_mispredicted or mispredicted

        self._record_run(self._s_start, self._s_len, dyn,
                         self._s_mispredicted, push_history=True)
        for partial_start, offset in self._s_partials:
            self._record_run(partial_start, self._s_len - offset, dyn,
                             mispredicted=False, push_history=False)
            self.stats.add("partial_streams_committed")
        self.stats.add("streams_committed")
        self.stats.add("stream_instructions", self._s_len)
        self._s_start = dyn.next_addr
        self._s_len = 0
        self._s_mispredicted = False
        self._s_partials.clear()

    def _record_run(
        self,
        start: int,
        length: int,
        dyn: DynBlock,
        mispredicted: bool,
        push_history: bool,
    ) -> None:
        """Record one (possibly capped) stream ending at ``dyn``."""
        if length <= 0:
            return
        while length > MAX_STREAM_LENGTH:
            # Too long for one predictor entry: record a capped,
            # sequentially-continuing pseudo-stream.
            record = StreamRecord(
                start, MAX_STREAM_LENGTH, BranchKind.NONE,
                start + MAX_STREAM_LENGTH * INSTRUCTION_BYTES,
            )
            self.predictor.update(self.path.commit_view(), record, False)
            if push_history:
                self.path.commit_push(stream_path_key(
                    start, MAX_STREAM_LENGTH, self._length_keys
                ))
            start += MAX_STREAM_LENGTH * INSTRUCTION_BYTES
            length -= MAX_STREAM_LENGTH
        record = StreamRecord(start, length, dyn.kind, dyn.next_addr)
        self.predictor.update(self.path.commit_view(), record, mispredicted)
        if push_history:
            key = stream_path_key(start, length, self._length_keys)
            self.path.commit_push(key)
            if self._pending_repair is not None and (
                    self._pending_repair[1] == start):
                # Patch the speculative placeholder left by a redirect
                # from a fell-through terminal of this very stream.
                try:
                    idx = self.path.spec.index(self._pending_repair[0])
                except ValueError:
                    pass  # already rolled out of the window
                else:
                    self.path.spec[idx] = key
                self._pending_repair = None
