"""The Alpha EV8 fetch architecture (§2.3): 2bcgskew + interleaved BTB.

Fetches sequential instructions up to the first predicted-taken branch,
crossing any number of predicted-not-taken branches inside one aligned
line window — the SEQ.3-style engine the paper uses as its wide
sequential baseline.  All conditional branches in the window are
predicted by the 2bcgskew predictor in parallel (the interleaved BTB /
multiple-predictor arrangement of the real EV8).

Misfetch handling: pre-decode identifies control instructions in the
fetched line; a predicted-taken branch whose target misses in the BTB is
resteered at decode (static target) for a decode-depth bubble.  Indirect
jumps with no BTB target stall until resolution.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.btb import BranchTargetBuffer
from repro.branch.history import HistoryRegister
from repro.branch.ras import ReturnAddressStack
from repro.branch.twobcgskew import GskewConfig, TwoBcGskew
from repro.common.params import MachineParams
from repro.common.types import INSTRUCTION_BYTES, BranchKind
from repro.fetch.base import FetchEngine, FetchFragment, scan_run
from repro.isa.program import Program
from repro.isa.trace import DynBlock
from repro.memory.hierarchy import MemoryHierarchy


class EV8FetchEngine(FetchEngine):
    """Sequential fetch to the first predicted-taken branch."""

    name = "ev8"

    def __init__(
        self,
        program: Program,
        machine: MachineParams,
        mem: MemoryHierarchy,
        gskew_config: GskewConfig | None = None,
        btb_entries: int = 2048,
        btb_assoc: int = 4,
        ras_depth: int = 8,
    ) -> None:
        super().__init__(program, machine, mem)
        self.predictor = TwoBcGskew(gskew_config)
        self.btb = BranchTargetBuffer(btb_entries, btb_assoc)
        self.ras = ReturnAddressStack(ras_depth)
        self.history = HistoryRegister(
            (gskew_config or GskewConfig()).history_bits
        )
        self.fetch_addr = program.entry_address

    # ------------------------------------------------------------------
    def cycle(self, now: int) -> Optional[List[FetchFragment]]:
        if self._is_busy(now):
            return None
        addr = self.fetch_addr
        # EV8 fetches one *aligned* fetch slot per cycle: a sequential
        # run cannot cross the width-instruction alignment boundary the
        # way the FTQ-driven engines' rotate-and-select path can.
        slot_bytes = self.width * INSTRUCTION_BYTES
        to_slot_end = (slot_bytes - (addr & (slot_bytes - 1))) // INSTRUCTION_BYTES
        window = min(self.width, to_slot_end, self._instrs_to_line_end(addr))
        if not self._on_image(addr):
            # Wrong-path fetch ran off the image; idle until redirect.
            self._waiting_resolve = True
            return None
        if not self._fetch_line(now, addr):
            return None

        controls, avail = scan_run(self.program, addr, window)
        if avail == 0:
            self._waiting_resolve = True
            return None
        window = avail

        bundle: List[FetchFragment] = []
        append = bundle.append
        cursor = addr
        ib = INSTRUCTION_BYTES
        next_fetch: Optional[int] = addr + window * ib
        stalled = False
        emitted = 0

        for baddr, lb in controls:
            run = (baddr - cursor) // ib + 1  # through the control instr
            kind = lb.kind
            if kind is BranchKind.COND:
                hist_snap = self.history.spec
                pred, info = self.predictor.predict(baddr, hist_snap)
                self.history.spec_push(pred)
                ckpt = (self.ras.checkpoint(), hist_snap)
                self.stats.add("cond_predictions")
                if pred:
                    target = self._taken_target(now, baddr, lb.target_addr)
                    append((cursor, run, target, ckpt, ("cond", info)))
                    emitted += run
                    next_fetch = target
                    cursor = None
                    break
                append((cursor, run, baddr + ib, ckpt, ("cond", info)))
                emitted += run
                cursor = baddr + ib
                continue
            if kind in (BranchKind.JUMP, BranchKind.CALL):
                target = self._taken_target(now, baddr, lb.target_addr)
                if kind is BranchKind.CALL:
                    self.ras.push(baddr + INSTRUCTION_BYTES)
                ckpt = (self.ras.checkpoint(), self.history.spec)
                append((cursor, run, target, ckpt, None))
                emitted += run
                next_fetch = target
                cursor = None
                break
            if kind is BranchKind.RET:
                if self.btb.lookup(baddr) is None:
                    self._stall(now, self.decode_bubble)
                    self.stats.add("decode_redirects")
                target = self.ras.pop()
                ckpt = (self.ras.checkpoint(), self.history.spec)
                append((cursor, run, target, ckpt, None))
                emitted += run
                next_fetch = target
                cursor = None
                break
            # Indirect jump: only the BTB can supply a target at fetch.
            entry = self.btb.lookup(baddr)
            ckpt = (self.ras.checkpoint(), self.history.spec)
            if entry is not None:
                append((cursor, run, entry.target, ckpt, None))
                next_fetch = entry.target
            else:
                append((cursor, run, None, ckpt, None))
                self.stats.add("indirect_stalls")
                self._waiting_resolve = True
                stalled = True
            emitted += run
            cursor = None
            break

        if cursor is not None:
            end = addr + window * ib
            if cursor < end:
                run = (end - cursor) // ib
                append((cursor, run, end, None, None))
                emitted += run

        if not stalled:
            assert next_fetch is not None
            self.fetch_addr = next_fetch
        self.fetch_cycles += 1
        self.fetched_instructions += emitted
        return bundle

    def _taken_target(self, now: int, baddr: int, static_target: int) -> int:
        """Target of a predicted-taken direct branch: BTB or decode assist."""
        entry = self.btb.lookup(baddr)
        if entry is not None:
            return entry.target
        self._stall(now, self.decode_bubble)
        self.stats.add("decode_redirects")
        return static_target

    # ------------------------------------------------------------------
    def redirect(self, now, correct_addr, ckpt, resolved=None) -> None:
        self.fetch_addr = correct_addr
        if isinstance(ckpt, tuple):
            ras_ckpt, hist_snap = ckpt
            self.ras.restore(ras_ckpt)
            # Per-branch history shadow: restore the register to its
            # value at the branch, then insert the actual outcome.
            self.history.spec = hist_snap
            if resolved is not None and resolved.kind is BranchKind.COND:
                self.history.spec_push(resolved.taken)
        else:
            self.history.recover()
        self._waiting_resolve = False
        self._busy_until = now + 1
        self.stats.add("redirects")

    # ------------------------------------------------------------------
    def note_commit(
        self, dyn: DynBlock, payload: object, mispredicted: bool
    ) -> None:
        kind = dyn.kind
        if kind is BranchKind.NONE:
            return
        baddr = dyn.lb.branch_addr
        if kind is BranchKind.COND:
            if isinstance(payload, tuple) and payload[0] == "cond":
                self.predictor.update(payload[1], dyn.taken)
            else:
                # The branch was fetched without an in-flight prediction
                # (e.g. right after a redirect squashed it); train with
                # commit-time state so the tables still learn.
                _, info = self.predictor.predict(baddr, self.history.commit)
                self.predictor.update(info, dyn.taken)
            self.history.commit_push(dyn.taken)
        target = dyn.next_addr if dyn.taken else 0
        self.btb.update(baddr, target, kind, dyn.taken)
