"""The trace cache fetch architecture (§2.2, Fig. 3).

Primary path: a cascaded **next trace predictor** produces a trace
descriptor per cycle into the FTQ; the **trace cache** (Table 2: 32KB,
2-way, instruction storage only) supplies the whole trace — crossing
taken branches — at up to ``width`` instructions per cycle.

Secondary path: on a trace cache miss, the predicted trace is rebuilt
from the instruction cache one segment (≤ one taken branch) per cycle;
on a trace *predictor* miss the engine fetches from the instruction
cache guided by the back-up BTB (Table 2: 1K-entry, 4-way) with 2-bit
direction counters — the redundant second prediction/storage path whose
cost the stream architecture avoids.

Traces are built by a fill unit at *commit* (wrong-path instructions
never enter the trace cache) and capped at 16 instructions / 3
conditional branches / a return or indirect jump.  **Selective trace
storage** (Ramirez et al., "red & blue traces") keeps traces out of the
trace cache unless they cross a taken branch: purely sequential traces
are served equally well by the instruction cache, so storing them would
only waste trace cache space.  **Partial matching** is available behind
a flag but disabled by default — the paper found it counter-productive
with layout-optimized codes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.branch.btb import BranchTargetBuffer
from repro.branch.history import PathHistory
from repro.branch.ras import ReturnAddressStack
from repro.common.params import MachineParams
from repro.common.stats import CounterBag
from repro.common.types import INSTRUCTION_BYTES, BranchKind
from repro.fetch.base import FetchEngine, FetchFragment, scan_run
from repro.fetch.ftq import FetchRequest, FetchTargetQueue
from repro.fetch.trace_predictor import (
    MAX_TRACE_BRANCHES,
    MAX_TRACE_LENGTH,
    NextTracePredictor,
    TraceDescriptor,
    TracePredictorConfig,
)
from repro.isa.program import Program
from repro.isa.trace import DynBlock
from repro.memory.hierarchy import MemoryHierarchy


class TraceStore:
    """The trace cache proper: set-associative storage of descriptors.

    Indexed by the trace start address; the tag includes the conditional
    outcome bits, so differently-shaped traces from one start address
    occupy distinct entries (no path associativity, per the paper's
    chosen configuration).
    """

    def __init__(self, entries: int = 512, assoc: int = 2) -> None:
        if entries % assoc:
            raise ValueError("entries must be divisible by assoc")
        self.num_sets = entries // assoc
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        self.assoc = assoc
        # Hot-path event counters as plain ints; see the stats property.
        self.lookups = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.selective_skips = 0
        self._sets: List[List[TraceDescriptor]] = [
            [] for _ in range(self.num_sets)
        ]
        self._mask = self.num_sets - 1

    def _set_of(self, start: int) -> List[TraceDescriptor]:
        return self._sets[(start >> 2) & self._mask]

    def lookup(self, descriptor: TraceDescriptor) -> bool:
        """Exact-identity probe (start + outcomes)."""
        ways = self._set_of(descriptor.start)
        self.lookups += 1
        for i, stored in enumerate(ways):
            if (stored.start == descriptor.start
                    and stored.outcomes == descriptor.outcomes):
                if i:
                    ways.insert(0, ways.pop(i))
                return True
        self.misses += 1
        return False

    @property
    def stats(self) -> CounterBag:
        """Counters in mergeable CounterBag form (built on demand)."""
        return CounterBag({
            "lookups": self.lookups,
            "misses": self.misses,
            "fills": self.fills,
            "evictions": self.evictions,
            "selective_skips": self.selective_skips,
        })

    def partial_match(
        self, descriptor: TraceDescriptor
    ) -> Optional[TraceDescriptor]:
        """Longest stored trace from the same start whose outcomes agree
        with a prefix of the predicted outcomes (partial matching)."""
        ways = self._set_of(descriptor.start)
        best: Optional[TraceDescriptor] = None
        for stored in ways:
            if stored.start != descriptor.start:
                continue
            k = len(stored.outcomes)
            if descriptor.outcomes[:k] == stored.outcomes:
                if best is None or stored.length > best.length:
                    best = stored
        return best

    def insert(self, descriptor: TraceDescriptor) -> None:
        ways = self._set_of(descriptor.start)
        for i, stored in enumerate(ways):
            if (stored.start == descriptor.start
                    and stored.outcomes == descriptor.outcomes):
                ways[i] = descriptor
                ways.insert(0, ways.pop(i))
                return
        ways.insert(0, descriptor)
        self.fills += 1
        if len(ways) > self.assoc:
            ways.pop()
            self.evictions += 1


class _FillBuffer:
    """Commit-side fill unit assembling traces from retired blocks."""

    def __init__(self) -> None:
        #: Interned descriptors: loopy codes commit the same few traces
        #: millions of times, and descriptors are immutable — interning
        #: skips re-deriving ``outcome_bits``/``key``/``interior_taken``
        #: and lets the predictor's equality checks hit the identity
        #: fast path.  Bounded (cleared) so pathological trace variety
        #: cannot grow it without limit.
        self._intern: dict = {}
        self.reset(0)

    def reset(self, start: int) -> None:
        self.start = start
        self.segments: List[List[int]] = []  # [addr, count] pairs
        self.outcomes: List[bool] = []
        self.length = 0
        self.call_returns: List[int] = []
        self.mispredicted = False

    @property
    def empty(self) -> bool:
        return self.length == 0

    def add_run(self, addr: int, count: int) -> None:
        if self.empty:
            self.start = addr
        if self.segments and (
            self.segments[-1][0] + self.segments[-1][1] * INSTRUCTION_BYTES
            == addr
        ):
            self.segments[-1][1] += count
        else:
            self.segments.append([addr, count])
        self.length += count

    def finalize(self, terminal_kind: BranchKind, next_addr: int) -> TraceDescriptor:
        # ``length`` is the segment-count sum, so it (and every derived
        # field) is determined by the key below: interning is sound.
        key = (
            self.start,
            tuple(self.outcomes),
            tuple([(a, n) for a, n in self.segments]),
            terminal_kind,
            next_addr,
            tuple(self.call_returns),
        )
        intern = self._intern
        descriptor = intern.get(key)
        if descriptor is None:
            if len(intern) > 4096:  # deterministic bound
                intern.clear()
            descriptor = intern[key] = TraceDescriptor(
                start=self.start,
                outcomes=key[1],
                segments=key[2],
                length=self.length,
                terminal_kind=terminal_kind,
                next_addr=next_addr,
                call_returns=key[5],
            )
        self.reset(next_addr)
        return descriptor


class TraceCacheFetchEngine(FetchEngine):
    """Trace cache + next trace predictor + back-up BTB path."""

    name = "trace"

    def __init__(
        self,
        program: Program,
        machine: MachineParams,
        mem: MemoryHierarchy,
        predictor_config: TracePredictorConfig | None = None,
        tc_entries: int = 512,
        tc_assoc: int = 2,
        btb_entries: int = 1024,
        btb_assoc: int = 4,
        ras_depth: int = 8,
        selective_storage: bool = True,
        partial_matching: bool = False,
    ) -> None:
        super().__init__(program, machine, mem)
        self.predictor = NextTracePredictor(predictor_config)
        self.trace_cache = TraceStore(tc_entries, tc_assoc)
        self.btb = BranchTargetBuffer(btb_entries, btb_assoc)
        self.ras = ReturnAddressStack(ras_depth)
        self.history = PathHistory(self.predictor.config.dolc.depth)
        self.ftq = FetchTargetQueue(machine.core.ftq_entries)
        self.selective_storage = selective_storage
        self.partial_matching = partial_matching
        self.predict_addr = program.entry_address
        # Pre-decode surface: O(1) "is there a conditional branch at this
        # address?" for the per-instruction checkpoint decision.
        self._cond_addrs = program.cond_branch_addrs
        self._fill = _FillBuffer()
        self._fill.reset(program.entry_address)
        # Progress through the head request's descriptor.
        self._cur_req: Optional[FetchRequest] = None
        self._seg_idx = 0
        self._seg_off = 0
        self._tc_hit: Optional[bool] = None
        #: Instructions of the current request still serviceable from a
        #: partially-matched stored trace (partial matching only).
        self._prefix_left = 0
        # Speculative fill tracker: during build-mode fetch the engine
        # emulates the fill unit's trace boundaries so the speculative
        # trace-path history stays aligned with the commit-side pushes.
        self._spec_fill_start = program.entry_address
        self._spec_fill_len = 0
        self._spec_fill_conds = 0

    # ------------------------------------------------------------------
    def cycle(self, now: int) -> Optional[List[FetchFragment]]:
        if self._waiting_resolve:
            return None
        queue = self.ftq._queue
        request = queue[0] if queue else None
        predictor_missed = self._predict_stage(now)
        if now < self._busy_until:
            return None
        if request is not None:
            return self._trace_fetch_stage(now, request)
        if predictor_missed and not self.ftq._queue:
            return self._build_fetch_stage(now)
        return None

    # -- next trace predictor stage -----------------------------------------
    def _predict_stage(self, now: int) -> bool:
        """Returns True when the predictor missed this cycle."""
        ftq = self.ftq
        if len(ftq._queue) >= ftq.capacity:
            return False
        pc = self.predict_addr
        descriptor = self.predictor.predict(self.history.spec_view(), pc)
        if descriptor is None:
            self.stats.add("trace_pred_misses")
            return True
        self.stats.add("trace_pred_hits")
        ras_pre = self.ras.checkpoint()
        self.history.spec_push(descriptor.start)
        hist_snap = tuple(self.history.spec)
        for return_addr in descriptor.call_returns:
            self.ras.push(return_addr)
        if descriptor.terminal_kind is BranchKind.RET:
            nxt = self.ras.pop()
        else:
            nxt = descriptor.next_addr
        ckpt = (self.ras.checkpoint(), hist_snap)
        ckpt_pre = (ras_pre, hist_snap)
        terminal = (
            descriptor.terminal_kind
            if descriptor.terminal_kind is not BranchKind.NONE
            else None
        )
        self.ftq.push(
            FetchRequest(
                descriptor.start, descriptor.length, terminal, nxt,
                None, ckpt, ckpt_pre=ckpt_pre, descriptor=descriptor,
            )
        )
        self.predict_addr = nxt
        self._spec_fill_reset(nxt)
        return False

    def _spec_fill_reset(self, addr: int) -> None:
        self._spec_fill_start = addr
        self._spec_fill_len = 0
        self._spec_fill_conds = 0

    def _spec_fill_advance(self, count: int, conds: int, next_addr: int,
                           terminal: bool) -> None:
        """Emulate fill-unit boundaries for build-mode fetched code."""
        self._spec_fill_len += count
        self._spec_fill_conds += conds
        if (
            self._spec_fill_len >= MAX_TRACE_LENGTH
            or self._spec_fill_conds >= MAX_TRACE_BRANCHES
            or terminal
        ):
            self.history.spec_push(self._spec_fill_start)
            self._spec_fill_reset(next_addr)

    # -- primary path: trace cache / descriptor-guided icache -----------------
    def _trace_fetch_stage(
        self, now: int, request: FetchRequest
    ) -> Optional[List[FetchFragment]]:
        if request is not self._cur_req:
            self._cur_req = request
            self._seg_idx = 0
            self._seg_off = 0
            self._prefix_left = 0
            descriptor: TraceDescriptor = request.descriptor
            hit = self.trace_cache.lookup(descriptor)
            if not hit and self.partial_matching:
                partial = self.trace_cache.partial_match(descriptor)
                if partial is not None and partial.interior_taken:
                    # Serve the stored prefix at trace cache speed; the
                    # remainder of the predicted trace comes from the
                    # instruction cache.
                    self._prefix_left = min(partial.length,
                                            descriptor.length)
                    self.stats.add("tc_partial_hits")
            if hit:
                self.stats.add("tc_hits")
            else:
                self.stats.add("tc_misses")
            self._tc_hit = hit

        descriptor = request.descriptor
        if self._tc_hit or self._prefix_left > 0:
            bundle, emitted = self._deliver_from_trace_cache(request, descriptor)
        else:
            delivered = self._deliver_from_icache(now, request, descriptor)
            if delivered is None:
                return None
            bundle, emitted = delivered
        if not bundle:
            return None
        self.fetch_cycles += 1
        self.fetched_instructions += emitted
        return bundle

    def _deliver_from_trace_cache(
        self, request: FetchRequest, descriptor: TraceDescriptor
    ) -> Tuple[List[FetchFragment], int]:
        """A trace cache (or partial-match prefix) hit: up to ``width``
        instructions, crossing taken branches freely, no instruction
        cache involvement."""
        bundle: List[FetchFragment] = []
        emitted = 0
        budget = self.width
        if not self._tc_hit:
            budget = min(budget, self._prefix_left)
        while budget and self._seg_idx < len(descriptor.segments):
            seg_addr, seg_len = descriptor.segments[self._seg_idx]
            addr = seg_addr + self._seg_off * INSTRUCTION_BYTES
            take = min(budget, seg_len - self._seg_off)
            self._emit_run(bundle, request, descriptor, addr, take)
            emitted += take
            budget -= take
            if not self._tc_hit:
                self._prefix_left -= take
        self._finish_if_done(request, descriptor)
        return bundle, emitted

    def _deliver_from_icache(
        self, now: int, request: FetchRequest, descriptor: TraceDescriptor
    ) -> Optional[Tuple[List[FetchFragment], int]]:
        """Trace cache miss: rebuild the predicted trace from the
        instruction cache, one segment chunk per cycle."""
        seg_addr, seg_len = descriptor.segments[self._seg_idx]
        addr = seg_addr + self._seg_off * INSTRUCTION_BYTES
        if not self._on_image(addr):
            self._waiting_resolve = True
            return None
        if not self._fetch_line(now, addr):
            return None
        take = min(
            self.width,
            self._instrs_to_line_end(addr),
            seg_len - self._seg_off,
        )
        bundle: List[FetchFragment] = []
        self._emit_run(bundle, request, descriptor, addr, take)
        self._finish_if_done(request, descriptor)
        return bundle, take

    def _emit_run(
        self,
        bundle: List[FetchFragment],
        request: FetchRequest,
        descriptor: TraceDescriptor,
        addr: int,
        count: int,
    ) -> None:
        """Append ``count`` instructions from the current segment
        position (never crossing a segment boundary), split into
        fragments at interior conditional branches, with the final
        prediction taken from the trace."""
        segments = descriptor.segments
        last_idx = len(segments) - 1
        seg_idx = self._seg_idx
        seg_off = self._seg_off
        ib = INSTRUCTION_BYTES
        end = addr + count * ib
        at_boundary = seg_off + count == segments[seg_idx][1]
        # The segment-boundary slot takes its prediction from the trace,
        # not from its (conditional) kind — skip it in the split loop.
        skip_addr = end - ib if at_boundary else -1
        ckpt_pre = request.ckpt_pre
        append = bundle.append
        frag_start = addr
        controls, _ = scan_run(self.program, addr, count)
        for baddr, lb in controls:
            if baddr != skip_addr and lb.kind is BranchKind.COND:
                # Interior conditional: implicitly not taken.
                run = (baddr - frag_start) // ib + 1
                append((frag_start, run, baddr + ib, ckpt_pre, None))
                frag_start = baddr + ib
        if at_boundary:
            run = (end - frag_start) // ib
            if seg_idx == last_idx:
                append((frag_start, run, request.pred_next, request.ckpt,
                        request.payload))
            else:
                append((frag_start, run, segments[seg_idx + 1][0],
                        ckpt_pre, None))
            self._seg_idx = seg_idx + 1
            self._seg_off = 0
        else:
            if frag_start < end:
                append((frag_start, (end - frag_start) // ib, end,
                        None, None))
            self._seg_off = seg_off + count

    def _is_cond(self, addr: int) -> bool:
        return addr in self._cond_addrs

    def _finish_if_done(
        self, request: FetchRequest, descriptor: TraceDescriptor
    ) -> None:
        if self._seg_idx >= len(descriptor.segments):
            self.ftq.pop()
            self._cur_req = None
            self._tc_hit = None

    # -- secondary path: BTB-guided build fetch --------------------------------
    def _build_fetch_stage(self, now: int) -> Optional[List[FetchFragment]]:
        addr = self.predict_addr
        if not self._on_image(addr):
            self._waiting_resolve = True
            return None
        if not self._fetch_line(now, addr):
            return None
        window = min(self.width, self._instrs_to_line_end(addr))
        controls, avail = scan_run(self.program, addr, window)
        if avail == 0:
            self._waiting_resolve = True
            return None
        window = avail

        bundle: List[FetchFragment] = []
        append = bundle.append
        frag_start = addr
        ib = INSTRUCTION_BYTES
        next_fetch: Optional[int] = addr + window * ib
        stalled = False
        emitted = 0
        conds = 0
        terminal_taken = False
        for baddr, lb in controls:
            run = (baddr - frag_start) // ib + 1
            kind = lb.kind
            entry = self.btb.lookup(baddr)
            ckpt = (self.ras.checkpoint(), tuple(self.history.spec))
            if kind is BranchKind.COND:
                conds += 1
                taken = entry is not None and entry.predict_taken
                if taken:
                    append((frag_start, run, entry.target, ckpt, None))
                    emitted += run
                    next_fetch = entry.target
                    terminal_taken = True
                    frag_start = None
                    break
                append((frag_start, run, baddr + ib, ckpt, None))
                emitted += run
                frag_start = baddr + ib
                continue
            if kind in (BranchKind.JUMP, BranchKind.CALL):
                if entry is None:
                    self._stall(now, self.decode_bubble)
                    self.stats.add("decode_redirects")
                target = lb.target_addr
                if kind is BranchKind.CALL:
                    self.ras.push(baddr + INSTRUCTION_BYTES)
                append((frag_start, run, target,
                        (self.ras.checkpoint(), ckpt[1]), None))
                emitted += run
                next_fetch = target
                terminal_taken = True
                frag_start = None
                break
            if kind is BranchKind.RET:
                if entry is None:
                    self._stall(now, self.decode_bubble)
                    self.stats.add("decode_redirects")
                target = self.ras.pop()
                append((frag_start, run, target,
                        (self.ras.checkpoint(), ckpt[1]), None))
                emitted += run
                next_fetch = target
                terminal_taken = True
                frag_start = None
                break
            # Indirect.
            if entry is not None:
                append((frag_start, run, entry.target, ckpt, None))
                next_fetch = entry.target
                terminal_taken = True
            else:
                append((frag_start, run, None, ckpt, None))
                self.stats.add("indirect_stalls")
                self._waiting_resolve = True
                stalled = True
            emitted += run
            frag_start = None
            break

        if frag_start is not None:
            end = addr + window * ib
            if frag_start < end:
                run = (end - frag_start) // ib
                append((frag_start, run, end, None, None))
                emitted += run
        if not stalled:
            assert next_fetch is not None
            self.predict_addr = next_fetch
            self._spec_fill_advance(
                emitted, conds, next_fetch, terminal_taken
            )
        self.stats.add("build_cycles")
        self.fetch_cycles += 1
        self.fetched_instructions += emitted
        return bundle

    # ------------------------------------------------------------------
    def redirect(self, now, correct_addr, ckpt, resolved=None) -> None:
        self.ftq.flush()
        self._cur_req = None
        self._tc_hit = None
        self.predict_addr = correct_addr
        if isinstance(ckpt, tuple):
            ras_ckpt, hist_snap = ckpt
            self.ras.restore(ras_ckpt)
            self.history.spec = list(hist_snap)
        else:
            self.history.recover()
        # The fill unit restarts trace selection at the redirect point.
        self._spec_fill_reset(correct_addr)
        self._waiting_resolve = False
        self._busy_until = now + 1
        self.stats.add("redirects")

    # ------------------------------------------------------------------
    def note_commit(
        self, dyn: DynBlock, payload: object, mispredicted: bool
    ) -> None:
        kind = dyn.kind
        if kind is not BranchKind.NONE:
            target = dyn.next_addr if dyn.taken else 0
            self.btb.update(dyn.lb.branch_addr, target, kind, dyn.taken)

        fill = self._fill
        fill.mispredicted = fill.mispredicted or mispredicted
        remaining = dyn.size
        addr = dyn.addr
        # Length-capped chunks: a block larger than the remaining trace
        # space splits the trace at the cap boundary.
        while remaining:
            space = MAX_TRACE_LENGTH - fill.length
            if space == 0:
                self._finalize_trace(BranchKind.NONE, addr)
                continue
            take = min(space, remaining)
            fill.add_run(addr, take)
            addr += take * INSTRUCTION_BYTES
            remaining -= take
        is_last_chunk_branch = kind is not BranchKind.NONE and remaining == 0
        if not is_last_chunk_branch:
            return

        if kind is BranchKind.COND:
            fill.outcomes.append(dyn.taken)
        elif kind is BranchKind.CALL:
            fill.call_returns.append(dyn.lb.fallthrough_addr)

        ends_trace = (
            fill.length >= MAX_TRACE_LENGTH
            or len(fill.outcomes) >= MAX_TRACE_BRANCHES
            or kind in (BranchKind.RET, BranchKind.IND)
            # Trace selection restarts at misprediction redirect points,
            # so future fetches at this address find a matching trace.
            or mispredicted
        )
        if ends_trace:
            self._finalize_trace(kind, dyn.next_addr)

    def _finalize_trace(self, terminal_kind: BranchKind, next_addr: int) -> None:
        fill = self._fill
        if fill.empty:
            return
        mispredicted = fill.mispredicted
        descriptor = fill.finalize(terminal_kind, next_addr)
        # The predictor only reads the history during the call (the
        # hasher tuples its own window), so the pre-push view is passed
        # directly instead of through a defensive copy.
        history_before = self.history.commit_view()
        self.predictor.update(history_before, descriptor, mispredicted)
        self.history.commit_push(descriptor.start)
        if descriptor.interior_taken or not self.selective_storage:
            self.trace_cache.insert(descriptor)
        else:
            self.trace_cache.selective_skips += 1
        self.stats.add("traces_committed")
