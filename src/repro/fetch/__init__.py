"""The four fetch architectures compared in the paper.

* :class:`~repro.fetch.ev8.EV8FetchEngine` — sequential fetch to the
  first predicted-taken branch, 2bcgskew + interleaved BTB.
* :class:`~repro.fetch.ftb.FTBFetchEngine` — decoupled variable-length
  fetch blocks (Reinman/Austin/Calder) + perceptron.
* :class:`~repro.fetch.stream.StreamFetchEngine` — the paper's
  contribution: cascaded next stream predictor + FTQ + wide-line I-cache.
* :class:`~repro.fetch.trace_cache.TraceCacheFetchEngine` — trace cache
  with a cascaded next trace predictor and selective trace storage.
"""

from repro.fetch.base import FetchEngine, FetchFragment
from repro.fetch.ftq import FetchTargetQueue, FetchRequest
from repro.fetch.ev8 import EV8FetchEngine
from repro.fetch.ftb import FTBFetchEngine
from repro.fetch.stream import StreamFetchEngine
from repro.fetch.stream_predictor import NextStreamPredictor, StreamPredictorConfig
from repro.fetch.trace_cache import TraceCacheFetchEngine
from repro.fetch.trace_predictor import NextTracePredictor, TracePredictorConfig

__all__ = [
    "FetchEngine",
    "FetchFragment",
    "FetchTargetQueue",
    "FetchRequest",
    "EV8FetchEngine",
    "FTBFetchEngine",
    "StreamFetchEngine",
    "NextStreamPredictor",
    "StreamPredictorConfig",
    "TraceCacheFetchEngine",
    "NextTracePredictor",
    "TracePredictorConfig",
]
