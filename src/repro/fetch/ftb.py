"""The FTB front-end (Reinman, Austin & Calder) with a perceptron.

A fully decoupled prediction engine: every cycle the Fetch Target Buffer
produces one *fetch block* — a variable-length run of instructions
ending at a branch that has been taken at least once — which is pushed
into the FTQ; the instruction cache is driven by FTQ requests with the
Fig. 6 request-update mechanism.  Never-taken branches are invisible
(they never terminate a fetch block), which is the property the stream
architecture later generalizes to *all not-taken branch instances*.

On an FTB miss the engine falls back to a maximum-length sequential
fetch block; embedded unconditional controls are fixed at decode
(bubble + FTQ flush), and newly-taken branches allocate FTB entries at
commit, splitting any longer block they were embedded in.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.branch.history import HistoryRegister
from repro.branch.perceptron import PerceptronConfig, PerceptronPredictor
from repro.branch.ras import ReturnAddressStack
from repro.common.params import MachineParams
from repro.common.stats import CounterBag
from repro.common.types import INSTRUCTION_BYTES, BranchKind
from repro.fetch.base import FetchEngine, FetchFragment, scan_run
from repro.fetch.ftq import FetchRequest, FetchTargetQueue
from repro.isa.program import Program
from repro.isa.trace import DynBlock
from repro.memory.hierarchy import MemoryHierarchy

#: Maximum fetch-block length in instructions (FTB length field width).
FTB_MAX_LENGTH = 16


class FTBEntry:
    __slots__ = ("tag", "length", "target", "kind")

    def __init__(self, tag: int, length: int, target: int, kind: BranchKind):
        self.tag = tag
        self.length = length
        self.target = target
        self.kind = kind


class FetchTargetBuffer:
    """Set-associative FTB: fetch-block start -> (length, target, kind)."""

    def __init__(self, entries: int = 2048, assoc: int = 4) -> None:
        if entries % assoc:
            raise ValueError("entries must be divisible by assoc")
        self.num_sets = entries // assoc
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.assoc = assoc
        # Hot-path event counters as plain ints; see the stats property.
        self.lookups = 0
        self.misses = 0
        self.allocations = 0
        self.evictions = 0
        self._sets: List[List[FTBEntry]] = [[] for _ in range(self.num_sets)]
        self._mask = self.num_sets - 1
        # A zero mask shifts by zero, so the unconditional expressions
        # in the hot paths cover the single-set degenerate case too.
        self._tag_shift = self._mask.bit_length()

    def _locate(self, addr: int) -> Tuple[List[FTBEntry], int]:
        word = addr >> 2
        return self._sets[word & self._mask], word >> self._tag_shift

    def lookup(self, addr: int) -> Optional[FTBEntry]:
        word = addr >> 2
        ways = self._sets[word & self._mask]
        tag = word >> self._tag_shift
        self.lookups += 1
        if ways and ways[0].tag == tag:  # MRU fast path
            return ways[0]
        for i, entry in enumerate(ways):
            if entry.tag == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return entry
        self.misses += 1
        return None

    @property
    def stats(self) -> CounterBag:
        """Counters in mergeable CounterBag form (built on demand)."""
        return CounterBag({
            "lookups": self.lookups,
            "misses": self.misses,
            "allocations": self.allocations,
            "evictions": self.evictions,
        })

    def probe(self, addr: int) -> Optional[FTBEntry]:
        ways, tag = self._locate(addr)
        for entry in ways:
            if entry.tag == tag:
                return entry
        return None

    def update(self, addr: int, length: int, target: int, kind: BranchKind) -> None:
        """Allocate/refresh; a shorter block wins (newly-taken split)."""
        word = addr >> 2
        ways = self._sets[word & self._mask]
        tag = word >> self._tag_shift
        for i, entry in enumerate(ways):
            if entry.tag == tag:
                if length <= entry.length:
                    entry.length = length
                    entry.target = target
                    entry.kind = kind
                if i:
                    ways.insert(0, ways.pop(i))
                return
        ways.insert(0, FTBEntry(tag, length, target, kind))
        self.allocations += 1
        if len(ways) > self.assoc:
            ways.pop()
            self.evictions += 1


class FTBFetchEngine(FetchEngine):
    """Decoupled FTB front-end + perceptron direction predictor."""

    name = "ftb"

    def __init__(
        self,
        program: Program,
        machine: MachineParams,
        mem: MemoryHierarchy,
        perceptron_config: PerceptronConfig | None = None,
        ftb_entries: int = 2048,
        ftb_assoc: int = 4,
        ras_depth: int = 8,
    ) -> None:
        super().__init__(program, machine, mem)
        self.ftb = FetchTargetBuffer(ftb_entries, ftb_assoc)
        self.predictor = PerceptronPredictor(perceptron_config)
        self.ras = ReturnAddressStack(ras_depth)
        self.history = HistoryRegister(
            (perceptron_config or PerceptronConfig()).global_history_bits
        )
        self.ftq = FetchTargetQueue(machine.core.ftq_entries)
        self.predict_addr = program.entry_address
        # Commit-side fetch-block reconstruction.
        self._c_start = program.entry_address
        self._c_len = 0

    # ------------------------------------------------------------------
    def cycle(self, now: int) -> Optional[List[FetchFragment]]:
        if self._waiting_resolve:
            return None
        # Snapshot the request visible to the cache stage *before* the
        # prediction stage runs: a request becomes fetchable one cycle
        # after it was predicted (the decoupling pipeline boundary).
        queue = self.ftq._queue
        request = queue[0] if queue else None
        self._predict_stage(now)
        if now < self._busy_until or request is None:
            return None
        return self._fetch_stage(now, request)

    # -- prediction stage ------------------------------------------------
    def _predict_stage(self, now: int) -> None:
        ftq = self.ftq
        if len(ftq._queue) >= ftq.capacity:
            return
        pc = self.predict_addr
        ckpt_pre = (self.ras.checkpoint(), self.history.spec)
        entry = self.ftb.lookup(pc)
        if entry is None:
            self.stats.add("ftb_misses")
            length = FTB_MAX_LENGTH
            nxt = pc + length * INSTRUCTION_BYTES
            self.ftq.push(FetchRequest(pc, length, None, nxt,
                                       ckpt_pre=ckpt_pre, is_fallback=True))
            self.predict_addr = nxt
            return
        self.stats.add("ftb_hits")
        term_pc = pc + (entry.length - 1) * INSTRUCTION_BYTES
        payload = None
        kind = entry.kind
        if kind is BranchKind.NONE:
            # A maximum-length sequential block: continues at fall-through.
            nxt = pc + entry.length * INSTRUCTION_BYTES
            self.ftq.push(FetchRequest(pc, entry.length, None, nxt,
                                       ckpt_pre=ckpt_pre))
            self.predict_addr = nxt
            return
        if kind is BranchKind.COND:
            pred, info = self.predictor.predict(term_pc, self.history.spec)
            self.history.spec_push(pred)
            payload = ("term", info)
            nxt = entry.target if pred else term_pc + INSTRUCTION_BYTES
        elif kind is BranchKind.CALL:
            self.ras.push(term_pc + INSTRUCTION_BYTES)
            nxt = entry.target
        elif kind is BranchKind.RET:
            nxt = self.ras.pop()
        else:  # JUMP or IND: stored target
            nxt = entry.target
        # Terminal shadow: RAS after its own operation, history before
        # its own (speculative) outcome push.
        ckpt = (self.ras.checkpoint(), ckpt_pre[1])
        self.ftq.push(
            FetchRequest(pc, entry.length, kind, nxt, payload, ckpt,
                         ckpt_pre=ckpt_pre)
        )
        self.predict_addr = nxt

    # -- instruction cache stage ------------------------------------------
    def _fetch_stage(
        self, now: int, request: FetchRequest
    ) -> Optional[List[FetchFragment]]:
        addr = request.start
        if not self._on_image(addr):
            self._waiting_resolve = True
            return None
        if not self._fetch_line(now, addr):
            return None
        n = min(self.width, self._instrs_to_line_end(addr), request.remaining)
        controls, avail = scan_run(self.program, addr, n)
        if avail == 0:
            self._waiting_resolve = True
            return None
        n = min(n, avail)
        terminal_addr = request.terminal_addr if not request.is_fallback else None

        # Walk control-to-control, one fragment per run.
        bundle: List[FetchFragment] = []
        frag_start = addr
        ib = INSTRUCTION_BYTES
        end = addr + n * ib
        done_early = False
        emitted = 0
        append = bundle.append
        ckpt_pre = request.ckpt_pre

        for baddr, lb in controls:
            run = (baddr - frag_start) // ib + 1
            if baddr == terminal_addr:
                # The predicted terminal branch of this fetch block.
                # A stale kind field does not invalidate the target
                # prediction; follow it and let resolution verify.
                append((frag_start, run, request.pred_next, request.ckpt,
                        request.payload))
                emitted += run
                done_early = True
                break
            if lb.kind is BranchKind.COND:
                # Embedded conditional the FTB does not know: implicitly
                # not taken (it has never been taken).
                append((frag_start, run, baddr + ib, ckpt_pre, None))
                emitted += run
                frag_start = baddr + ib
                continue
            # Unpredicted unconditional control: decode fixup.
            if frag_start < baddr:
                append((frag_start, run - 1, baddr, None, None))
                emitted += run - 1
            self._decode_fixup(now, bundle, baddr, lb)
            emitted += 1
            done_early = True
            break

        if not done_early and frag_start < end:
            run = (end - frag_start) // ib
            append((frag_start, run, end, None, None))
            emitted += run

        if done_early:
            # A decode fixup may already have flushed the queue.
            if self.ftq.head() is request:
                self.ftq.pop()
        elif request.consume(n):
            self.ftq.pop()

        self.fetch_cycles += 1
        self.fetched_instructions += emitted
        return bundle

    def _decode_fixup(
        self, now: int, bundle: List[FetchFragment], cursor: int, lb
    ) -> None:
        """Fix an unpredicted JUMP/CALL/RET/IND at decode (bubble + flush)."""
        kind = lb.kind
        self.stats.add("decode_redirects")
        if kind is BranchKind.CALL:
            self.ras.push(cursor + INSTRUCTION_BYTES)
            target = lb.target_addr
        elif kind is BranchKind.JUMP:
            target = lb.target_addr
        elif kind is BranchKind.RET:
            target = self.ras.pop()
        else:  # IND with no prediction: stall until resolution
            bundle.append(
                (cursor, 1, None,
                 (self.ras.checkpoint(), self.history.spec), None)
            )
            self.stats.add("indirect_stalls")
            self._waiting_resolve = True
            self.ftq.flush()
            return
        ckpt = (self.ras.checkpoint(), self.history.spec)
        bundle.append((cursor, 1, target, ckpt, None))
        self.ftq.flush()
        self.predict_addr = target
        self._stall(now, self.decode_bubble)

    # ------------------------------------------------------------------
    def redirect(self, now, correct_addr, ckpt, resolved=None) -> None:
        self.ftq.flush()
        self.predict_addr = correct_addr
        if isinstance(ckpt, tuple):
            ras_ckpt, hist_snap = ckpt
            self.ras.restore(ras_ckpt)
            self.history.spec = hist_snap
            if resolved is not None and resolved.kind is BranchKind.COND:
                # Only FTB-visible (fetch-block terminating) branches
                # belong in the history; a mispredicted conditional is
                # terminal by definition (it has now been taken, or it
                # was a predicted terminal that fell through).
                self.history.spec_push(resolved.taken)
        else:
            self.history.recover()
        self._waiting_resolve = False
        self._busy_until = now + 1
        self.stats.add("redirects")

    # ------------------------------------------------------------------
    def note_commit(
        self, dyn: DynBlock, payload: object, mispredicted: bool
    ) -> None:
        self._c_len += dyn.size
        if dyn.kind is BranchKind.NONE:
            self._spill_sequential_chunks()
            return

        # The terminal branch must live in the last (<= max-length)
        # chunk; spill any full sequential chunks before it.
        while self._c_len > FTB_MAX_LENGTH:
            self._allocate_sequential_chunk()
        term_pc = dyn.lb.branch_addr
        kind = dyn.kind
        if kind is BranchKind.COND:
            if dyn.taken:
                self.ftb.update(self._c_start, self._c_len,
                                dyn.next_addr, kind)
                self._train_perceptron(payload, term_pc, True)
                self.history.commit_push(True)
                self._c_start = dyn.next_addr
                self._c_len = 0
            else:
                entry = self.ftb.probe(self._c_start)
                terminal_here = (
                    entry is not None
                    and self._c_start
                    + (entry.length - 1) * INSTRUCTION_BYTES
                    == term_pc
                )
                if terminal_here:
                    # An ever-taken branch always ends the fetch block,
                    # even on its not-taken instances.
                    self._train_perceptron(payload, term_pc, False)
                    self.history.commit_push(False)
                    self._c_start = term_pc + INSTRUCTION_BYTES
                    self._c_len = 0
                # Otherwise the branch is invisible to the FTB.
            return
        # Unconditional controls always terminate the block.
        self.ftb.update(self._c_start, self._c_len, dyn.next_addr, kind)
        self._c_start = dyn.next_addr
        self._c_len = 0

    def _spill_sequential_chunks(self) -> None:
        """Allocate max-length sequential-continuation entries for runs
        longer than one fetch block, mirroring fetch-side stepping."""
        while self._c_len > FTB_MAX_LENGTH:
            self._allocate_sequential_chunk()

    def _allocate_sequential_chunk(self) -> None:
        nxt = self._c_start + FTB_MAX_LENGTH * INSTRUCTION_BYTES
        self.ftb.update(self._c_start, FTB_MAX_LENGTH, nxt, BranchKind.NONE)
        self._c_start = nxt
        self._c_len -= FTB_MAX_LENGTH

    def _train_perceptron(self, payload: object, term_pc: int, taken: bool) -> None:
        if isinstance(payload, tuple) and payload[0] == "term":
            self.predictor.update(payload[1], taken)
        else:
            _, info = self.predictor.predict(term_pc, self.history.commit)
            self.predictor.update(info, taken)
