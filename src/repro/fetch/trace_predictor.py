"""The path-based next trace predictor (Jacobson, Rotenberg & Smith).

Cascaded like the stream predictor: a first-level table indexed by the
current fetch address, and a second-level table indexed by a DOLC hash
of the recent *trace id* path (Table 2: 1K-entry 4-way first level,
4K-entry 4-way second level, DOLC 9-4-7-9).  Entries predict the whole
next trace: start address, embedded conditional-branch outcomes, segment
layout, terminating branch kind and successor address, guarded by the
same 2-bit hysteresis replacement counters.

A trace id is (start address, conditional outcome bits); for path
hashing the id is folded into a single address-like key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.hashing import DolcHasher, DolcSpec, make_t1_index_tag
from repro.common.stats import CounterBag
from repro.common.types import BranchKind

#: Trace length cap in instructions (one trace cache line).
MAX_TRACE_LENGTH = 16
#: Maximum conditional branches per trace (outcome bits stored).
MAX_TRACE_BRANCHES = 3


class TraceDescriptor:
    """A complete trace identity + layout.

    ``segments`` are (address, n_instructions) runs; consecutive
    segments are separated by taken branches.  ``call_returns`` lists
    the return addresses pushed by calls inside the trace, in order.

    A plain ``__slots__`` class (the fill unit builds one per committed
    trace, a hot path) with the derived values — ``outcome_bits``, the
    path-hashing ``key``, ``interior_taken`` — precomputed once at
    construction instead of recomputed per property access.  Treat
    instances as immutable; equality compares the full identity exactly
    like the frozen dataclass it replaces (the predictor's hysteresis
    update relies on it).
    """

    __slots__ = ("start", "outcomes", "segments", "length",
                 "terminal_kind", "next_addr", "call_returns",
                 "outcome_bits", "key", "interior_taken")

    def __init__(
        self,
        start: int,
        outcomes: Tuple[bool, ...],
        segments: Tuple[Tuple[int, int], ...],
        length: int,
        terminal_kind: BranchKind,  # NONE when the trace ends by length cap
        next_addr: int,
        call_returns: Tuple[int, ...] = (),
    ) -> None:
        if not segments:
            raise ValueError("trace must have at least one segment")
        total = 0
        for _, n in segments:
            total += n
        if length != total:
            raise ValueError("trace length does not match its segments")
        if len(outcomes) > MAX_TRACE_BRANCHES:
            raise ValueError("too many conditional outcomes in trace")
        self.start = start
        self.outcomes = outcomes
        self.segments = segments
        self.length = length
        self.terminal_kind = terminal_kind
        self.next_addr = next_addr
        self.call_returns = call_returns
        bits = 0
        for outcome in outcomes:
            bits = (bits << 1) | (1 if outcome else 0)
        #: Packed conditional outcomes, oldest in the highest bit.
        self.outcome_bits = bits
        #: Address-like key folding identity for path hashing / tags.
        self.key = start ^ (bits << 3) ^ (len(outcomes) << 1)
        #: True when the trace crosses a taken branch (a "red" trace).
        self.interior_taken = len(segments) > 1

    def _identity(self) -> tuple:
        return (self.start, self.outcomes, self.segments, self.length,
                self.terminal_kind, self.next_addr, self.call_returns)

    def __eq__(self, other: object) -> bool:
        if self is other:
            # The fill unit interns descriptors, so recurring traces
            # compare by identity on the hysteresis hot path.
            return True
        if other.__class__ is not TraceDescriptor:
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TraceDescriptor(@{self.start:#x} +{self.length} "
                f"outcomes={self.outcomes} -> {self.next_addr:#x})")


@dataclass(frozen=True)
class TracePredictorConfig:
    first_entries: int = 1024
    first_assoc: int = 4
    second_entries: int = 4096
    second_assoc: int = 4
    dolc: DolcSpec = DolcSpec(depth=9, older_bits=4, last_bits=7, current_bits=9)

    @property
    def first_sets(self) -> int:
        return self.first_entries // self.first_assoc

    @property
    def second_sets(self) -> int:
        return self.second_entries // self.second_assoc


class _Entry:
    __slots__ = ("tag", "descriptor", "counter")

    def __init__(self, tag: int, descriptor: TraceDescriptor) -> None:
        self.tag = tag
        self.descriptor = descriptor
        self.counter = 1


class _TraceTable:
    """Set-associative descriptor table with hysteresis replacement."""

    def __init__(self, sets: int, assoc: int) -> None:
        if sets & (sets - 1):
            raise ValueError("set count must be a power of two")
        self.sets = sets
        self.assoc = assoc
        self._sets: List[List[_Entry]] = [[] for _ in range(sets)]

    def lookup(self, index: int, tag: int) -> Optional[_Entry]:
        ways = self._sets[index & (self.sets - 1)]
        if ways and ways[0].tag == tag:  # MRU fast path
            return ways[0]
        for i, entry in enumerate(ways):
            if entry.tag == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return entry
        return None

    def present(self, index: int, tag: int) -> bool:
        ways = self._sets[index & (self.sets - 1)]
        return any(entry.tag == tag for entry in ways)

    def update(self, index: int, tag: int, descriptor: TraceDescriptor,
               allow_allocate: bool) -> bool:
        """Hysteresis update; optionally allocate on a tag miss.

        Returns whether the tag was present *before* the update, so the
        commit path gets (presence, update) from one way scan.
        """
        ways = self._sets[index & (self.sets - 1)]
        for i, entry in enumerate(ways):
            if entry.tag == tag:
                if entry.descriptor == descriptor:
                    if entry.counter < 3:
                        entry.counter += 1
                elif entry.counter == 0:
                    entry.descriptor = descriptor
                    entry.counter = 1
                else:
                    entry.counter -= 1
                if i:
                    ways.insert(0, ways.pop(i))
                return True
        if not allow_allocate:
            return False
        if len(ways) < self.assoc:
            ways.insert(0, _Entry(tag, descriptor))
            return False
        # Replace the weakest entry (counter, then LRU) — the hysteresis
        # counter is the replacement metric.
        victim = min(
            range(len(ways)), key=lambda i: (ways[i].counter, -i)
        )
        entry = ways.pop(victim)
        entry.tag = tag
        entry.descriptor = descriptor
        entry.counter = 1
        ways.insert(0, entry)
        return False


class NextTracePredictor:
    """Cascaded next trace predictor over trace-id path history."""

    def __init__(self, config: TracePredictorConfig | None = None) -> None:
        self.config = config or TracePredictorConfig()
        cfg = self.config
        self._t1 = _TraceTable(cfg.first_sets, cfg.first_assoc)
        self._t2 = _TraceTable(cfg.second_sets, cfg.second_assoc)
        self._t1_bits = cfg.first_sets.bit_length() - 1
        self._t1_index_tag = make_t1_index_tag(self._t1_bits)
        self._hasher = DolcHasher(cfg.dolc, cfg.second_sets.bit_length() - 1)
        # Hot-path event counters as plain ints; see the stats property.
        self.lookups = 0
        self.misses = 0
        self.path_hits = 0
        self.address_hits = 0
        self.alias_rejects = 0
        self.updates = 0

    @property
    def stats(self) -> CounterBag:
        """Counters in mergeable CounterBag form (built on demand)."""
        return CounterBag({
            "lookups": self.lookups,
            "misses": self.misses,
            "path_hits": self.path_hits,
            "address_hits": self.address_hits,
            "alias_rejects": self.alias_rejects,
            "updates": self.updates,
        })

    def _t2_index_tag(self, history: Sequence[int], addr: int) -> Tuple[int, int]:
        return self._hasher.index_tag(history, addr)

    # ------------------------------------------------------------------
    def predict(
        self, history: Sequence[int], fetch_addr: int
    ) -> Optional[TraceDescriptor]:
        """Predict the trace starting at ``fetch_addr``; path hit wins."""
        i1, t1 = self._t1_index_tag(fetch_addr)
        e1 = self._t1.lookup(i1, t1)
        i2, t2 = self._t2_index_tag(history, fetch_addr)
        e2 = self._t2.lookup(i2, t2)
        self.lookups += 1
        entry = e2 or e1
        if entry is None:
            self.misses += 1
            return None
        if entry.descriptor.start != fetch_addr:
            # Aliased entry describing a different location: unusable.
            self.alias_rejects += 1
            return None
        if e2 is not None:
            self.path_hits += 1
        else:
            self.address_hits += 1
        return entry.descriptor

    # ------------------------------------------------------------------
    def update(
        self,
        history: Sequence[int],
        descriptor: TraceDescriptor,
        mispredicted: bool,
    ) -> None:
        """Commit-time update (same allocation/upgrade rules as streams)."""
        i1, t1 = self._t1_index_tag(descriptor.start)
        i2, t2 = self._t2_index_tag(history, descriptor.start)
        # One fused scan per table (see NextStreamPredictor.update for
        # the allocation-rule equivalence argument).
        in_t1 = self._t1.update(i1, t1, descriptor, allow_allocate=True)
        self._t2.update(i2, t2, descriptor,
                        allow_allocate=not in_t1 or mispredicted)
        self.updates += 1
