"""The cascaded next stream predictor (paper §3.2, Fig. 5).

Two tables of stream descriptors:

* a first-level table indexed by the current fetch address only
  (Table 2: 1K entries, 4-way);
* a second-level table indexed by a DOLC hash of the path of previous
  stream starting addresses (Table 2: 6K entries, 3-way, DOLC 12-2-4-10).

Each entry holds one stream: starting-address tag, length, terminating
branch type (for RAS management), next stream address, and a 2-bit
hysteresis counter implementing the replacement policy:

* update with matching data -> counter saturating increment;
* update with different data -> counter decrement; at zero the old data
  is replaced (length *and* target) and the counter is set to one.

Allocation follows the paper: a stream enters *both* tables on its first
appearance; afterwards each table is refreshed independently.  A stream
only present in the first table is *upgraded* into the second table when
it is mispredicted; streams that do not need path correlation therefore
never pollute the second table.

The hysteresis counters are what let the predictor hold *overlapping*
streams — the property that lets it ignore an 80%-not-taken branch in
all its not-taken instances instead of splitting the fetch block the way
the FTB must.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.hashing import DolcHasher, DolcSpec, make_t1_index_tag
from repro.common.stats import CounterBag
from repro.common.types import BranchKind

#: Longest stream one predictor entry can describe (length field width).
MAX_STREAM_LENGTH = 64


@dataclass(frozen=True)
class StreamPredictorConfig:
    """Table 2 geometry of the next stream predictor."""

    first_entries: int = 1024
    first_assoc: int = 4
    second_entries: int = 6 * 1024
    second_assoc: int = 3
    dolc: DolcSpec = DolcSpec(depth=12, older_bits=2, last_bits=4, current_bits=10)
    #: Hash (start, length) stream identifiers into the path history
    #: (§1: a stream is identified by its start address *and* length),
    #: letting the path table count iterations of loops whose body and
    #: exit streams share a start address.  Off by default: §3.2 hashes
    #: "the previous fetch addresses", and measured across the suite the
    #: address-only path predicts slightly better (predicted-length
    #: errors poison the speculative register despite redirect repair).
    path_key_includes_length: bool = False

    @property
    def first_sets(self) -> int:
        return self.first_entries // self.first_assoc

    @property
    def second_sets(self) -> int:
        return self.second_entries // self.second_assoc


class StreamRecord:
    """A completed (committed) instruction stream.

    A plain ``__slots__`` class rather than a dataclass: one is built
    per committed stream (and per predictor update), which makes its
    constructor a measurable hot path.  Treat instances as immutable.
    """

    __slots__ = ("start", "length", "kind", "next_addr")

    def __init__(
        self, start: int, length: int, kind: BranchKind, next_addr: int
    ) -> None:
        if not 1 <= length <= MAX_STREAM_LENGTH:
            raise ValueError(f"stream length {length} out of range")
        self.start = start
        self.length = length
        # Terminating branch type; NONE = capped/sequential.
        self.kind = kind
        self.next_addr = next_addr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StreamRecord(@{self.start:#x} +{self.length} "
                f"{self.kind.name} -> {self.next_addr:#x})")


class StreamPrediction:
    """What the predictor hands the fetch engine (one per lookup hit)."""

    __slots__ = ("start", "length", "kind", "next_addr", "from_path_table")

    def __init__(
        self,
        start: int,
        length: int,
        kind: BranchKind,
        next_addr: int,
        from_path_table: bool,
    ) -> None:
        self.start = start
        self.length = length
        self.kind = kind
        self.next_addr = next_addr
        self.from_path_table = from_path_table


class _Entry:
    __slots__ = ("tag", "length", "kind", "next_addr", "counter")

    def __init__(self, tag: int, record: StreamRecord) -> None:
        self.tag = tag
        self.length = record.length
        self.kind = record.kind
        self.next_addr = record.next_addr
        self.counter = 1

    def matches(self, record: StreamRecord) -> bool:
        return (
            self.length == record.length
            and self.next_addr == record.next_addr
            and self.kind == record.kind
        )

    def replace_with(self, record: StreamRecord) -> None:
        self.length = record.length
        self.kind = record.kind
        self.next_addr = record.next_addr
        self.counter = 1


class _StreamTable:
    """One set-associative stream table with hysteresis replacement."""

    def __init__(self, sets: int, assoc: int) -> None:
        if sets & (sets - 1):
            raise ValueError("set count must be a power of two")
        self.sets = sets
        self.assoc = assoc
        self._sets: List[List[_Entry]] = [[] for _ in range(sets)]

    def lookup(self, index: int, tag: int) -> Optional[_Entry]:
        ways = self._sets[index & (self.sets - 1)]
        if ways and ways[0].tag == tag:  # MRU fast path
            return ways[0]
        for i, entry in enumerate(ways):
            if entry.tag == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return entry
        return None

    def present(self, index: int, tag: int) -> bool:
        ways = self._sets[index & (self.sets - 1)]
        return any(entry.tag == tag for entry in ways)

    def update(self, index: int, tag: int, record: StreamRecord,
               allow_allocate: bool) -> bool:
        """Hysteresis update; optionally allocate on a tag miss.

        Returns whether the tag was present *before* the update — the
        commit path needs (presence, update) as a pair, and answering
        both from one way scan halves the hottest table walks.
        """
        ways = self._sets[index & (self.sets - 1)]
        for i, entry in enumerate(ways):
            if entry.tag == tag:
                if entry.matches(record):
                    if entry.counter < 3:
                        entry.counter += 1
                elif entry.counter == 0:
                    entry.replace_with(record)
                else:
                    entry.counter -= 1
                if i:
                    ways.insert(0, ways.pop(i))
                return True
        if not allow_allocate:
            return False
        if len(ways) < self.assoc:
            ways.insert(0, _Entry(tag, record))
            return False
        # Full set: replace the entry with the weakest hysteresis
        # counter (ties broken towards LRU).  The counter is the
        # replacement-policy metric of the paper's §3.2.
        victim = min(
            range(len(ways)), key=lambda i: (ways[i].counter, -i)
        )
        entry = ways.pop(victim)
        entry.tag = tag
        entry.replace_with(record)
        ways.insert(0, entry)
        return False


class NextStreamPredictor:
    """Cascaded (address + path) next stream predictor."""

    def __init__(self, config: StreamPredictorConfig | None = None) -> None:
        self.config = config or StreamPredictorConfig()
        cfg = self.config
        self._t1 = _StreamTable(cfg.first_sets, cfg.first_assoc)
        self._t2 = _StreamTable(cfg.second_sets, cfg.second_assoc)
        self._t1_bits = cfg.first_sets.bit_length() - 1
        self._t1_index_tag = make_t1_index_tag(self._t1_bits)
        self._hasher = DolcHasher(cfg.dolc, cfg.second_sets.bit_length() - 1)
        # Hot-path event counters as plain ints; see the stats property.
        self.lookups = 0
        self.misses = 0
        self.path_hits = 0
        self.address_hits = 0
        self.updates = 0
        self.upgrades = 0

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CounterBag:
        """Counters in mergeable CounterBag form (built on demand)."""
        return CounterBag({
            "lookups": self.lookups,
            "misses": self.misses,
            "path_hits": self.path_hits,
            "address_hits": self.address_hits,
            "updates": self.updates,
            "upgrades": self.upgrades,
        })

    def _t2_index_tag(self, history: Sequence[int], addr: int) -> Tuple[int, int]:
        return self._hasher.index_tag(history, addr)

    # ------------------------------------------------------------------
    def predict(
        self, history: Sequence[int], fetch_addr: int
    ) -> Optional[StreamPrediction]:
        """Look up both tables; a path-table hit wins (paper §3.2)."""
        i1, t1 = self._t1_index_tag(fetch_addr)
        e1 = self._t1.lookup(i1, t1)
        i2, t2 = self._t2_index_tag(history, fetch_addr)
        e2 = self._t2.lookup(i2, t2)
        self.lookups += 1
        entry = e2 or e1
        if entry is None:
            self.misses += 1
            return None
        if e2 is not None:
            self.path_hits += 1
        else:
            self.address_hits += 1
        return StreamPrediction(
            start=fetch_addr,
            length=entry.length,
            kind=entry.kind,
            next_addr=entry.next_addr,
            from_path_table=e2 is not None,
        )

    # ------------------------------------------------------------------
    def update(
        self,
        history: Sequence[int],
        record: StreamRecord,
        mispredicted: bool,
    ) -> None:
        """Commit-time update with a completed stream.

        ``history`` is the commit-side path history *before* this stream
        (mirroring the lookup-side indexing).  Allocation policy:

        * absent from both tables (first appearance): allocate in both;
        * present only in the first table: allocate into the second only
          when the stream was mispredicted (the upgrade rule);
        * present in a table: hysteresis refresh.
        """
        i1, t1 = self._t1_index_tag(record.start)
        i2, t2 = self._t2_index_tag(history, record.start)
        # One fused scan per table: ``update`` reports prior presence.
        # A present t2 entry updates regardless of the allocate flag,
        # and an absent one may allocate exactly when the original
        # ``in_t2 or first_appearance or mispredicted`` rule allowed it
        # (absent means that reduces to ``not in_t1 or mispredicted``).
        in_t1 = self._t1.update(i1, t1, record, allow_allocate=True)
        in_t2 = self._t2.update(i2, t2, record,
                                allow_allocate=not in_t1 or mispredicted)
        self.updates += 1
        if mispredicted and not in_t2:
            self.upgrades += 1
