"""The fetch target queue (FTQ) with the Fig. 6 request-update mechanism.

The FTQ decouples the branch/stream/trace predictor from the instruction
cache (Reinman, Austin & Calder).  Each entry is a fetch request for a
whole prediction unit — a fetch block for the FTB, a full instruction
stream for the stream front-end.  Requests larger than one fetch cycle
are *updated in place*: the start address advances and the remaining
length shrinks by the number of instructions the cache delivered; the
queue advances only when the request is exhausted (Fig. 6 of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.common.types import INSTRUCTION_BYTES, BranchKind


class FetchRequest:
    """One prediction unit queued for instruction cache access."""

    __slots__ = (
        "start",
        "remaining",
        "terminal_kind",
        "pred_next",
        "payload",
        "ckpt",
        "ckpt_pre",
        "is_fallback",
        "descriptor",
    )

    def __init__(
        self,
        start: int,
        length: int,
        terminal_kind: Optional[BranchKind],
        pred_next: Optional[int],
        payload: object = None,
        ckpt: object = None,
        ckpt_pre: object = None,
        is_fallback: bool = False,
        descriptor: object = None,
    ) -> None:
        if length < 1:
            raise ValueError("fetch request must cover at least 1 instruction")
        self.start = start
        self.remaining = length
        self.terminal_kind = terminal_kind
        self.pred_next = pred_next
        self.payload = payload
        #: Recovery checkpoint for the terminal branch (after its own
        #: RAS operation — shadow-copy semantics).
        self.ckpt = ckpt
        #: Recovery checkpoint for *intermediate* branches inside the
        #: request (before the terminal's speculative operations).
        self.ckpt_pre = ckpt_pre
        #: True for sequential-fallback requests (predictor missed).
        self.is_fallback = is_fallback
        #: Trace descriptor for trace-cache requests.
        self.descriptor = descriptor

    @property
    def terminal_addr(self) -> int:
        """Address of the request's last instruction."""
        return self.start + (self.remaining - 1) * INSTRUCTION_BYTES

    def consume(self, n_instructions: int) -> bool:
        """Fig. 6 update: advance start, shrink length.  True when done."""
        if n_instructions < 0 or n_instructions > self.remaining:
            raise ValueError(
                f"cannot consume {n_instructions} of {self.remaining}"
            )
        self.start += n_instructions * INSTRUCTION_BYTES
        self.remaining -= n_instructions
        return self.remaining == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = self.terminal_kind.name if self.terminal_kind else "SEQ"
        return (
            f"FetchRequest(@{self.start:#x} +{self.remaining} {kind} "
            f"-> {self.pred_next if self.pred_next is None else hex(self.pred_next)})"
        )


class FetchTargetQueue:
    """A bounded queue of :class:`FetchRequest` (Table 2: 4 entries)."""

    __slots__ = ("capacity", "_queue", "pushes", "flushes")

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("FTQ capacity must be >= 1")
        self.capacity = capacity
        self._queue: Deque[FetchRequest] = deque()
        self.pushes = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    def push(self, request: FetchRequest) -> None:
        queue = self._queue
        if len(queue) >= self.capacity:  # inline of .full (hot path)
            raise RuntimeError("push into a full FTQ")
        queue.append(request)
        self.pushes += 1

    def head(self) -> Optional[FetchRequest]:
        return self._queue[0] if self._queue else None

    def pop(self) -> FetchRequest:
        return self._queue.popleft()

    def flush(self) -> None:
        """Squash all queued requests (redirect or decode fixup)."""
        if self._queue:
            self.flushes += 1
            self._queue.clear()

    def occupancy(self) -> int:
        return len(self._queue)
