"""Fetch engine scaffolding shared by all four front-ends.

Engine / processor contract
---------------------------

Each cycle the processor calls :meth:`FetchEngine.cycle`, which returns
either ``None`` (front-end stalled: I-cache miss in progress, decode
bubble, empty FTQ, or waiting for a branch to resolve) or a *bundle* —
a list of at most ``width`` :class:`FetchedInstr` tuples
``(addr, pred_next, ckpt, payload)``:

* ``addr`` — instruction address;
* ``pred_next`` — the engine's prediction of the next instruction
  address in program order after this one (``addr + 4`` in the common
  case; the predicted target at branches; ``None`` means the engine has
  no target and stalls until the processor redirects it);
* ``ckpt`` — recovery checkpoint (RAS shadow state) attached to control
  instructions, handed back via :meth:`FetchEngine.redirect`;
* ``payload`` — opaque prediction bookkeeping returned to the engine at
  commit (e.g. 2bcgskew bank indices) so tables can be trained with the
  exact state used at prediction time.

The processor verifies ``pred_next`` against its trace oracle.  On a
divergence it keeps calling ``cycle`` so the engine fetches down its own
(wrong) speculative path — polluting caches and speculative history —
until the branch resolves, then calls :meth:`FetchEngine.redirect`.

Commit feedback: the processor calls :meth:`FetchEngine.note_commit`
once per *correct-path* dynamic block, in commit order, with the payload
of its terminal branch and a mispredicted flag.  All predictor table
updates and commit-side history pushes happen there, as in the paper.

Decode-stage fixups (misfetches) are internal to engines: when fetch
runs over an unpredicted unconditional control instruction, the engine
truncates the bundle, charges itself a decode bubble and resteers —
never surfacing a resolution-time misprediction for something decode
can fix.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from repro.common.params import MachineParams
from repro.common.stats import CounterBag
from repro.common.types import INSTRUCTION_BYTES, BranchKind
from repro.isa.program import LinearBlock, Program
from repro.isa.trace import DynBlock
from repro.memory.hierarchy import MemoryHierarchy

#: (addr, pred_next, ckpt, payload)
FetchedInstr = Tuple[int, Optional[int], object, object]


class FetchEngine(ABC):
    """Base class wiring program, memory and bookkeeping together."""

    name = "base"

    def __init__(
        self,
        program: Program,
        machine: MachineParams,
        mem: MemoryHierarchy,
    ) -> None:
        self.program = program
        self.machine = machine
        self.mem = mem
        self.width = machine.core.width
        self.line_bytes = machine.memory.il1.line_bytes
        self.decode_bubble = machine.core.decode_depth
        self.stats = CounterBag()
        #: The front-end is busy (miss/bubble) until this cycle.
        self._busy_until = 0
        #: Set when the engine has no predicted target and must wait.
        self._waiting_resolve = False

    # ------------------------------------------------------------------
    # the processor-facing API
    # ------------------------------------------------------------------
    @abstractmethod
    def cycle(self, now: int) -> Optional[List[FetchedInstr]]:
        """Advance one cycle; return a fetched bundle or ``None``."""

    @abstractmethod
    def redirect(
        self,
        now: int,
        correct_addr: int,
        ckpt: object,
        resolved: "DynBlock | None" = None,
    ) -> None:
        """Resolution-time redirect to the correct path.

        ``resolved`` is the dynamic block whose terminal branch caused
        the redirect; engines use its actual outcome to repair their
        speculative history registers precisely (per-branch shadow
        checkpoints, as in the EV8 and the paper's §3.2 RAS repair).
        """

    @abstractmethod
    def note_commit(
        self, dyn: DynBlock, payload: object, mispredicted: bool
    ) -> None:
        """Commit-order feedback for one correct-path dynamic block."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _stall(self, now: int, cycles: int) -> None:
        """Charge a front-end bubble (decode redirect, miss latency)."""
        until = now + cycles
        if until > self._busy_until:
            self._busy_until = until

    def _is_busy(self, now: int) -> bool:
        return now < self._busy_until or self._waiting_resolve

    def _instrs_to_line_end(self, addr: int) -> int:
        offset = addr & (self.line_bytes - 1)
        return (self.line_bytes - offset) // INSTRUCTION_BYTES

    def _fetch_line(self, now: int, addr: int) -> bool:
        """Access the I-cache; on a miss, stall and return False."""
        latency = self.mem.fetch_line(addr)
        extra = latency - self.machine.memory.il1.hit_latency
        if extra > 0:
            self.stats.add("icache_miss_stalls")
            self._stall(now, extra)
            return False
        return True

    def _lookup_block(self, addr: int) -> Optional[Tuple[LinearBlock, int]]:
        """Static-dictionary lookup; ``None`` when off the program image.

        Wrong-path fetch can run off the end of the code; engines then
        idle until the mispredicted branch resolves.
        """
        try:
            return self.program.block_containing(addr)
        except ValueError:
            return None

    def stats_dict(self) -> dict:
        return self.stats.as_dict()


def scan_run(
    program: Program, addr: int, max_instrs: int
) -> Tuple[List[Tuple[int, LinearBlock]], int]:
    """Scan a straight-line run of up to ``max_instrs`` from ``addr``.

    Returns ``(controls, n)`` where ``controls`` lists the addresses of
    control instructions (with their blocks) inside the run, in order,
    and ``n`` is the number of instructions actually available before
    the program image ends (== ``max_instrs`` in the normal case).

    This models the pre-decode information fetch engines read alongside
    the instruction bytes.
    """
    controls: List[Tuple[int, LinearBlock]] = []
    scanned = 0
    cursor = addr
    while scanned < max_instrs:
        try:
            lb, offset = program.block_containing(cursor)
        except ValueError:
            break
        take = min(lb.size - offset, max_instrs - scanned)
        branch_addr = lb.branch_addr
        if branch_addr is not None:
            pos = (branch_addr - cursor) // INSTRUCTION_BYTES
            if 0 <= pos < take:
                controls.append((branch_addr, lb))
        scanned += take
        cursor += take * INSTRUCTION_BYTES
    return controls, scanned
