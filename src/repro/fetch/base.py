"""Fetch engine scaffolding shared by all four front-ends.

Engine / processor contract
---------------------------

Each cycle the processor calls :meth:`FetchEngine.cycle`, which returns
either ``None`` (front-end stalled: I-cache miss in progress, decode
bubble, empty FTQ, or waiting for a branch to resolve) or a *bundle* —
a list of :class:`FetchFragment` tuples
``(start, count, pred_next, ckpt, payload)`` covering at most ``width``
instructions in total.  A fragment is one straight-line run of
``count`` instructions at ``start, start+4, ...``:

* every *interior* instruction is implicitly predicted sequential
  (successor ``addr + 4``) and carries no checkpoint or payload —
  engines must end a fragment at every control instruction they
  recognised, so fragment interiors never contain one;
* ``pred_next`` is the engine's prediction for the successor of the
  fragment's *last* instruction (``start + 4*count`` for a plain
  sequential run; the predicted target at branches; ``None`` means the
  engine has no target and stalls until the processor redirects it);
* ``ckpt`` — recovery checkpoint (RAS shadow state) attached to the
  final instruction, handed back via :meth:`FetchEngine.redirect`;
* ``payload`` — opaque prediction bookkeeping for the final
  instruction, returned to the engine at commit (e.g. 2bcgskew bank
  indices) so tables can be trained with the exact state used at
  prediction time.

Handing off whole runs instead of per-instruction tuples is what lets
the processor dispatch a fragment's block segments through the
back-end's batched scheduler in one call each, and it makes bundle
construction O(fragments) instead of O(instructions) in the engines.

The processor verifies the prediction chain against its trace oracle.
On a divergence it keeps calling ``cycle`` so the engine fetches down
its own (wrong) speculative path — polluting caches and speculative
history — until the branch resolves, then calls
:meth:`FetchEngine.redirect`.

Commit feedback: the processor calls :meth:`FetchEngine.note_commit`
once per *correct-path* dynamic block, in commit order, with the payload
of its terminal branch and a mispredicted flag.  All predictor table
updates and commit-side history pushes happen there, as in the paper.

Decode-stage fixups (misfetches) are internal to engines: when fetch
runs over an unpredicted unconditional control instruction, the engine
truncates the bundle, charges itself a decode bubble and resteers —
never surfacing a resolution-time misprediction for something decode
can fix.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from repro.common.params import MachineParams
from repro.common.stats import CounterBag
from repro.common.types import INSTRUCTION_BYTES, BranchKind
from repro.isa.program import LinearBlock, Program
from repro.isa.trace import DynBlock
from repro.memory.hierarchy import MemoryHierarchy

#: (start, count, pred_next, ckpt, payload) — one straight-line run.
FetchFragment = Tuple[int, int, Optional[int], object, object]


class FetchEngine(ABC):
    """Base class wiring program, memory and bookkeeping together."""

    name = "base"

    def __init__(
        self,
        program: Program,
        machine: MachineParams,
        mem: MemoryHierarchy,
    ) -> None:
        self.program = program
        self.machine = machine
        self.mem = mem
        self.width = machine.core.width
        self.line_bytes = machine.memory.il1.line_bytes
        self.decode_bubble = machine.core.decode_depth
        self.stats = CounterBag()
        # The two per-cycle counters are integer attributes (bumped on
        # every productive fetch cycle); they are merged back into the
        # CounterBag view by stats_dict().
        self.fetch_cycles = 0
        self.fetched_instructions = 0
        #: The front-end is busy (miss/bubble) until this cycle.
        self._busy_until = 0
        #: Set when the engine has no predicted target and must wait.
        self._waiting_resolve = False
        # Image bounds for the per-cycle "did wrong-path fetch run off
        # the program?" check: the linked image is gap-free, so a bounds
        # comparison is equivalent to the bisect lookup and much cheaper.
        self._image_start = program.base_address
        self._image_end = program.end_address

    # ------------------------------------------------------------------
    # the processor-facing API
    # ------------------------------------------------------------------
    @abstractmethod
    def cycle(self, now: int) -> Optional[List[FetchFragment]]:
        """Advance one cycle; return a fetched bundle or ``None``."""

    @abstractmethod
    def redirect(
        self,
        now: int,
        correct_addr: int,
        ckpt: object,
        resolved: "DynBlock | None" = None,
    ) -> None:
        """Resolution-time redirect to the correct path.

        ``resolved`` is the dynamic block whose terminal branch caused
        the redirect; engines use its actual outcome to repair their
        speculative history registers precisely (per-branch shadow
        checkpoints, as in the EV8 and the paper's §3.2 RAS repair).
        """

    @abstractmethod
    def note_commit(
        self, dyn: DynBlock, payload: object, mispredicted: bool
    ) -> None:
        """Commit-order feedback for one correct-path dynamic block."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _stall(self, now: int, cycles: int) -> None:
        """Charge a front-end bubble (decode redirect, miss latency)."""
        until = now + cycles
        if until > self._busy_until:
            self._busy_until = until

    def _is_busy(self, now: int) -> bool:
        return now < self._busy_until or self._waiting_resolve

    def _instrs_to_line_end(self, addr: int) -> int:
        offset = addr & (self.line_bytes - 1)
        return (self.line_bytes - offset) // INSTRUCTION_BYTES

    def _fetch_line(self, now: int, addr: int) -> bool:
        """Access the I-cache; on a miss, stall and return False."""
        mem = self.mem
        if mem.il1.access(addr):
            # L1I hit: the hit latency is the pipeline's base cost.
            return True
        extra = mem._fill_from_l2_instr(addr)
        if extra > 0:
            self.stats.add("icache_miss_stalls")
            self._stall(now, extra)
            return False
        return True  # pragma: no cover - fill latencies are positive

    def _on_image(self, addr: int) -> bool:
        """True when ``addr`` is inside the program image (O(1))."""
        return self._image_start <= addr < self._image_end

    def _lookup_block(self, addr: int) -> Optional[Tuple[LinearBlock, int]]:
        """Static-dictionary lookup; ``None`` when off the program image.

        Wrong-path fetch can run off the end of the code; engines then
        idle until the mispredicted branch resolves.
        """
        try:
            return self.program.block_containing(addr)
        except ValueError:
            return None

    def stats_dict(self) -> dict:
        out = self.stats.as_dict()
        out["fetch_cycles"] = out.get("fetch_cycles", 0) + self.fetch_cycles
        out["fetched_instructions"] = (
            out.get("fetched_instructions", 0) + self.fetched_instructions
        )
        return out


def scan_run(
    program: Program, addr: int, max_instrs: int
) -> Tuple[List[Tuple[int, LinearBlock]], int]:
    """Scan a straight-line run of up to ``max_instrs`` from ``addr``.

    Returns ``(controls, n)`` where ``controls`` lists the addresses of
    control instructions (with their blocks) inside the run, in order,
    and ``n`` is the number of instructions actually available before
    the program image ends (== ``max_instrs`` in the normal case).

    This models the pre-decode information fetch engines read alongside
    the instruction bytes.  Results are memoized on the program (they
    are a pure function of the image): fetch engines re-scan the same
    windows on every loop iteration and on every wrong-path replay.
    Callers must treat the returned list as read-only.
    """
    cache = program._scan_cache
    key = (addr, max_instrs)
    hit = cache.get(key)
    if hit is not None:
        return hit
    controls: List[Tuple[int, LinearBlock]] = []
    # One bisect locates the first block; the image is gap-free, so the
    # rest of the run walks the ordered block list directly instead of
    # re-searching per block.
    try:
        lb, offset = program.block_containing(addr)
    except ValueError:
        cache[key] = (controls, 0)
        return controls, 0
    blocks = program.linear_blocks
    n_blocks = len(blocks)
    idx = lb.index
    scanned = 0
    cursor = addr
    none_kind = BranchKind.NONE
    while scanned < max_instrs:
        size = lb.size
        take = size - offset
        room = max_instrs - scanned
        if take > room:
            take = room
        if lb.kind is not none_kind:
            branch_addr = lb.addr + (size - 1) * INSTRUCTION_BYTES
            pos = (branch_addr - cursor) // INSTRUCTION_BYTES
            if 0 <= pos < take:
                controls.append((branch_addr, lb))
        scanned += take
        cursor += take * INSTRUCTION_BYTES
        idx += 1
        if idx >= n_blocks:
            break
        lb = blocks[idx]
        offset = 0
    cache[key] = (controls, scanned)
    return controls, scanned
