"""Dump generated kernel source: ``python -m repro.accel ARCH [WIDTH]``.

Prints the specialized run-kernel (processor cycle loop + inlined
segment scheduler) and the engine's cycle kernel for one architecture,
exactly as they are compiled at runtime — the first stop when a kernel
misbehaves or a transliteration needs review.
"""

from __future__ import annotations

import argparse

from repro.experiments.configs import ARCHITECTURES, build_processor
from repro.isa.workloads import prepare_program, ref_trace_seed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.accel",
        description="print the generated accelerator kernel source",
    )
    parser.add_argument("arch", choices=ARCHITECTURES)
    parser.add_argument("width", nargs="?", type=int, default=8,
                        choices=(2, 4, 8))
    parser.add_argument("--which", choices=("run", "cycle", "both"),
                        default="both")
    parser.add_argument("--chains", action="store_true",
                        help="print only the generated transition-follow "
                             "block (the chained-template fast path) "
                             "instead of the full kernels")
    args = parser.parse_args(argv)

    from repro import accel

    # A tiny image is enough: kernels depend only on the configuration.
    program = prepare_program("gzip", optimized=True, scale=0.1)
    processor = build_processor(
        args.arch, program, args.width,
        benchmark="gzip", optimized=True,
        trace_seed=ref_trace_seed("gzip"),
        engine_mode="interp",  # do not build/bind kernels twice
    )
    sources = accel.kernel_sources(processor)
    if args.chains:
        print(f"# ---- chain follow: {args.arch} width={args.width} ----")
        print(sources["chains"])
        return 0
    if args.which in ("run", "both"):
        print(f"# ---- run kernel: {args.arch} width={args.width} ----")
        print(sources["run"])
    if args.which in ("cycle", "both"):
        print(f"# ---- cycle kernel: {args.arch} width={args.width} ----")
        print(sources["cycle"] or "# (no engine specialization)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
