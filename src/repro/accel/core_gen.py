"""Specialized ``Processor.run`` kernels: cycle loop + inlined scheduler.

The generated kernel is a transliteration of the interpreted hot path
with three structural changes, none of which can alter results:

* the back-end's **segment scheduler is inlined** into the cycle loop —
  the per-segment generator ``send`` round-trip, its argument tuple and
  the park/hoist protocol disappear, and all scheduling state (issue
  occupancy, completion ring cursor, commit chain, occupancy tail)
  lives in the one frame's locals for the whole run;
* every **config constant is folded** into the source as a literal —
  pipe width, dispatch depth, ROB size, the three D-cache latency
  levels, ring masks, template preconditions — so the branches they
  gate compile to immediate comparisons;
* **result counters and the trace cursor are locals**: the per-block
  ``result.<counter> += 1`` attribute round-trips and the per-block
  walker ``__next__`` call become local int bumps and a list index,
  published back to their objects once at the end of the run.

Two further bit-exact micro-optimizations ride along: the occupancy
tail *shift* (a pure function of the packed tail and the cycle delta)
is memoized, and the warmup snapshot copies the local counter tuple
instead of the result dataclass.  The schedule-template dict and its
entry format are **shared unchanged** with the interpreted scheduler,
so mixing modes on one backend stays coherent and warm templates carry
across.

Parity is pinned by ``tests/accel/`` (all four engines x widths 2/4/8,
cold and warm stores) and transitively by the canonical-dispatch parity
suite in ``tests/core/test_backend.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.common.types import BranchKind, InstrClass
from repro.core.backend import (
    _CHAIN_DEEP_LIMIT,
    _CHAIN_EDGE_LIMIT,
    _CHAIN_G_BUCKET,
    _CHAIN_G_MAX,
    _CHAIN_LVL_LIMIT,
    _CHAIN_SKEY_MAX,
    _IU_LIMIT,
    _IU_MASK,
    _TPL_CACHE_LIMIT,
    _TPL_K_RADIX,
    _TPL_MAX_DELTA,
    _TPL_MAX_TAIL,
    _TPL_MAX_TAIL_DELTA,
    _pack_tail,
)
from repro.core.results import SimulationResult
from repro.isa.program import segment_plan

from repro.accel.codegen import CompiledKernel, compile_kernel

__all__ = ["chain_follow_source", "run_kernel", "run_kernel_source"]

#: Sentinel "no queued entry" cycle, mirroring processor.py.
_NEVER = 1 << 62

# Inlined D-side cache probe (Cache.access of L1D, falling to L2):
# sets ``lvl`` to the hit level (1/2/3) with exactly the interpreter's
# access/LRU/fill/counter semantics.  L1D counters live in run() locals
# (the data path is the only L1D client); L2 counters stay attribute
# updates because the instruction side shares that cache mid-run.
_PROBE_BLOCK = """\
line = a >> $DL1_OFF
ways = dl1_sets[line & $DL1_MASK]
tag = line >> $DL1_SHIFT
dl1_acc += 1
if ways and ways[0] == tag:
    lvl = 1
else:
    try:
        ways.remove(tag)
    except ValueError:
        dl1_miss += 1
        ways.insert(0, tag)
        if len(ways) > $DL1_ASSOC:
            ways.pop()
            dl1_evict += 1
        line = a >> $L2_OFF
        ways = l2_sets[line & $L2_MASK]
        tag = line >> $L2_SHIFT
        l2_cache.accesses += 1
        if ways and ways[0] == tag:
            lvl = 2
        else:
            try:
                ways.remove(tag)
            except ValueError:
                l2_cache.misses += 1
                ways.insert(0, tag)
                if len(ways) > $L2_ASSOC:
                    ways.pop()
                    l2_cache.evictions += 1
                lvl = 3
            else:
                ways.insert(0, tag)
                lvl = 2
    else:
        ways.insert(0, tag)
        lvl = 1
"""


def _indent(block: str, spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(
        pad + line if line else line for line in block.splitlines()
    )


# Chained-template transition follow: the first branch of the inlined
# segment scheduler.  After a template replay, its transition table maps
# (successor segment, dispatch gap) straight to the successor template —
# no key packing, no hashing, no template-dict probe.  The stateful
# D-cache probes still run (through the edge's memory plan) and pick the
# successor via the per-level map; "deep" completion deltas (dependences
# reaching past the previous segment) are re-verified against the record
# before the edge is trusted, and the successor's store generation is
# checked so an evicted template can never replay through a stale edge.
# With $CHAINS_ON folded to False the whole branch compiles away and the
# keyed path is the only template route.
_CHAIN_BLOCK = """\
tpl = None
key = None
levels = 0
lvl_map = None
edge_new = None
edge_miss = False
if $CHAINS_ON:
    prev_tpl = cur_tpl
    cur_tpl = None
    ek = 0
    dmap_install = None
    if prev_tpl is not None:
        g = D - tail_cycle
        if g >= prev_tpl[9]:
            g = $CHAIN_G_BUCKET
        elif not 0 <= g <= $CHAIN_G_MAX:
            # The bucket sentinel is reserved: a raw gap of exactly
            # $CHAIN_G_BUCKET below g_big must not alias the bucket.
            g = -1
        if g >= 0 and skey < $CHAIN_SKEY_MAX:
            if floor <= D + 1 and entries + take <= $IU_LIMIT:
                ek = (dyn.addr * 4096 + skey) * 512 + g
                rec = prev_tpl[8].get(ek)
                if rec is None:
                    edge_miss = True
                elif rec.__class__ is tuple:
                    # Fast edge (no memory plan, no deep reach): the
                    # value IS the successor template — one probe, one
                    # generation check, straight to replay.
                    if rec[7] == gen:
                        tpl = rec
                        hits += 1
                        tail_cycle = D
                    else:
                        edge_miss = True
                else:
                    (deep_offs, mem_plan, lvl_span, tail2,
                     tail_k2, dmap) = rec
                    dv = 0
                    okc = True
                    if deep_offs:
                        base = D + 1
                        for o in deep_offs:
                            v = completions[(cnt + o) & 127] - base
                            if v <= 0:
                                dv = dv * $K_RADIX
                            elif v <= $TPL_MAX_DELTA:
                                dv = dv * $K_RADIX + v
                            else:
                                okc = False
                                break
                    if okc:
                        hit2 = dmap.get(dv)
                        if hit2 is None:
                            edge_miss = True
                            dmap_install = dmap
                        else:
                            K0, rec_map = hit2
                            if mem_plan:
                                for (slot_key, is_load, base_a, stride,
                                     span) in mem_plan:
                                    k = counters_get(slot_key, 0)
                                    counters[slot_key] = k + 1
                                    a = base_a + (k * stride) % span
$PROBE_CHAIN
                                    if is_load:
                                        levels = levels * 4 + lvl
                                        loads += 1
                                    else:
                                        stores += 1
                            tpl = rec_map.get(levels)
                            if tpl is not None and tpl[7] == gen:
                                # Chain hit: successor reached with no
                                # key build, no hash, no template-dict
                                # probe.
                                hits += 1
                                tail_cycle = D
                            else:
                                # Profile known, level vector new (or
                                # the successor was evicted): the full
                                # key is pure in the profile — no
                                # offsets walk, no tail shift.
                                tpl = None
                                key = (dyn.addr, skey,
                                       K0 * lvl_span + levels, tail_k2)
                                tail = tail2
                                tail_k = tail_k2
                                tail_cycle = D
                                lvl_map = rec_map
                                tpl = templates_get(key)
"""
_CHAIN_BLOCK = _CHAIN_BLOCK.replace("$PROBE_CHAIN", _indent(_PROBE_BLOCK, 36))

_TEMPLATE = '''\
def make_run(processor, engine_cycle=None, engine_note_commit=None):
    """Bind one processor into the specialized run kernel."""
    engine = processor.engine
    backend = processor.backend
    cursor = processor.cursor
    mem = processor.mem
    if backend._lvl_lat != ($LVL0, $LVL1, $LVL2):
        raise RuntimeError("kernel compiled for different memory latencies")
    if backend.width != $WIDTH:
        raise RuntimeError("kernel compiled for different width")
    walker = cursor._walker
    record = walker.record
    rec_blocks = record.blocks
    rec_extend = record.extend
    if engine_cycle is None:
        engine_cycle = engine.cycle
    note_commit = engine_note_commit or engine.note_commit
    engine_redirect = engine.redirect
    stats_dict = engine.stats_dict
    mem_stats = mem.stats_summary
    completions = backend._completions
    iu_vals = backend._iu_vals
    iu_stamps = backend._iu_stamps
    templates = backend._templates
    counters = backend._load_counters
    counters_get = counters.get
    templates_get = templates.get
    dl1_cache = mem.dl1
    l2_cache = mem.l2
    dl1_sets = dl1_cache._sets
    l2_sets = l2_cache._sets
    iu_compact = backend._iu_compact
    make_plan = segment_plan
    pack_tail = _pack_tail
    # The tail-shift memo is pure integer arithmetic on the injective
    # packed-tail encoding (widths <= 16 are part of the encoding), so
    # one process-wide store serves every kernel and stays warm.
    shift_memo = SHIFT_MEMO
    shift_memo_get = shift_memo.get
    KIND_NONE = BranchKind.NONE
    KIND_COND = BranchKind.COND
    KIND_RET = BranchKind.RET

    def run(max_instructions, warmup=0):
        backend._sync()
        result = SimulationResult(
            benchmark=processor.benchmark,
            engine=engine.name,
            width=$WIDTH,
            optimized=processor.optimized,
            cycles=0,
            instructions=0,
        )

        now = 0
        scheduled = 0
        warm_state = None
        diverged = False
        pending = None
        commit_queue = deque()
        inflight = deque()
        inflight_count = 0
        commit_head = $NEVER
        inflight_head = $NEVER
        commit_pop = commit_queue.popleft
        commit_push = commit_queue.append
        inflight_pop = inflight.popleft
        inflight_push = inflight.append

        # Result counters as frame locals, published once at the end.
        r_branches = 0
        r_cond_branches = 0
        r_taken = 0
        r_misp = 0
        r_cond_misp = 0
        r_ret_misp = 0
        r_indirect = 0
        r_wrong = 0
        r_rob_stall = 0
        r_idle = 0
        r_fetch_cycles = 0
        r_fetched = 0

        # Trace replay state: the record's block list is append-only,
        # so the kernel indexes it directly and extends on exhaustion.
        pos = walker._pos
        walked_blocks = walker.blocks_walked
        walked_instr = walker.instructions_walked
        blocks_len = len(rec_blocks)
        cur_dyn = cursor.dyn
        cur_off = cursor.offset

        # Hoisted scheduler state (the generator's frame locals).
        iu_spill = backend._iu_spill
        entries = backend._iu_entries
        floor = backend._issue_floor
        cnt = backend._count
        last = backend._last_commit
        cic = backend._commits_in_cycle
        max_issue = backend._max_issue
        tail = backend._tail
        tail_cycle = backend._tail_cycle
        loads = backend.load_accesses
        stores = backend.store_accesses
        tail_k = pack_tail(tail)
        dl1_acc = dl1_cache.accesses
        dl1_miss = dl1_cache.misses
        dl1_evict = dl1_cache.evictions
        # Chained-template state: the previous segment's template (the
        # transition-table source), the template-store generation, and
        # the segment / chain-hit counters (with this run's baselines).
        cur_tpl = backend._chain_tpl
        segs = backend.seg_count
        hits = backend.chain_hits
        seg_base = segs
        chain_base = hits
        gen = templates.generation

        warm_target = warmup if warmup else $NEVER
        cycle_limit = 400 * max_instructions + 1_000_000

        # The publish block runs even when the wedge guard raises, so
        # post-mortem inspection (cache counters, backend state, walker
        # position) reflects the failed run exactly like the interpreted
        # path's in-place updates do.
        try:
            while scheduled < max_instructions and cur_dyn is not None:
                now += 1
                if now > cycle_limit:
                    raise RuntimeError(
                        f"simulation wedged: {scheduled} instructions in {now} "
                        f"cycles (engine={engine.name}, pending={pending}, "
                        f"diverged={diverged}, idle={r_idle})"
                    )

                while commit_head <= now:
                    _, dyn, payload, misp = commit_pop()
                    note_commit(dyn, payload, misp)
                    commit_head = commit_queue[0][0] if commit_queue else $NEVER
                while inflight_head <= now:
                    # Flat-int entries: commit * 2**20 + instruction count.
                    inflight_count -= inflight_pop() & 1048575
                    inflight_head = (inflight[0] >> 20) if inflight else $NEVER

                if pending is not None and now >= pending[0]:
                    engine_redirect(now, pending[1], pending[2], pending[4])
                    pending = None
                    diverged = False
                    continue

                if not diverged and inflight_count >= $ROB_SIZE:
                    # Window full: jump to the next queued event in bulk
                    # (bit-exact; see processor.py for the argument).
                    nxt = (commit_head if commit_head < inflight_head
                           else inflight_head)
                    if pending is not None and pending[0] < nxt:
                        nxt = pending[0]
                    r_rob_stall += nxt - now
                    now = nxt - 1
                    continue

                bundle = engine_cycle(now)
                if not bundle:
                    # Bulk-jump only resolution-wait stretches: every
                    # engine is a contractual no-op while
                    # _waiting_resolve is set, but an I-cache busy
                    # window still runs the decoupled prediction stage
                    # (see processor.py).
                    if engine._waiting_resolve and pending is not None:
                        nxt = (commit_head if commit_head < inflight_head
                               else inflight_head)
                        if pending[0] < nxt:
                            nxt = pending[0]
                        if nxt > now + 1:
                            r_idle += nxt - now
                            now = nxt - 1
                        else:
                            r_idle += 1
                    else:
                        r_idle += 1
                    continue

                if diverged:
                    for frag in bundle:
                        r_wrong += frag[1]
                    continue

                dispatch_cycle = now + $DISPATCH_DEPTH
                block_instrs = 0
                block_commit = 0
                correct_in_bundle = 0
                frag_iter = iter(bundle)
                for frag in frag_iter:
                    start, count, pred_next, ckpt, payload = frag
                    assert start == cur_dyn.addr + cur_off * 4, (
                        f"engine fetched {start:#x}, trace expects "
                        f"{cur_dyn.addr + cur_off * 4:#x} at cycle {now}"
                    )
                    remaining = count
                    while remaining:
                        dyn = cur_dyn
                        size = dyn.size
                        take = size - cur_off
                        if take > remaining:
                            take = remaining

                        # ==== inlined segment scheduler ======================
                        # dispatch_segment(dyn.lb, cur_off, take, D) with the
                        # generator protocol removed; see the module docstring.
                        D = dispatch_cycle
                        segs += 1
                        skey = cur_off * 32 + take
$CHAIN_FOLLOW
                        if tpl is None and key is None:
                            # -- keyed path: shift tail, pack key, probe -----
                            if tail_cycle != D:
                                if tail:
                                    shift = D - tail_cycle
                                    if tail_k:
                                        # Encodable tails bound every delta,
                                        # so a shift past that bound empties
                                        # the tail and smaller shifts hit the
                                        # pure-function memo keyed on the
                                        # packed encoding.
                                        if shift > $TAIL_DMAX:
                                            tail = ()
                                            tail_k = 0
                                        else:
                                            mk = tail_k * 512 + shift
                                            hit = shift_memo_get(mk)
                                            if hit is not None:
                                                tail, tail_k = hit
                                            else:
                                                tail = tuple([
                                                    (dc - shift, n)
                                                    for dc, n in tail
                                                    if dc > shift
                                                ])
                                                tail_k = pack_tail(tail)
                                                if len(shift_memo) > 32768:
                                                    shift_memo.clear()
                                                shift_memo[mk] = (tail, tail_k)
                                    else:
                                        tail = tuple([
                                            (dc - shift, n)
                                            for dc, n in tail if dc > shift
                                        ])
                                        tail_k = pack_tail(tail)
                                elif tail is None:
                                    if max_issue <= D:
                                        tail = ()
                                        tail_k = 0
                                    elif max_issue - D <= $TAIL_DMAX:
                                        t = []
                                        for c in range(D + 1, max_issue + 1):
                                            s = c & $IU_MASK
                                            if iu_stamps[s] == c:
                                                n = iu_vals[s]
                                            elif iu_spill:
                                                n = iu_spill.get(c, 0)
                                            else:
                                                n = 0
                                            if n:
                                                t.append((c - D, n))
                                        tail = tuple(t)
                                        tail_k = pack_tail(tail)
                                    else:
                                        tail_k = None
                                else:
                                    tail_k = 0
                                tail_cycle = D

                            # -- template preconditions ----------------------
                            if tail_k is not None:
                                dlc = last - D
                                if dlc <= 2:
                                    K = 0
                                elif dlc <= $TPL_MAX_DELTA:
                                    K = dlc * 64 + cic
                                else:
                                    K = -1
                                if (
                                    K >= 0
                                    and floor <= D + 1
                                    and entries + take <= $IU_LIMIT
                                ):
                                    lb = dyn.lb
                                    plan = lb._seg_plans.get(skey)
                                    if plan is None:
                                        plan = make_plan(lb, cur_off, take)
                                    offsets, mem_plan, lvl_span = plan
                                    collecting = False
                                    dv_new = 0
                                    if $CHAINS_ON:
                                        # A missing edge (or a new deep
                                        # profile on an existing one)
                                        # installs after this segment
                                        # resolves; the deep deltas fold
                                        # into the profile key below.
                                        if edge_miss and prev_tpl[7] == gen:
                                            if dmap_install is not None:
                                                collecting = (
                                                    len(dmap_install)
                                                    < $CHAIN_DEEP_LIMIT)
                                            else:
                                                collecting = (
                                                    len(prev_tpl[8])
                                                    < $CHAIN_EDGE_LIMIT)
                                            if collecting:
                                                pred_neg = -len(prev_tpl[0])
                                                deep_offs_n = ()
                                    ok = True
                                    if offsets:
                                        base = D + 1
                                        for o in offsets:
                                            v = completions[(cnt + o) & 127] \
                                                - base
                                            if v <= 0:
                                                K = K * $K_RADIX
                                                if (collecting
                                                        and o < pred_neg):
                                                    dv_new = dv_new * $K_RADIX
                                            elif v <= $TPL_MAX_DELTA:
                                                K = K * $K_RADIX + v
                                                if (collecting
                                                        and o < pred_neg):
                                                    dv_new = (dv_new
                                                              * $K_RADIX + v)
                                            else:
                                                ok = False
                                                break
                                    if ok:
                                        levels = 0
                                        if mem_plan:
                                            for (slot_key, is_load, base_a,
                                                 stride, span) in mem_plan:
                                                k = counters_get(slot_key, 0)
                                                counters[slot_key] = k + 1
                                                a = base_a + (k * stride) % span
$PROBE_TPL
                                                if is_load:
                                                    levels = levels * 4 + lvl
                                                    loads += 1
                                                else:
                                                    stores += 1
                                        key = (dyn.addr, skey,
                                               K * lvl_span + levels, tail_k)
                                        if collecting:
                                            edge_new = (dv_new, K,
                                                        tail, tail_k)
                                            if offsets:
                                                deep_offs_n = tuple([
                                                    o for o in offsets
                                                    if o < pred_neg
                                                ])
                                        tpl = templates_get(key)

                        if tpl is not None:
                            # -- replay a memoized schedule template ---------
                            (completes, exit_lc, exit_cic, exit_tail,
                             exit_tail_k, bookings, max_issue_d,
                             _tgen, _tchain, _gbig) = tpl
                            for cd in completes:
                                completions[cnt & 127] = D + cd
                                cnt += 1
                            for dc, n in bookings:
                                c = D + dc
                                s = c & $IU_MASK
                                if iu_stamps[s] == c:
                                    iu_vals[s] += n
                                elif iu_spill and c in iu_spill:
                                    iu_spill[c] += n
                                elif iu_stamps[s] == -1:
                                    iu_stamps[s] = c
                                    iu_vals[s] = n
                                    entries += 1
                                else:
                                    iu_spill[c] = n
                                    entries += 1
                            mi = D + max_issue_d
                            if mi > max_issue:
                                max_issue = mi
                            tail = exit_tail
                            tail_k = exit_tail_k
                            last = D + exit_lc
                            cic = exit_cic
                            complete = D + completes[-1]
                        elif key is not None:
                            # -- record a new template -----------------------
                            lvls = []
                            lv = levels
                            while lv:
                                lvls.append(lv % 4 - 1)
                                lv //= 4
                            lvls.reverse()
                            seg_meta = dyn.meta
                            bk = {}
                            rec_completes = []
                            lvl_i = 0
                            seg_max = 0
                            for i in range(cur_off, cur_off + take):
                                (cls, latency, d1, d2, _mb, _ms,
                                 _msp) = seg_meta[i]
                                ready = D + 1
                                if d1:
                                    dep = completions[(cnt - d1) & 127]
                                    if dep > ready:
                                        ready = dep
                                if d2:
                                    dep = completions[(cnt - d2) & 127]
                                    if dep > ready:
                                        ready = dep
                                issue = ready
                                while True:
                                    s = issue & $IU_MASK
                                    if iu_stamps[s] == issue:
                                        used = iu_vals[s]
                                    elif iu_spill:
                                        used = iu_spill.get(issue, 0)
                                    else:
                                        used = 0
                                    if used < $WIDTH:
                                        break
                                    issue += 1
                                s = issue & $IU_MASK
                                if iu_stamps[s] == issue:
                                    iu_vals[s] += 1
                                elif iu_spill and issue in iu_spill:
                                    iu_spill[issue] += 1
                                else:
                                    if iu_stamps[s] == -1:
                                        iu_stamps[s] = issue
                                        iu_vals[s] = 1
                                    else:
                                        iu_spill[issue] = 1
                                    entries += 1
                                bk[issue] = bk.get(issue, 0) + 1
                                if issue > max_issue:
                                    max_issue = issue
                                if issue > seg_max:
                                    seg_max = issue
                                if cls == $CLS_LOAD:
                                    latency += ($LVL0, $LVL1,
                                                $LVL2)[lvls[lvl_i]]
                                    lvl_i += 1
                                complete = issue + latency
                                rec_completes.append(complete)
                                completions[cnt & 127] = complete
                                cnt += 1
                                earliest = complete + 1
                                commit2 = (earliest
                                           if earliest > last
                                           else last)
                                if commit2 == last:
                                    if cic >= $WIDTH:
                                        commit2 += 1
                                        cic = 1
                                    else:
                                        cic += 1
                                else:
                                    cic = 1
                                last = commit2
                            merged = dict(tail)
                            for c, n in bk.items():
                                dc = c - D
                                merged[dc] = merged.get(dc, 0) + n
                            exit_tail = tuple(sorted(merged.items()))
                            tail = exit_tail
                            tail_k = pack_tail(exit_tail)
                            if len(templates) > $TPL_CACHE_LIMIT:
                                # Eviction: the generation bump exactly
                                # invalidates every chained edge pointing
                                # at the dropped templates.
                                templates.clear()
                                gen = templates.generation
                            # Far-gap threshold (see backend.py).
                            g_big = last - D - 2
                            if exit_tail and exit_tail[-1][0] > g_big:
                                g_big = exit_tail[-1][0]
                            cm = max(rec_completes) - D - 1
                            if cm > g_big:
                                g_big = cm
                            if g_big < 0:
                                g_big = 0
                            tpl = (
                                tuple([c - D for c in rec_completes]),
                                last - D,
                                cic,
                                exit_tail,
                                tail_k,
                                tuple(sorted(
                                    (c - D, n) for c, n in bk.items()
                                )),
                                seg_max - D,
                                gen,
                                {},
                                g_big,
                            )
                            templates[key] = tpl
                        else:
                            # -- per-slot loop (canonical rules) -------------
                            tail = None
                            tail_k = None
                            seg_meta = dyn.meta
                            seg_keys = dyn.keys
                            ready_base = D + 1
                            complete = 0
                            for i in range(cur_off, cur_off + take):
                                (cls, latency, d1, d2, mem_base, mem_stride,
                                 mem_span) = seg_meta[i]
                                ready = ready_base
                                if d1:
                                    dep = completions[(cnt - d1) & 127]
                                    if dep > ready:
                                        ready = dep
                                if d2:
                                    dep = completions[(cnt - d2) & 127]
                                    if dep > ready:
                                        ready = dep
                                issue = ready if ready > floor else floor
                                while True:
                                    s = issue & $IU_MASK
                                    if iu_stamps[s] == issue:
                                        used = iu_vals[s]
                                    elif iu_spill:
                                        used = iu_spill.get(issue, 0)
                                    else:
                                        used = 0
                                    if used < $WIDTH:
                                        break
                                    issue += 1
                                s = issue & $IU_MASK
                                if iu_stamps[s] == issue:
                                    iu_vals[s] += 1
                                elif iu_spill and issue in iu_spill:
                                    iu_spill[issue] += 1
                                else:
                                    if iu_stamps[s] == -1:
                                        iu_stamps[s] = issue
                                        iu_vals[s] = 1
                                    else:
                                        iu_spill[issue] = 1
                                    entries += 1
                                if entries > $IU_LIMIT:
                                    backend._iu_entries = entries
                                    iu_compact(issue)
                                    entries = backend._iu_entries
                                    iu_spill = backend._iu_spill
                                    floor = backend._issue_floor
                                if issue > max_issue:
                                    max_issue = issue

                                if cls == $CLS_LOAD or cls == $CLS_STORE:
                                    slot_key = seg_keys[i]
                                    k = counters_get(slot_key, 0)
                                    counters[slot_key] = k + 1
                                    a = mem_base + (k * mem_stride) % (
                                        mem_span if mem_span > 0 else 1
                                    )
$PROBE_SLOT
                                    if cls == $CLS_LOAD:
                                        dlat = ($LVL0, $LVL1,
                                                $LVL2)[lvl - 1]
                                        latency += dlat
                                        loads += 1
                                    else:
                                        stores += 1

                                complete = issue + latency
                                completions[cnt & 127] = complete
                                cnt += 1

                                earliest = complete + 1
                                commit2 = (earliest if earliest > last
                                           else last)
                                if commit2 == last:
                                    if cic >= $WIDTH:
                                        commit2 += 1
                                        cic = 1
                                    else:
                                        cic += 1
                                else:
                                    cic = 1
                                last = commit2
                        if $CHAINS_ON:
                            # The resolved template is the next segment's
                            # chain source; resolve pending edge installs.
                            if tpl is not None:
                                cur_tpl = tpl
                                if lvl_map is not None:
                                    if len(lvl_map) < $CHAIN_LVL_LIMIT:
                                        lvl_map[levels] = tpl
                                elif edge_new is not None:
                                    dv_n, K0n, t2, tk2 = edge_new
                                    if dmap_install is not None:
                                        dmap_install[dv_n] = (K0n,
                                                              {levels: tpl})
                                    elif deep_offs_n or mem_plan:
                                        prev_tpl[8][ek] = [
                                            deep_offs_n, mem_plan, lvl_span,
                                            t2, tk2,
                                            {dv_n: (K0n, {levels: tpl})},
                                        ]
                                    else:
                                        prev_tpl[8][ek] = tpl
                        seg_commit = last
                        # ==== end inlined segment scheduler ==================

                        scheduled += take
                        correct_in_bundle += take
                        remaining -= take

                        if cur_off + take == size:
                            if remaining:
                                pred = dyn.addr + size * 4
                                ck = None
                                pl = None
                            else:
                                pred = pred_next
                                ck = ckpt
                                pl = payload
                            actual_next = dyn.next_addr
                            kind = dyn.kind
                            if kind is not KIND_NONE:
                                r_branches += 1
                                if kind is KIND_COND:
                                    r_cond_branches += 1
                                if dyn.taken:
                                    r_taken += 1
                            mispredicted = False
                            if pred is None:
                                r_indirect += 1
                                pending = (complete + 1, actual_next, ck,
                                           False, dyn)
                                diverged = True
                            elif pred != actual_next:
                                mispredicted = True
                                r_misp += 1
                                if kind is KIND_COND:
                                    r_cond_misp += 1
                                elif kind is KIND_RET:
                                    r_ret_misp += 1
                                pending = (complete + 1, actual_next, ck,
                                           True, dyn)
                                diverged = True
                            commit_push((seg_commit, dyn, pl, mispredicted))
                            if seg_commit < commit_head:
                                commit_head = seg_commit
                            inflight_push(
                                seg_commit * 1048576 + block_instrs + take
                            )
                            if seg_commit < inflight_head:
                                inflight_head = seg_commit
                            inflight_count += block_instrs + take
                            block_instrs = 0
                            # Inlined walker __next__ (record replay).
                            if pos >= blocks_len:
                                rec_extend()
                                blocks_len = len(rec_blocks)
                            if pos < blocks_len:
                                cur_dyn = rec_blocks[pos]
                                pos += 1
                                walked_blocks += 1
                                walked_instr += cur_dyn.size
                                cur_off = 0
                            else:
                                cur_dyn = None
                                cur_off = 0
                                break
                            if diverged:
                                break
                        else:
                            cur_off += take
                            block_instrs += take
                            block_commit = seg_commit
                            if pred_next is not None:
                                last_next = start + count * 4
                                if pred_next != last_next:
                                    pending = (complete + 1, last_next, ckpt,
                                               True, dyn)
                                    r_misp += 1
                                    diverged = True
                            break  # remaining is 0 here by construction

                    if cur_dyn is None:
                        break
                    if diverged:
                        # Everything past the divergence is wrong-path; the
                        # fragment iterator continues where the walk broke.
                        wrong = remaining
                        for frag2 in frag_iter:
                            wrong += frag2[1]
                        r_wrong += wrong
                        break

                if block_instrs:
                    inflight_push(block_commit * 1048576 + block_instrs)
                    if block_commit < inflight_head:
                        inflight_head = block_commit
                    inflight_count += block_instrs

                if correct_in_bundle:
                    r_fetch_cycles += 1
                    r_fetched += correct_in_bundle

                if scheduled >= warm_target and warm_state is None:
                    warm_state = (
                        now, scheduled,
                        (r_branches, r_cond_branches, r_taken, r_misp,
                         r_cond_misp, r_ret_misp, r_indirect, r_wrong,
                         r_rob_stall, r_idle),
                        r_fetch_cycles, r_fetched,
                    )

                if scheduled >= max_instructions:
                    break
        finally:
            # -- publish the loop-local state back to the objects ------------
            cursor.dyn = cur_dyn
            cursor.offset = cur_off
            cursor.exhausted = cur_dyn is None
            walker._pos = pos
            walker.blocks_walked = walked_blocks
            walker.instructions_walked = walked_instr

            backend._iu_spill = iu_spill
            backend._iu_entries = entries
            backend._issue_floor = floor
            backend._count = cnt
            backend._last_commit = last
            backend._commits_in_cycle = cic
            backend._max_issue = max_issue
            backend._tail = tail
            backend._tail_cycle = tail_cycle
            backend.load_accesses = loads
            backend.store_accesses = stores
            backend._chain_tpl = cur_tpl
            backend.seg_count = segs
            backend.chain_hits = hits
            dl1_cache.accesses = dl1_acc
            dl1_cache.misses = dl1_miss
            dl1_cache.evictions = dl1_evict

        result.branches = r_branches
        result.cond_branches = r_cond_branches
        result.taken_branches = r_taken
        result.mispredictions = r_misp
        result.cond_mispredictions = r_cond_misp
        result.return_mispredictions = r_ret_misp
        result.indirect_resolutions = r_indirect
        result.wrong_path_instructions = r_wrong
        result.rob_stall_cycles = r_rob_stall
        result.idle_cycles = r_idle
        result.fetch_cycles = r_fetch_cycles
        result.fetched_instructions = r_fetched
        result.instructions = scheduled
        result.cycles = now if now > last else last
        if warm_state is not None:
            warm_now, warm_sched, warm_counts, warm_fc, warm_fi = warm_state
            result.instructions = scheduled - warm_sched
            result.cycles = (now if now > last else last) - warm_now
            result.fetch_cycles = r_fetch_cycles - warm_fc
            result.fetched_instructions = r_fetched - warm_fi
            (wb, wcb, wt, wm, wcm, wrm, wi, ww, wrs, widle) = warm_counts
            result.branches = r_branches - wb
            result.cond_branches = r_cond_branches - wcb
            result.taken_branches = r_taken - wt
            result.mispredictions = r_misp - wm
            result.cond_mispredictions = r_cond_misp - wcm
            result.return_mispredictions = r_ret_misp - wrm
            result.indirect_resolutions = r_indirect - wi
            result.wrong_path_instructions = r_wrong - ww
            result.rob_stall_cycles = r_rob_stall - wrs
            result.idle_cycles = r_idle - widle
        result.engine_stats = stats_dict()
        result.memory_stats = mem_stats()
        seg_d = segs - seg_base
        chain_d = hits - chain_base
        result.extras = {
            "segments": seg_d,
            "chain_hits": chain_d,
            "chain_hit_rate": (chain_d / seg_d) if seg_d else 0.0,
        }
        return result

    return run
'''

# Splice the chain-follow branch and the cache-probe blocks at their
# sites (chain-edge probes, template-recording probes, the per-slot
# fallback) at the surrounding indentation.
_TEMPLATE = _TEMPLATE.replace("$CHAIN_FOLLOW", _indent(_CHAIN_BLOCK, 24))
_TEMPLATE = _TEMPLATE.replace("$PROBE_TPL", _indent(_PROBE_BLOCK, 48))
_TEMPLATE = _TEMPLATE.replace("$PROBE_SLOT", _indent(_PROBE_BLOCK, 36))


def _consts(processor) -> dict:
    core = processor.machine.core
    lvl0, lvl1, lvl2 = processor.backend._lvl_lat
    dl1 = processor.mem.dl1
    l2 = processor.mem.l2
    return {
        "DL1_OFF": dl1._offset_bits,
        "DL1_MASK": dl1._index_mask,
        "DL1_SHIFT": dl1._tag_shift,
        "DL1_ASSOC": dl1._assoc,
        "L2_OFF": l2._offset_bits,
        "L2_MASK": l2._index_mask,
        "L2_SHIFT": l2._tag_shift,
        "L2_ASSOC": l2._assoc,
        "WIDTH": core.width,
        "DISPATCH_DEPTH": core.dispatch_depth,
        "ROB_SIZE": core.rob_size,
        "LVL0": lvl0,
        "LVL1": lvl1,
        "LVL2": lvl2,
        "NEVER": _NEVER,
        "IU_MASK": _IU_MASK,
        "IU_LIMIT": _IU_LIMIT,
        "TPL_MAX_DELTA": _TPL_MAX_DELTA,
        "K_RADIX": _TPL_K_RADIX,
        "TPL_MAX_TAIL": _TPL_MAX_TAIL,
        "TAIL_DMAX": _TPL_MAX_TAIL_DELTA,
        "TPL_CACHE_LIMIT": _TPL_CACHE_LIMIT,
        "CLS_LOAD": int(InstrClass.LOAD),
        "CLS_STORE": int(InstrClass.STORE),
        # Chained-template constants; CHAINS_ON folds the transition
        # follow in or out of the compiled loop (it is part of the
        # compile-cache key, so on/off kernels never mix).
        "CHAINS_ON": bool(processor.backend.chains_enabled),
        "CHAIN_G_MAX": _CHAIN_G_MAX,
        "CHAIN_G_BUCKET": _CHAIN_G_BUCKET,
        "CHAIN_SKEY_MAX": _CHAIN_SKEY_MAX,
        "CHAIN_EDGE_LIMIT": _CHAIN_EDGE_LIMIT,
        "CHAIN_DEEP_LIMIT": _CHAIN_DEEP_LIMIT,
        "CHAIN_LVL_LIMIT": _CHAIN_LVL_LIMIT,
    }


#: Process-wide tail-shift memo: (packed_tail * 512 + shift) -> the
#: shifted (tail, packed_tail).  The radix must exceed the largest
#: memoized shift (bounded by _TPL_MAX_TAIL_DELTA = 511) for the key to
#: stay injective.  Pure, so sharing across kernels and configurations
#: is sound; bounded by the in-kernel clear at 32768.
SHIFT_MEMO: dict = {}

_NAMESPACE = {
    "deque": deque,
    "BranchKind": BranchKind,
    "SimulationResult": SimulationResult,
    "segment_plan": segment_plan,
    "_pack_tail": _pack_tail,
    "SHIFT_MEMO": SHIFT_MEMO,
}


def run_kernel(processor) -> CompiledKernel:
    """The compiled run-kernel for ``processor``'s configuration."""
    consts = _consts(processor)
    config_key = tuple(sorted(consts.items()))
    return compile_kernel(
        "run", config_key, _TEMPLATE, consts, _NAMESPACE, "make_run",
    )


def make_run(
    processor,
    engine_cycle: Optional[Callable] = None,
    engine_note_commit: Optional[Callable] = None,
) -> Callable:
    """Bind ``processor`` (and optionally specialized engine-cycle /
    commit closures) into its configuration's compiled kernel."""
    return run_kernel(processor).factory(
        processor, engine_cycle, engine_note_commit
    )


def run_kernel_source(processor) -> str:
    """The generated source text (debugging / ``python -m repro.accel``)."""
    return run_kernel(processor).source


def chain_follow_source(processor) -> str:
    """The rendered transition-follow block for ``processor``'s config.

    This is the chain-hit branch exactly as it is spliced into the
    compiled cycle loop (``python -m repro.accel ARCH WIDTH --chains``);
    when chaining is disabled for this processor the block folds to its
    dead ``if False:`` form, which is what this returns.
    """
    from repro.accel.codegen import render

    return render(_indent(_CHAIN_BLOCK, 24), _consts(processor))
