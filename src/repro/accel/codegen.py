"""Shared code-generation machinery for :mod:`repro.accel`.

A *kernel* here is ordinary Python source text, emitted per
configuration with every config-level constant folded into the text as
a literal (pipe width, latencies, masks, decode bubbles), then
``compile()``/``exec()``'d once per distinct configuration.  The
compiled module object exposes a single ``make_*`` factory that binds
one simulated-machine instance (processor or fetch engine) into a
closure and returns the specialized hot-path callable — so compilation
cost is paid once per (engine, width, machine) shape while closure
binding is paid once per simulation, both negligible next to a run.

Generated sources are registered with :mod:`linecache` under a
synthetic ``<repro.accel:NAME>`` filename, so tracebacks raised inside
a kernel show the *generated* line — indispensable when debugging a
transliteration bug.  ``repro.accel.kernel_sources`` (and
``python -m repro.accel``) expose the same text for offline reading.
"""

from __future__ import annotations

import linecache
from string import Template
from typing import Callable, Dict, Tuple

from repro import obs

__all__ = [
    "CompiledKernel",
    "clear_compile_cache",
    "compile_kernel",
    "render",
]


class CompiledKernel:
    """One compiled kernel: its factory plus the source it came from."""

    __slots__ = ("name", "source", "factory")

    def __init__(self, name: str, source: str, factory: Callable) -> None:
        self.name = name
        self.source = source
        self.factory = factory


#: Compiled factories, keyed on (kernel name, config key).  The name
#: identifies the template (``run:ev8`` / ``cycle:stream`` / ...), the
#: config key carries every constant folded into the source, so two
#: machines that fold differently can never share a kernel.
_COMPILE_CACHE: Dict[Tuple[str, tuple], CompiledKernel] = {}


def clear_compile_cache() -> None:
    """Drop all compiled kernels (tests, codegen development)."""
    _COMPILE_CACHE.clear()


def render(template: str, consts: Dict[str, object]) -> str:
    """Substitute ``$NAME`` placeholders with literal constants.

    Values are rendered with ``repr`` so ints stay ints and bools fold
    to ``True``/``False`` — which CPython's compiler then constant-folds
    (``if False and ...`` branches cost one jump, ``$WIDTH``-sized
    comparisons become immediate loads).
    """
    return Template(template).substitute(
        {name: repr(value) for name, value in consts.items()}
    )


def compile_kernel(
    name: str,
    config_key: tuple,
    template: str,
    consts: Dict[str, object],
    namespace: Dict[str, object],
    factory_name: str,
) -> CompiledKernel:
    """Render, compile and exec one kernel; memoized per config key.

    ``namespace`` supplies the support objects the generated source
    refers to by name (classes, enum members, helper functions) — the
    generated text contains no import statements, so its dependency
    surface is exactly what the caller hands it.
    """
    cache_key = (name, config_key)
    kernel = _COMPILE_CACHE.get(cache_key)
    if kernel is not None:
        return kernel
    obs.ACCEL_KERNEL_COMPILES.inc()
    source = render(template, consts)
    filename = f"<repro.accel:{name}:{'-'.join(map(str, config_key))}>"
    # optimize=2 strips asserts (pure guards on the interpreted path —
    # the transliterations keep them for readability, the compiled
    # kernels drop them) and docstrings; it cannot change results.
    code = compile(source, filename, "exec", optimize=2)
    module_ns = dict(namespace)
    exec(code, module_ns)
    factory = module_ns[factory_name]
    # Register with linecache so tracebacks show generated lines.
    linecache.cache[filename] = (
        len(source), None, source.splitlines(True), filename,
    )
    kernel = _COMPILE_CACHE[cache_key] = CompiledKernel(name, source, factory)
    return kernel
