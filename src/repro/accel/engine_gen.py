"""Specialized per-engine ``cycle`` / ``note_commit`` kernels.

One template per fetch architecture, each a transliteration of that
engine's per-cycle hot path — the prediction stage, the instruction
cache stage and the straight-line fragment hand-off — plus its
commit-order feedback path (``note_commit``), specialized the same way
the core kernel is:

* config constants folded as literals (pipe width, L1I line mask, the
  EV8 fetch-slot mask, decode-bubble depth, FTB/stream/trace length
  caps);
* per-cycle attribute walks flattened: sub-objects that are bound once
  in ``__init__`` and never rebound (predictor, history, RAS, BTB/FTB,
  FTQ, stats bag, program, memory) are closure locals, as are their
  bound methods — only genuinely mutable per-cycle scalars
  (``fetch_addr``, ``_busy_until``, ``_waiting_resolve``, trace-engine
  segment cursors) stay attribute accesses on the engine;
* the base-class helpers are inlined at their call sites: the busy
  check, the image-bounds check, instructions-to-line-end, the L1I-hit
  fast path of ``_fetch_line``, and the memoized ``scan_run`` lookup
  (a dict probe on the program's scan cache).

Cold paths (decode fixups, redirect, commit feedback) stay interpreter
method calls — they run a few times per thousand cycles and sharing
them keeps the speculative-state repair logic in exactly one place.

Only the four concrete engine classes are specialized; a subclass (or
any engine these templates do not know) silently gets its interpreted
``cycle`` bound into the core kernel instead.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.common.types import INSTRUCTION_BYTES, BranchKind
from repro.fetch.base import scan_run
from repro.fetch.ev8 import EV8FetchEngine
from repro.fetch.ftb import FTB_MAX_LENGTH, FTBFetchEngine
from repro.fetch.ftq import FetchRequest
from repro.fetch.stream import SEQUENTIAL_CHUNK, StreamFetchEngine
from repro.fetch.stream_predictor import MAX_STREAM_LENGTH, StreamRecord
from repro.fetch.trace_cache import TraceCacheFetchEngine
from repro.fetch.trace_predictor import MAX_TRACE_BRANCHES, MAX_TRACE_LENGTH

from repro.accel.codegen import CompiledKernel, compile_kernel

__all__ = ["cycle_kernel", "cycle_kernel_source", "make_kernels"]


#: Inlined RAS checkpoint capture (RAS.checkpoint transliterated):
#: one shared fragment spliced into every template so the capture
#: semantics live in exactly one place.
_RAS_CKPT = "(ras._sp, ras_slots[(ras._sp - 1) % $RAS_DEPTH if ras._sp else 0])"


def _common_consts(engine) -> dict:
    il1 = engine.mem.il1
    return {
        "WIDTH": engine.width,
        "LINE_BYTES": engine.line_bytes,
        "LINE_MASK": engine.line_bytes - 1,
        "DECODE_BUBBLE": engine.decode_bubble,
        # L1I geometry for the inlined MRU-hit probe fast path.
        "IL1_OFF": il1._offset_bits,
        "IL1_MASK": il1._index_mask,
        "IL1_SHIFT": il1._tag_shift,
        "RAS_DEPTH": engine.ras.depth,
    }


# ----------------------------------------------------------------------
# EV8: sequential fetch to the first predicted-taken branch
# ----------------------------------------------------------------------

_EV8_TEMPLATE = '''\
def make_kernels(engine):
    program = engine.program
    mem = engine.mem
    il1_cache = mem.il1
    il1_sets = il1_cache._sets
    il1_tail = il1_cache.access_tail
    fill_l2 = mem._fill_from_l2_instr
    stats_counts = engine.stats._counts
    predictor_predict = engine.predictor.predict
    predictor_update = engine.predictor.update
    bim_c = engine.predictor._bim_c
    g0_c = engine.predictor._g0_c
    g1_c = engine.predictor._g1_c
    meta_c = engine.predictor._meta_c
    history = engine.history
    spec_push = history.spec_push
    commit_push = history.commit_push
    ras = engine.ras
    ras_slots = ras._slots
    ras_push = engine.ras.push
    ras_pop = engine.ras.pop
    btb_lookup = engine.btb.lookup
    btb_update = engine.btb.update
    scan_cache_get = program._scan_cache.get
    scan = scan_run
    image_start = engine._image_start
    image_end = engine._image_end
    KIND_NONE = BranchKind.NONE
    KIND_COND = BranchKind.COND
    KIND_JUMP = BranchKind.JUMP
    KIND_CALL = BranchKind.CALL
    KIND_RET = BranchKind.RET

    def cycle(now):
        if now < engine._busy_until or engine._waiting_resolve:
            return None
        addr = engine.fetch_addr
        to_slot_end = ($SLOT_BYTES - (addr & $SLOT_MASK)) >> 2
        window = $WIDTH if $WIDTH < to_slot_end else to_slot_end
        to_line_end = ($LINE_BYTES - (addr & $LINE_MASK)) >> 2
        if to_line_end < window:
            window = to_line_end
        if not image_start <= addr < image_end:
            engine._waiting_resolve = True
            return None
        il1_line = addr >> $IL1_OFF
        il1_tag = il1_line >> $IL1_SHIFT
        il1_ways = il1_sets[il1_line & $IL1_MASK]
        il1_cache.accesses += 1
        if not ((il1_ways and il1_ways[0] == il1_tag)
                or il1_tail(il1_ways, il1_tag)):
            extra = fill_l2(addr)
            if extra > 0:
                stats_counts["icache_miss_stalls"] += 1
                until = now + extra
                if until > engine._busy_until:
                    engine._busy_until = until
                return None

        hit = scan_cache_get((addr, window))
        if hit is None:
            hit = scan(program, addr, window)
        controls, avail = hit
        if avail == 0:
            engine._waiting_resolve = True
            return None
        window = avail

        bundle = []
        append = bundle.append
        cursor = addr
        next_fetch = addr + window * 4
        stalled = False
        emitted = 0

        for baddr, lb in controls:
            run = ((baddr - cursor) >> 2) + 1
            kind = lb.kind
            if kind is KIND_COND:
                hist_snap = history.spec
                # Inlined TwoBcGskew.predict: four skewed bank indexes
                # with the fold windows unrolled (sound below the fold
                # limit, which covers every simulated address) and the
                # e-gskew vote taken on the spot.
                word_p = baddr >> 2
                v1 = word_p ^ ((hist_snap & $H0_MASK) << 5) ^ (word_p << 2)
                h1 = hist_snap & $H1_MASK
                v2 = word_p ^ (h1 << 3) ^ (word_p << 7)
                v3 = word_p ^ (h1 << 9) ^ (word_p << 4)
                if (word_p < $PLIMIT and v1 < $PLIMIT and v2 < $PLIMIT
                        and v3 < $PLIMIT):
                    bim_i = (word_p ^ (word_p >> $PBITS) ^ (word_p >> $PB2)
                             ^ (word_p >> $PB3)) & $PMASK
                    g0_i = (v1 ^ (v1 >> $PBITS) ^ (v1 >> $PB2)
                            ^ (v1 >> $PB3)) & $PMASK
                    g1_i = (v2 ^ (v2 >> $PBITS) ^ (v2 >> $PB2)
                            ^ (v2 >> $PB3)) & $PMASK
                    meta_i = (v3 ^ (v3 >> $PBITS) ^ (v3 >> $PB2)
                              ^ (v3 >> $PB3)) & $PMASK
                    p_bim = bim_c[bim_i] >= 2
                    p_eskew = (p_bim + (g0_c[g0_i] >= 2)
                               + (g1_c[g1_i] >= 2)) >= 2
                    pred = p_eskew if meta_c[meta_i] >= 2 else p_bim
                    info = (bim_i, g0_i, g1_i, meta_i, p_bim, p_eskew)
                else:
                    pred, info = predictor_predict(baddr, hist_snap)
                history.spec = ((hist_snap << 1) | pred) & $HIST_MASK
                ckpt = ($RAS_CKPT, hist_snap)
                stats_counts["cond_predictions"] += 1
                if pred:
                    entry = btb_lookup(baddr)
                    if entry is not None:
                        target = entry.target
                    else:
                        until = now + $DECODE_BUBBLE
                        if until > engine._busy_until:
                            engine._busy_until = until
                        stats_counts["decode_redirects"] += 1
                        target = lb.target_addr
                    append((cursor, run, target, ckpt, ("cond", info)))
                    emitted += run
                    next_fetch = target
                    cursor = None
                    break
                append((cursor, run, baddr + 4, ckpt, ("cond", info)))
                emitted += run
                cursor = baddr + 4
                continue
            if kind is KIND_JUMP or kind is KIND_CALL:
                entry = btb_lookup(baddr)
                if entry is not None:
                    target = entry.target
                else:
                    until = now + $DECODE_BUBBLE
                    if until > engine._busy_until:
                        engine._busy_until = until
                    stats_counts["decode_redirects"] += 1
                    target = lb.target_addr
                if kind is KIND_CALL:
                    ras_push(baddr + 4)
                ckpt = ($RAS_CKPT, history.spec)
                append((cursor, run, target, ckpt, None))
                emitted += run
                next_fetch = target
                cursor = None
                break
            if kind is KIND_RET:
                if btb_lookup(baddr) is None:
                    until = now + $DECODE_BUBBLE
                    if until > engine._busy_until:
                        engine._busy_until = until
                    stats_counts["decode_redirects"] += 1
                target = ras_pop()
                ckpt = ($RAS_CKPT, history.spec)
                append((cursor, run, target, ckpt, None))
                emitted += run
                next_fetch = target
                cursor = None
                break
            # Indirect jump: only the BTB can supply a target at fetch.
            entry = btb_lookup(baddr)
            ckpt = ($RAS_CKPT, history.spec)
            if entry is not None:
                append((cursor, run, entry.target, ckpt, None))
                next_fetch = entry.target
            else:
                append((cursor, run, None, ckpt, None))
                stats_counts["indirect_stalls"] += 1
                engine._waiting_resolve = True
                stalled = True
            emitted += run
            cursor = None
            break

        if cursor is not None:
            end = addr + window * 4
            if cursor < end:
                run = (end - cursor) >> 2
                append((cursor, run, end, None, None))
                emitted += run

        if not stalled:
            engine.fetch_addr = next_fetch
        engine.fetch_cycles += 1
        engine.fetched_instructions += emitted
        return bundle

    def note_commit(dyn, payload, mispredicted):
        kind = dyn.kind
        if kind is KIND_NONE:
            return
        taken = dyn.taken
        lbx = dyn.lb
        baddr = lbx.addr + (lbx.size - 1) * 4
        if kind is KIND_COND:
            if isinstance(payload, tuple) and payload[0] == "cond":
                predictor_update(payload[1], taken)
            else:
                # Fetched without an in-flight prediction (e.g. right
                # after a redirect): train with commit-time state.
                _, info = predictor_predict(baddr, history.commit)
                predictor_update(info, taken)
            history.commit = ((history.commit << 1) | taken) & $HIST_MASK
        btb_update(baddr, dyn.next_addr if taken else 0, kind, taken)

    return cycle, note_commit
'''


def _ev8_consts(engine) -> dict:
    consts = _common_consts(engine)
    slot_bytes = engine.width * INSTRUCTION_BYTES
    consts["SLOT_BYTES"] = slot_bytes
    consts["SLOT_MASK"] = slot_bytes - 1
    # TwoBcGskew geometry for the inlined predict.
    predictor = engine.predictor
    bits = predictor._index_bits
    consts["PBITS"] = bits
    consts["PB2"] = 2 * bits
    consts["PB3"] = 3 * bits
    consts["PMASK"] = (1 << bits) - 1
    consts["PLIMIT"] = predictor._fold_limit
    consts["H0_MASK"] = predictor._h0_mask
    consts["H1_MASK"] = predictor._h1_mask
    consts["HIST_MASK"] = engine.history._mask
    return consts


# ----------------------------------------------------------------------
# FTB: decoupled fetch-target-buffer front-end + perceptron
# ----------------------------------------------------------------------

_FTB_TEMPLATE = '''\
def make_kernels(engine):
    program = engine.program
    mem = engine.mem
    il1_cache = mem.il1
    il1_sets = il1_cache._sets
    il1_tail = il1_cache.access_tail
    fill_l2 = mem._fill_from_l2_instr
    stats_counts = engine.stats._counts
    ftb = engine.ftb
    ftb_sets = ftb._sets
    ftb_lookup = engine.ftb.lookup
    ftb_update = engine.ftb.update
    ftb_probe = engine.ftb.probe
    predictor_predict = engine.predictor.predict
    predictor_update = engine.predictor.update
    perc_local = engine.predictor._local
    perc_epoch = engine.predictor._epoch
    perc_memo_get = engine.predictor._y_memo.get
    history = engine.history
    spec_push = history.spec_push
    commit_push = history.commit_push
    ras = engine.ras
    ras_slots = ras._slots
    ras_push = engine.ras.push
    ras_pop = engine.ras.pop
    ftq = engine.ftq
    ftq_queue = ftq._queue
    ftq_append = ftq_queue.append
    ftq_push = ftq.push
    ftq_pop = ftq.pop
    ftq_popleft = ftq_queue.popleft
    ftq_head = ftq.head
    ftq_capacity = ftq.capacity
    decode_fixup = engine._decode_fixup
    scan_cache_get = program._scan_cache.get
    scan = scan_run
    image_start = engine._image_start
    image_end = engine._image_end
    Request = FetchRequest
    KIND_NONE = BranchKind.NONE
    KIND_COND = BranchKind.COND
    KIND_CALL = BranchKind.CALL
    KIND_RET = BranchKind.RET

    def cycle(now):
        if engine._waiting_resolve:
            return None
        request = ftq_queue[0] if ftq_queue else None

        # -- prediction stage (FTB) ------------------------------------
        if len(ftq_queue) < ftq_capacity:
            pc = engine.predict_addr
            ckpt_pre = ($RAS_CKPT, history.spec)
            # Inlined FTB lookup MRU fast path (counters included).
            word_b = pc >> 2
            ways_b = ftb_sets[word_b & $FTB_SET_MASK]
            if ways_b and ways_b[0].tag == word_b >> $FTB_TAG_SHIFT:
                ftb.lookups += 1
                entry = ways_b[0]
            else:
                entry = ftb_lookup(pc)
            if entry is None:
                stats_counts["ftb_misses"] += 1
                nxt = pc + $FTB_MAX_BYTES
                req = Request.__new__(Request)
                req.start = pc
                req.remaining = $FTB_MAX_LENGTH
                req.terminal_kind = None
                req.pred_next = nxt
                req.payload = None
                req.ckpt = None
                req.ckpt_pre = ckpt_pre
                req.is_fallback = True
                req.descriptor = None
                ftq_append(req)
                ftq.pushes += 1
                engine.predict_addr = nxt
            else:
                stats_counts["ftb_hits"] += 1
                length = entry.length
                term_pc = pc + (length - 1) * 4
                payload = None
                kind = entry.kind
                if kind is KIND_NONE:
                    nxt = pc + length * 4
                    req = Request.__new__(Request)
                    req.start = pc
                    req.remaining = length
                    req.terminal_kind = None
                    req.pred_next = nxt
                    req.payload = None
                    req.ckpt = None
                    req.ckpt_pre = ckpt_pre
                    req.is_fallback = False
                    req.descriptor = None
                    ftq_append(req)
                    ftq.pushes += 1
                    engine.predict_addr = nxt
                else:
                    if kind is KIND_COND:
                        # Inlined PerceptronPredictor.predict fast path:
                        # the epoch-memoized dot product answers straight
                        # from the memo; a memo miss takes the method
                        # (which computes and installs it).
                        hist_f = history.spec
                        word_f = term_pc >> 2
                        pidx = word_f & $PP_MASK
                        lidx = word_f & $PL_MASK
                        bits_f = (((hist_f & $GH_MASK) << $LH_BITS)
                                  | perc_local[lidx])
                        y = perc_memo_get((pidx, perc_epoch[pidx], bits_f))
                        if y is None:
                            pred, info = predictor_predict(term_pc, hist_f)
                        else:
                            pred = y >= 0
                            info = (pidx, lidx, bits_f, y)
                        history.spec = ((hist_f << 1) | pred) & $HIST_MASK
                        payload = ("term", info)
                        nxt = entry.target if pred else term_pc + 4
                    elif kind is KIND_CALL:
                        ras_push(term_pc + 4)
                        nxt = entry.target
                    elif kind is KIND_RET:
                        nxt = ras_pop()
                    else:
                        nxt = entry.target
                    ckpt = ($RAS_CKPT, ckpt_pre[1])
                    req = Request.__new__(Request)
                    req.start = pc
                    req.remaining = length
                    req.terminal_kind = kind
                    req.pred_next = nxt
                    req.payload = payload
                    req.ckpt = ckpt
                    req.ckpt_pre = ckpt_pre
                    req.is_fallback = False
                    req.descriptor = None
                    ftq_append(req)
                    ftq.pushes += 1
                    engine.predict_addr = nxt

        if now < engine._busy_until or request is None:
            return None

        # -- instruction cache stage -----------------------------------
        addr = request.start
        if not image_start <= addr < image_end:
            engine._waiting_resolve = True
            return None
        il1_line = addr >> $IL1_OFF
        il1_tag = il1_line >> $IL1_SHIFT
        il1_ways = il1_sets[il1_line & $IL1_MASK]
        il1_cache.accesses += 1
        if not ((il1_ways and il1_ways[0] == il1_tag)
                or il1_tail(il1_ways, il1_tag)):
            extra = fill_l2(addr)
            if extra > 0:
                stats_counts["icache_miss_stalls"] += 1
                until = now + extra
                if until > engine._busy_until:
                    engine._busy_until = until
                return None
        n = request.remaining
        if $WIDTH < n:
            n = $WIDTH
        to_line_end = ($LINE_BYTES - (addr & $LINE_MASK)) >> 2
        if to_line_end < n:
            n = to_line_end
        hit = scan_cache_get((addr, n))
        if hit is None:
            hit = scan(program, addr, n)
        controls, avail = hit
        if avail == 0:
            engine._waiting_resolve = True
            return None
        if avail < n:
            n = avail
        if request.is_fallback:
            terminal_addr = None
        else:
            terminal_addr = addr + (request.remaining - 1) * 4

        bundle = []
        frag_start = addr
        end = addr + n * 4
        done_early = False
        emitted = 0
        append = bundle.append
        ckpt_pre = request.ckpt_pre

        for baddr, lb in controls:
            run = ((baddr - frag_start) >> 2) + 1
            if baddr == terminal_addr:
                append((frag_start, run, request.pred_next, request.ckpt,
                        request.payload))
                emitted += run
                done_early = True
                break
            if lb.kind is KIND_COND:
                append((frag_start, run, baddr + 4, ckpt_pre, None))
                emitted += run
                frag_start = baddr + 4
                continue
            if frag_start < baddr:
                append((frag_start, run - 1, baddr, None, None))
                emitted += run - 1
            decode_fixup(now, bundle, baddr, lb)
            emitted += 1
            done_early = True
            break

        if not done_early and frag_start < end:
            run = (end - frag_start) >> 2
            append((frag_start, run, end, None, None))
            emitted += run

        if done_early:
            # A decode fixup may already have flushed the queue.
            if ftq_head() is request:
                ftq_popleft()
        else:
            # Inlined request.consume(n) (Fig. 6 in-place update).
            if n > request.remaining:
                raise ValueError(
                    f"cannot consume {n} of {request.remaining}"
                )
            request.start += n * 4
            request.remaining -= n
            if request.remaining == 0:
                ftq_popleft()

        engine.fetch_cycles += 1
        engine.fetched_instructions += emitted
        return bundle

    def note_commit(dyn, payload, mispredicted):
        c_len = engine._c_len + dyn.size
        kind = dyn.kind
        c_start = engine._c_start
        # Spill max-length sequential chunks (fetch-side stepping).
        while c_len > $FTB_MAX_LENGTH:
            nxt = c_start + $FTB_MAX_BYTES
            ftb_update(c_start, $FTB_MAX_LENGTH, nxt, KIND_NONE)
            c_start = nxt
            c_len -= $FTB_MAX_LENGTH
        if kind is KIND_NONE:
            engine._c_start = c_start
            engine._c_len = c_len
            return
        lbx = dyn.lb
        term_pc = lbx.addr + (lbx.size - 1) * 4
        if kind is KIND_COND:
            taken = dyn.taken
            if taken:
                ftb_update(c_start, c_len, dyn.next_addr, kind)
                if isinstance(payload, tuple) and payload[0] == "term":
                    predictor_update(payload[1], True)
                else:
                    _, info = predictor_predict(term_pc, history.commit)
                    predictor_update(info, True)
                history.commit = ((history.commit << 1) | 1) & $HIST_MASK
                engine._c_start = dyn.next_addr
                engine._c_len = 0
                return
            entry = ftb_probe(c_start)
            if (entry is not None
                    and c_start + (entry.length - 1) * 4 == term_pc):
                # An ever-taken branch always ends the fetch block,
                # even on its not-taken instances.
                if isinstance(payload, tuple) and payload[0] == "term":
                    predictor_update(payload[1], False)
                else:
                    _, info = predictor_predict(term_pc, history.commit)
                    predictor_update(info, False)
                history.commit = (history.commit << 1) & $HIST_MASK
                engine._c_start = term_pc + 4
                engine._c_len = 0
                return
            # Otherwise the branch is invisible to the FTB.
            engine._c_start = c_start
            engine._c_len = c_len
            return
        # Unconditional controls always terminate the block.
        ftb_update(c_start, c_len, dyn.next_addr, kind)
        engine._c_start = dyn.next_addr
        engine._c_len = 0

    return cycle, note_commit
'''


def _ftb_consts(engine) -> dict:
    consts = _common_consts(engine)
    consts["FTB_MAX_LENGTH"] = FTB_MAX_LENGTH
    consts["FTB_MAX_BYTES"] = FTB_MAX_LENGTH * INSTRUCTION_BYTES
    consts["FTB_SET_MASK"] = engine.ftb._mask
    consts["FTB_TAG_SHIFT"] = engine.ftb._tag_shift
    # Perceptron geometry for the inlined memo fast path.
    predictor = engine.predictor
    consts["PP_MASK"] = predictor._pidx_mask
    consts["PL_MASK"] = predictor._lidx_mask
    consts["GH_MASK"] = predictor._ghist_mask
    consts["LH_BITS"] = predictor._lh_bits
    consts["HIST_MASK"] = engine.history._mask
    return consts


# ----------------------------------------------------------------------
# Stream: next stream predictor + FTQ + wide-line instruction cache
# ----------------------------------------------------------------------

_STREAM_TEMPLATE = '''\
def make_kernels(engine):
    program = engine.program
    mem = engine.mem
    il1_cache = mem.il1
    il1_sets = il1_cache._sets
    il1_tail = il1_cache.access_tail
    fill_l2 = mem._fill_from_l2_instr
    stats_counts = engine.stats._counts
    predictor_predict = engine.predictor.predict
    predictor_update = engine.predictor.update
    path = engine.path
    path_spec_push = path.spec_push
    path_commit_push = path.commit_push
    s_partials = engine._s_partials
    ras = engine.ras
    ras_slots = ras._slots
    ras_push = engine.ras.push
    ras_pop = engine.ras.pop
    ftq = engine.ftq
    ftq_queue = ftq._queue
    ftq_append = ftq_queue.append
    ftq_push = ftq.push
    ftq_pop = ftq.pop
    ftq_head = ftq.head
    ftq_flush = ftq.flush
    ftq_capacity = ftq.capacity
    decode_fixup = engine._decode_fixup
    scan_cache_get = program._scan_cache.get
    scan = scan_run
    image_start = engine._image_start
    image_end = engine._image_end
    Request = FetchRequest
    KIND_NONE = BranchKind.NONE
    KIND_COND = BranchKind.COND
    KIND_CALL = BranchKind.CALL
    KIND_RET = BranchKind.RET

    def cycle(now):
        if engine._waiting_resolve:
            return None
        request = ftq_queue[0] if ftq_queue else None

        # -- next stream predictor stage -------------------------------
        if len(ftq_queue) < ftq_capacity:
            pc = engine.predict_addr
            prediction = predictor_predict(path.spec, pc)
            if prediction is None:
                engine._skip_next_path_push = False
                stats_counts["stream_pred_misses"] += 1
                ckpt_pre = ($RAS_CKPT, tuple(path.spec), None)
                nxt = pc + $SEQ_CHUNK_BYTES
                ftq_append(Request(pc, $SEQ_CHUNK, None, nxt,
                                   ckpt_pre=ckpt_pre, is_fallback=True))
                ftq.pushes += 1
                engine.predict_addr = nxt
            else:
                stats_counts["stream_pred_hits"] += 1
                if engine._skip_next_path_push:
                    engine._skip_next_path_push = False
                else:
                    path_spec_push(
                        (pc ^ (prediction.length << 20))
                        if $LENGTH_KEYS else pc
                    )
                kind = prediction.kind
                ras_pre = $RAS_CKPT
                if kind is KIND_RET:
                    nxt = ras_pop()
                elif kind is KIND_CALL:
                    ras_push(pc + prediction.length * 4)
                    nxt = prediction.next_addr
                else:
                    nxt = prediction.next_addr
                path_snap = tuple(path.spec)
                ckpt_pre = (ras_pre, path_snap, pc)
                ckpt = ($RAS_CKPT, path_snap, pc)
                terminal = kind if kind is not KIND_NONE else None
                ftq_append(Request(pc, prediction.length, terminal, nxt,
                                   None, ckpt, ckpt_pre=ckpt_pre))
                ftq.pushes += 1
                engine.predict_addr = nxt

        if now < engine._busy_until or request is None:
            return None

        # -- instruction cache stage -----------------------------------
        addr = request.start
        if not image_start <= addr < image_end:
            engine._waiting_resolve = True
            return None
        il1_line = addr >> $IL1_OFF
        il1_tag = il1_line >> $IL1_SHIFT
        il1_ways = il1_sets[il1_line & $IL1_MASK]
        il1_cache.accesses += 1
        if not ((il1_ways and il1_ways[0] == il1_tag)
                or il1_tail(il1_ways, il1_tag)):
            extra = fill_l2(addr)
            if extra > 0:
                stats_counts["icache_miss_stalls"] += 1
                until = now + extra
                if until > engine._busy_until:
                    engine._busy_until = until
                return None
        n = request.remaining
        if $WIDTH < n:
            n = $WIDTH
        to_line_end = ($LINE_BYTES - (addr & $LINE_MASK)) >> 2
        if to_line_end < n:
            n = to_line_end
        hit = scan_cache_get((addr, n))
        if hit is None:
            hit = scan(program, addr, n)
        controls, avail = hit
        if avail == 0:
            engine._waiting_resolve = True
            return None
        if avail < n:
            n = avail
        if request.terminal_kind is not None:
            terminal_addr = addr + (request.remaining - 1) * 4
        else:
            terminal_addr = None

        bundle = []
        frag_start = addr
        end = addr + n * 4
        done_early = False
        emitted = 0
        append = bundle.append
        ckpt_pre = request.ckpt_pre

        for baddr, lb in controls:
            if terminal_addr is not None and terminal_addr < baddr:
                break  # stale-length terminal before the next control
            run = ((baddr - frag_start) >> 2) + 1
            if baddr == terminal_addr:
                append((frag_start, run, request.pred_next, request.ckpt,
                        request.payload))
                emitted += run
                done_early = True
                break
            if lb.kind is KIND_COND:
                append((frag_start, run, baddr + 4, ckpt_pre, None))
                emitted += run
                frag_start = baddr + 4
                continue
            if frag_start < baddr:
                append((frag_start, run - 1, baddr, None, None))
                emitted += run - 1
            decode_fixup(now, bundle, baddr, lb)
            emitted += 1
            done_early = True
            break

        if not done_early:
            if (terminal_addr is not None
                    and frag_start <= terminal_addr < end):
                stats_counts["length_misfetches"] += 1
                run = ((terminal_addr - frag_start) >> 2) + 1
                append((frag_start, run, terminal_addr + 4, None, None))
                emitted += run
                ftq_flush()
                engine.predict_addr = terminal_addr + 4
                done_early = True
            elif frag_start < end:
                run = (end - frag_start) >> 2
                append((frag_start, run, end, None, None))
                emitted += run

        if done_early:
            # A decode fixup may already have flushed the queue.
            if ftq_head() is request:
                ftq_pop()
        else:
            # Inlined request.consume(n) (Fig. 6 in-place update).
            if n > request.remaining:
                raise ValueError(
                    f"cannot consume {n} of {request.remaining}"
                )
            request.start += n * 4
            request.remaining -= n
            if request.remaining == 0:
                ftq_pop()

        engine.fetch_cycles += 1
        engine.fetched_instructions += emitted
        return bundle

    def record_run(start, length, dyn, mispredicted, push_history):
        # One (possibly capped) stream ending at ``dyn``.
        if length <= 0:
            return
        while length > $MAX_STREAM_LENGTH:
            record = StreamRecord(start, $MAX_STREAM_LENGTH, KIND_NONE,
                                  start + $MAX_STREAM_BYTES)
            predictor_update(path.commit, record, False)
            if push_history:
                path_commit_push(
                    (start ^ ($MAX_STREAM_LENGTH << 20))
                    if $LENGTH_KEYS else start
                )
            start += $MAX_STREAM_BYTES
            length -= $MAX_STREAM_LENGTH
        record = StreamRecord(start, length, dyn.kind, dyn.next_addr)
        predictor_update(path.commit, record, mispredicted)
        if push_history:
            key = (start ^ (length << 20)) if $LENGTH_KEYS else start
            path_commit_push(key)
            pending = engine._pending_repair
            if pending is not None and pending[1] == start:
                # Patch the speculative placeholder left by a redirect
                # from a fell-through terminal of this very stream.
                try:
                    idx = path.spec.index(pending[0])
                except ValueError:
                    pass  # already rolled out of the window
                else:
                    path.spec[idx] = key
                engine._pending_repair = None

    def note_commit(dyn, payload, mispredicted):
        size = dyn.size
        if not dyn.taken:
            if mispredicted:
                s_partials.append((dyn.next_addr, engine._s_len + size))
                engine._s_mispredicted = True
            engine._s_len += size
            return
        s_len = engine._s_len + size
        s_misp = engine._s_mispredicted or mispredicted
        record_run(engine._s_start, s_len, dyn, s_misp, True)
        for partial_start, offset in s_partials:
            record_run(partial_start, s_len - offset, dyn, False, False)
            stats_counts["partial_streams_committed"] += 1
        stats_counts["streams_committed"] += 1
        stats_counts["stream_instructions"] += s_len
        engine._s_start = dyn.next_addr
        engine._s_len = 0
        engine._s_mispredicted = False
        s_partials.clear()

    return cycle, note_commit
'''


def _stream_consts(engine) -> dict:
    consts = _common_consts(engine)
    consts["SEQ_CHUNK"] = SEQUENTIAL_CHUNK
    consts["SEQ_CHUNK_BYTES"] = SEQUENTIAL_CHUNK * INSTRUCTION_BYTES
    consts["LENGTH_KEYS"] = bool(engine._length_keys)
    consts["MAX_STREAM_LENGTH"] = MAX_STREAM_LENGTH
    consts["MAX_STREAM_BYTES"] = MAX_STREAM_LENGTH * INSTRUCTION_BYTES
    return consts


# ----------------------------------------------------------------------
# Trace cache: next trace predictor + trace store + BTB build path
# ----------------------------------------------------------------------

_TRACE_TEMPLATE = '''\
def make_kernels(engine):
    program = engine.program
    mem = engine.mem
    il1_cache = mem.il1
    il1_sets = il1_cache._sets
    il1_tail = il1_cache.access_tail
    fill_l2 = mem._fill_from_l2_instr
    stats_counts = engine.stats._counts
    predictor_predict = engine.predictor.predict
    history = engine.history
    history_spec_push = history.spec_push
    ras = engine.ras
    ras_slots = ras._slots
    ras_push = engine.ras.push
    ras_pop = engine.ras.pop
    btb_lookup = engine.btb.lookup
    btb_update = engine.btb.update
    tc_lookup = engine.trace_cache.lookup
    tc_partial_match = engine.trace_cache.partial_match
    fill = engine._fill
    finalize_trace = engine._finalize_trace
    ftq = engine.ftq
    ftq_queue = ftq._queue
    ftq_append = ftq_queue.append
    ftq_push = ftq.push
    ftq_pop = ftq.pop
    ftq_capacity = ftq.capacity
    scan_cache_get = program._scan_cache.get
    scan = scan_run
    image_start = engine._image_start
    image_end = engine._image_end
    Request = FetchRequest
    KIND_NONE = BranchKind.NONE
    KIND_COND = BranchKind.COND
    KIND_JUMP = BranchKind.JUMP
    KIND_CALL = BranchKind.CALL
    KIND_RET = BranchKind.RET
    KIND_IND = BranchKind.IND

    def emit_run(bundle, request, descriptor, addr, count):
        # One run from the current segment position, split at interior
        # conditionals; the final prediction comes from the trace.
        segments = descriptor.segments
        last_idx = len(segments) - 1
        seg_idx = engine._seg_idx
        seg_off = engine._seg_off
        end = addr + count * 4
        at_boundary = seg_off + count == segments[seg_idx][1]
        skip_addr = end - 4 if at_boundary else -1
        ckpt_pre = request.ckpt_pre
        append = bundle.append
        frag_start = addr
        hit = scan_cache_get((addr, count))
        if hit is None:
            hit = scan(program, addr, count)
        for baddr, lb in hit[0]:
            if baddr != skip_addr and lb.kind is KIND_COND:
                run = ((baddr - frag_start) >> 2) + 1
                append((frag_start, run, baddr + 4, ckpt_pre, None))
                frag_start = baddr + 4
        if at_boundary:
            run = (end - frag_start) >> 2
            if seg_idx == last_idx:
                append((frag_start, run, request.pred_next, request.ckpt,
                        request.payload))
            else:
                append((frag_start, run, segments[seg_idx + 1][0],
                        ckpt_pre, None))
            engine._seg_idx = seg_idx + 1
            engine._seg_off = 0
        else:
            if frag_start < end:
                append((frag_start, (end - frag_start) >> 2, end,
                        None, None))
            engine._seg_off = seg_off + count

    def build_fetch(now):
        # Secondary path: BTB-guided build fetch on a predictor miss.
        addr = engine.predict_addr
        if not image_start <= addr < image_end:
            engine._waiting_resolve = True
            return None
        il1_line = addr >> $IL1_OFF
        il1_tag = il1_line >> $IL1_SHIFT
        il1_ways = il1_sets[il1_line & $IL1_MASK]
        il1_cache.accesses += 1
        if not ((il1_ways and il1_ways[0] == il1_tag)
                or il1_tail(il1_ways, il1_tag)):
            extra = fill_l2(addr)
            if extra > 0:
                stats_counts["icache_miss_stalls"] += 1
                until = now + extra
                if until > engine._busy_until:
                    engine._busy_until = until
                return None
        window = $WIDTH
        to_line_end = ($LINE_BYTES - (addr & $LINE_MASK)) >> 2
        if to_line_end < window:
            window = to_line_end
        hit = scan_cache_get((addr, window))
        if hit is None:
            hit = scan(program, addr, window)
        controls, avail = hit
        if avail == 0:
            engine._waiting_resolve = True
            return None
        window = avail

        bundle = []
        append = bundle.append
        frag_start = addr
        next_fetch = addr + window * 4
        stalled = False
        emitted = 0
        conds = 0
        terminal_taken = False
        for baddr, lb in controls:
            run = ((baddr - frag_start) >> 2) + 1
            kind = lb.kind
            entry = btb_lookup(baddr)
            ckpt = ($RAS_CKPT, tuple(history.spec))
            if kind is KIND_COND:
                conds += 1
                taken = entry is not None and entry.predict_taken
                if taken:
                    append((frag_start, run, entry.target, ckpt, None))
                    emitted += run
                    next_fetch = entry.target
                    terminal_taken = True
                    frag_start = None
                    break
                append((frag_start, run, baddr + 4, ckpt, None))
                emitted += run
                frag_start = baddr + 4
                continue
            if kind is KIND_JUMP or kind is KIND_CALL:
                if entry is None:
                    until = now + $DECODE_BUBBLE
                    if until > engine._busy_until:
                        engine._busy_until = until
                    stats_counts["decode_redirects"] += 1
                target = lb.target_addr
                if kind is KIND_CALL:
                    ras_push(baddr + 4)
                append((frag_start, run, target,
                        ($RAS_CKPT, ckpt[1]), None))
                emitted += run
                next_fetch = target
                terminal_taken = True
                frag_start = None
                break
            if kind is KIND_RET:
                if entry is None:
                    until = now + $DECODE_BUBBLE
                    if until > engine._busy_until:
                        engine._busy_until = until
                    stats_counts["decode_redirects"] += 1
                target = ras_pop()
                append((frag_start, run, target,
                        ($RAS_CKPT, ckpt[1]), None))
                emitted += run
                next_fetch = target
                terminal_taken = True
                frag_start = None
                break
            # Indirect.
            if entry is not None:
                append((frag_start, run, entry.target, ckpt, None))
                next_fetch = entry.target
                terminal_taken = True
            else:
                append((frag_start, run, None, ckpt, None))
                stats_counts["indirect_stalls"] += 1
                engine._waiting_resolve = True
                stalled = True
            emitted += run
            frag_start = None
            break

        if frag_start is not None:
            end = addr + window * 4
            if frag_start < end:
                run = (end - frag_start) >> 2
                append((frag_start, run, end, None, None))
                emitted += run
        if not stalled:
            engine.predict_addr = next_fetch
            # Inlined _spec_fill_advance: emulate fill-unit boundaries.
            sl = engine._spec_fill_len + emitted
            sc = engine._spec_fill_conds + conds
            if (sl >= $MAX_TRACE_LENGTH or sc >= $MAX_TRACE_BRANCHES
                    or terminal_taken):
                history_spec_push(engine._spec_fill_start)
                engine._spec_fill_start = next_fetch
                engine._spec_fill_len = 0
                engine._spec_fill_conds = 0
            else:
                engine._spec_fill_len = sl
                engine._spec_fill_conds = sc
        stats_counts["build_cycles"] += 1
        engine.fetch_cycles += 1
        engine.fetched_instructions += emitted
        return bundle

    def cycle(now):
        if engine._waiting_resolve:
            return None
        request = ftq_queue[0] if ftq_queue else None

        # -- next trace predictor stage --------------------------------
        predictor_missed = False
        if len(ftq_queue) < ftq_capacity:
            pc = engine.predict_addr
            descriptor = predictor_predict(history.spec, pc)
            if descriptor is None:
                stats_counts["trace_pred_misses"] += 1
                predictor_missed = True
            else:
                stats_counts["trace_pred_hits"] += 1
                ras_pre = $RAS_CKPT
                history_spec_push(descriptor.start)
                hist_snap = tuple(history.spec)
                for return_addr in descriptor.call_returns:
                    ras_push(return_addr)
                if descriptor.terminal_kind is KIND_RET:
                    nxt = ras_pop()
                else:
                    nxt = descriptor.next_addr
                ckpt = ($RAS_CKPT, hist_snap)
                ckpt_pre = (ras_pre, hist_snap)
                tk = descriptor.terminal_kind
                terminal = tk if tk is not KIND_NONE else None
                ftq_append(Request(descriptor.start, descriptor.length,
                                   terminal, nxt, None, ckpt,
                                   ckpt_pre=ckpt_pre, descriptor=descriptor))
                ftq.pushes += 1
                engine.predict_addr = nxt
                engine._spec_fill_start = nxt
                engine._spec_fill_len = 0
                engine._spec_fill_conds = 0

        if now < engine._busy_until:
            return None

        if request is not None:
            # -- primary path: trace cache / descriptor-guided icache --
            descriptor = request.descriptor
            if request is not engine._cur_req:
                engine._cur_req = request
                engine._seg_idx = 0
                engine._seg_off = 0
                engine._prefix_left = 0
                hit = tc_lookup(descriptor)
                if not hit and $PARTIAL_MATCHING:
                    partial = tc_partial_match(descriptor)
                    if partial is not None and partial.interior_taken:
                        engine._prefix_left = (
                            partial.length
                            if partial.length < descriptor.length
                            else descriptor.length
                        )
                        stats_counts["tc_partial_hits"] += 1
                if hit:
                    stats_counts["tc_hits"] += 1
                else:
                    stats_counts["tc_misses"] += 1
                engine._tc_hit = hit

            tc_hit = engine._tc_hit
            if tc_hit or engine._prefix_left > 0:
                # Trace cache (or matched prefix) delivery.
                bundle = []
                emitted = 0
                budget = $WIDTH
                if not tc_hit and engine._prefix_left < budget:
                    budget = engine._prefix_left
                segments = descriptor.segments
                nseg = len(segments)
                while budget and engine._seg_idx < nseg:
                    seg_addr, seg_len = segments[engine._seg_idx]
                    addr = seg_addr + engine._seg_off * 4
                    take = seg_len - engine._seg_off
                    if budget < take:
                        take = budget
                    emit_run(bundle, request, descriptor, addr, take)
                    emitted += take
                    budget -= take
                    if not tc_hit:
                        engine._prefix_left -= take
                if engine._seg_idx >= nseg:
                    ftq_pop()
                    engine._cur_req = None
                    engine._tc_hit = None
                if not bundle:
                    return None
                engine.fetch_cycles += 1
                engine.fetched_instructions += emitted
                return bundle

            # Trace cache miss: rebuild from the instruction cache.
            seg_addr, seg_len = descriptor.segments[engine._seg_idx]
            addr = seg_addr + engine._seg_off * 4
            if not image_start <= addr < image_end:
                engine._waiting_resolve = True
                return None
            il1_line = addr >> $IL1_OFF
            il1_tag = il1_line >> $IL1_SHIFT
            il1_ways = il1_sets[il1_line & $IL1_MASK]
            il1_cache.accesses += 1
            if not ((il1_ways and il1_ways[0] == il1_tag)
                    or il1_tail(il1_ways, il1_tag)):
                extra = fill_l2(addr)
                if extra > 0:
                    stats_counts["icache_miss_stalls"] += 1
                    until = now + extra
                    if until > engine._busy_until:
                        engine._busy_until = until
                    return None
            take = seg_len - engine._seg_off
            if $WIDTH < take:
                take = $WIDTH
            to_line_end = ($LINE_BYTES - (addr & $LINE_MASK)) >> 2
            if to_line_end < take:
                take = to_line_end
            bundle = []
            emit_run(bundle, request, descriptor, addr, take)
            if engine._seg_idx >= len(descriptor.segments):
                ftq_pop()
                engine._cur_req = None
                engine._tc_hit = None
            if not bundle:
                return None
            engine.fetch_cycles += 1
            engine.fetched_instructions += take
            return bundle

        if predictor_missed and not ftq_queue:
            return build_fetch(now)
        return None

    def note_commit(dyn, payload, mispredicted):
        kind = dyn.kind
        if kind is not KIND_NONE:
            lbx = dyn.lb
            btb_update(lbx.addr + (lbx.size - 1) * 4,
                       dyn.next_addr if dyn.taken else 0, kind, dyn.taken)

        fill.mispredicted = fill.mispredicted or mispredicted
        remaining = dyn.size
        addr = dyn.addr
        fill_len = fill.length
        # Length-capped chunks: a block larger than the remaining trace
        # space splits the trace at the cap boundary (inlined add_run).
        while remaining:
            space = $MAX_TRACE_LENGTH - fill_len
            if space == 0:
                fill.length = fill_len
                finalize_trace(KIND_NONE, addr)
                fill_len = fill.length
                continue
            take = space if space < remaining else remaining
            segments = fill.segments
            if fill_len == 0:
                fill.start = addr
            if segments and (
                segments[-1][0] + segments[-1][1] * 4 == addr
            ):
                segments[-1][1] += take
            else:
                segments.append([addr, take])
            fill_len += take
            addr += take * 4
            remaining -= take
        fill.length = fill_len
        if kind is KIND_NONE:
            return

        if kind is KIND_COND:
            fill.outcomes.append(dyn.taken)
        elif kind is KIND_CALL:
            fill.call_returns.append(dyn.lb.fallthrough_addr)

        if (
            fill_len >= $MAX_TRACE_LENGTH
            or len(fill.outcomes) >= $MAX_TRACE_BRANCHES
            or kind is KIND_RET
            or kind is KIND_IND
            or mispredicted
        ):
            finalize_trace(kind, dyn.next_addr)

    return cycle, note_commit
'''


def _trace_consts(engine) -> dict:
    consts = _common_consts(engine)
    consts["MAX_TRACE_LENGTH"] = MAX_TRACE_LENGTH
    consts["MAX_TRACE_BRANCHES"] = MAX_TRACE_BRANCHES
    consts["PARTIAL_MATCHING"] = bool(engine.partial_matching)
    return consts


for _tpl_name in ("_EV8_TEMPLATE", "_FTB_TEMPLATE", "_STREAM_TEMPLATE",
                  "_TRACE_TEMPLATE"):
    globals()[_tpl_name] = globals()[_tpl_name].replace("$RAS_CKPT",
                                                        _RAS_CKPT)

_NAMESPACE = {
    "BranchKind": BranchKind,
    "FetchRequest": FetchRequest,
    "StreamRecord": StreamRecord,
    "scan_run": scan_run,
}

#: Exact engine classes we know how to specialize.  A subclass gets its
#: interpreted ``cycle``/``note_commit`` instead — its overrides must
#: keep working.
_SPECS = {
    EV8FetchEngine: ("cycle:ev8", _EV8_TEMPLATE, _ev8_consts),
    FTBFetchEngine: ("cycle:ftb", _FTB_TEMPLATE, _ftb_consts),
    StreamFetchEngine: ("cycle:stream", _STREAM_TEMPLATE, _stream_consts),
    TraceCacheFetchEngine: ("cycle:trace", _TRACE_TEMPLATE, _trace_consts),
}


def cycle_kernel(engine) -> Optional[CompiledKernel]:
    """The compiled cycle/commit kernel for ``engine`` (None if unknown)."""
    spec = _SPECS.get(type(engine))
    if spec is None:
        return None
    name, template, consts_fn = spec
    consts = consts_fn(engine)
    config_key = tuple(sorted(consts.items()))
    return compile_kernel(
        name, config_key, template, consts, _NAMESPACE, "make_kernels",
    )


def make_kernels(engine) -> Tuple[Optional[Callable], Optional[Callable]]:
    """Specialized ``(cycle, note_commit)`` closures for ``engine``.

    ``(None, None)`` when the engine class has no specialization — the
    core kernel then binds the interpreted bound methods instead.
    """
    kernel = cycle_kernel(engine)
    if kernel is None:
        return None, None
    return kernel.factory(engine)


def cycle_kernel_source(engine) -> Optional[str]:
    """The generated source text for ``engine``'s cycle kernel."""
    kernel = cycle_kernel(engine)
    return None if kernel is None else kernel.source
