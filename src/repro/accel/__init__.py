"""``repro.accel`` — exec-compiled, config-specialized simulation kernels.

Per (engine, fetch width, machine parameters) configuration this
package emits specialized Python source for the simulator's hot paths —
the :class:`~repro.core.processor.Processor` cycle loop with the
:class:`~repro.core.backend.DataflowBackend` segment scheduler inlined
(:mod:`repro.accel.core_gen`) and each fetch engine's per-cycle
fragment hand-off (:mod:`repro.accel.engine_gen`) — and compiles it
into closure kernels with all config constants folded.  No external
toolchain: everything is stdlib ``compile()``/``exec()``.

Results are **bit-identical** to the interpreted paths in all modes —
the kernels are transliterations, the schedule-template store is shared
unchanged, and ``tests/accel/`` pins full-result parity per engine and
width — so artifact-store fingerprints do not depend on the engine mode
and warm caches stay valid either way.

Selection: ``engine_mode`` is ``"accel"``, ``"interp"`` or ``"auto"``
(the default).  ``auto`` consults :data:`ACCEL_ENV` (``$REPRO_ACCEL``,
mirroring ``$REPRO_STORE``) and otherwise enables the accelerator.  Any
failure to generate, compile or bind a kernel warns **once** per
process and falls back to the interpreted path; it can never change
results or abort a run.

Debugging: :func:`kernel_sources` returns the generated text for a
given architecture, and ``python -m repro.accel ARCH [WIDTH]`` prints
it (see benchmarks/README.md, "Accelerator").
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro import obs
from repro.accel.codegen import clear_compile_cache
from repro.common.warnonce import reset_warn_once, warn_once

__all__ = [
    "ACCEL_ENV",
    "clear_compile_cache",
    "compiled_run",
    "kernel_sources",
    "reset_fallback_warning",
    "resolve_engine_mode",
]

#: Environment variable consulted by ``engine_mode="auto"``.
ACCEL_ENV = "REPRO_ACCEL"

_OFF_VALUES = frozenset(
    {"0", "false", "no", "off", "interp", "interpreter"}
)
_ON_VALUES = frozenset({"1", "true", "yes", "on", "accel", "auto", ""})


def resolve_engine_mode(mode: Optional[str] = None) -> str:
    """Normalize an engine-mode request to ``"accel"`` or ``"interp"``.

    ``mode`` may be ``"accel"`` / ``"interp"`` (explicit, wins over the
    environment), ``"auto"`` / ``None`` (consult ``$REPRO_ACCEL``,
    default on), or a bool.
    """
    if mode == "accel" or mode is True:
        return "accel"
    if mode == "interp" or mode is False:
        return "interp"
    if mode is None or mode == "auto":
        env = os.environ.get(ACCEL_ENV, "").strip().lower()
        if env in _OFF_VALUES:
            return "interp"
        if env not in _ON_VALUES:
            warn_once(
                "accel.env",
                f"repro.accel: unrecognized ${ACCEL_ENV}={env!r}; "
                "expected accel/interp/auto (or 1/0) — using accel",
                stacklevel=2,
            )
        return "accel"
    raise ValueError(
        f"engine_mode must be 'accel', 'interp' or 'auto', got {mode!r}"
    )


def reset_fallback_warning() -> None:
    """Re-arm the warn-once fallback notice (tests)."""
    reset_warn_once("accel.fallback")


def _warn_fallback(exc: BaseException) -> None:
    obs.ACCEL_FALLBACKS.inc()
    warn_once(
        "accel.fallback",
        f"repro.accel: kernel generation failed ({exc!r}); "
        "falling back to the interpreted engine (results are "
        "identical, only slower)",
        stacklevel=3,
    )


def compiled_run(processor) -> Optional[Callable]:
    """A bound run-kernel for ``processor``, or None on any failure.

    The returned callable has the signature
    ``run(max_instructions, warmup=0) -> SimulationResult`` and is a
    drop-in for the interpreted :meth:`Processor.run` hot path.  Any
    exception during codegen, compilation or binding warns once and
    returns None — the caller then uses the interpreted path.
    """
    try:
        from repro.accel import core_gen, engine_gen

        engine_cycle, engine_note_commit = engine_gen.make_kernels(
            processor.engine
        )
        return core_gen.make_run(processor, engine_cycle, engine_note_commit)
    except Exception as exc:  # noqa: BLE001 - fallback must never raise
        _warn_fallback(exc)
        return None


def kernel_sources(processor) -> dict:
    """Generated source texts for ``processor``'s configuration.

    Returns ``{"run": str, "cycle": str | None, "chains": str}`` — the
    specialized processor/scheduler kernel, the engine's cycle kernel
    (None when the engine class has no specialization), and the
    transition-follow block of the chained-template fast path exactly
    as it is spliced into the run kernel.  For debugging; see
    ``python -m repro.accel``.
    """
    from repro.accel import core_gen, engine_gen

    return {
        "run": core_gen.run_kernel_source(processor),
        "cycle": engine_gen.cycle_kernel_source(processor.engine),
        "chains": core_gen.chain_follow_source(processor),
    }
