"""Lightweight statistics collection.

Simulator components accumulate named integer counters in a
:class:`CounterBag`; derived rates are computed on demand.  Keeping raw
counters (rather than running averages) makes results mergeable across
benchmarks, which is how the harmonic-mean figures of the paper are
produced.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping


class CounterBag:
    """A dictionary of named integer counters with safe rate helpers."""

    __slots__ = ("_counts",)

    def __init__(self, initial: Mapping[str, int] | None = None) -> None:
        self._counts: Dict[str, int] = defaultdict(int)
        if initial:
            self._counts.update(initial)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __setitem__(self, name: str, value: int) -> None:
        self._counts[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def rate(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` or 0.0 when the denominator is 0."""
        denom = self._counts.get(denominator, 0)
        if denom == 0:
            return 0.0
        return self._counts.get(numerator, 0) / denom

    def merge(self, other: "CounterBag") -> None:
        for key, value in other._counts.items():
            self._counts[key] += value

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def names(self) -> Iterable[str]:
        return self._counts.keys()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"CounterBag({body})"


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, the average the paper uses for IPC across SPECint.

    Raises ``ValueError`` on an empty input or non-positive values, which
    would silently corrupt an IPC average otherwise.
    """
    items = list(values)
    if not items:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("harmonic_mean requires positive values")
    return len(items) / sum(1.0 / v for v in items)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; used for speedup summaries in the harness."""
    items = list(values)
    if not items:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geometric_mean requires positive values")
    product = 1.0
    for v in items:
        product *= v
    return product ** (1.0 / len(items))
