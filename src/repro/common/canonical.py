"""Canonical plain-data encoding of parameter objects.

Reduces dataclasses, enums and containers to a JSON-encodable form with
deterministic structure — the representation the artifact store's
fingerprints hash (see :mod:`repro.store.fingerprint`), kept down in
``repro.common`` so low-level parameter modules can produce canonical
payloads without depending upward on the store subsystem.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-encodable canonical form.

    Dataclasses and enums carry their module-qualified class name so
    two parameter types with the same field values (or two same-named
    enum members) cannot collide, even same-named types from different
    modules; dict keys are stringified and sorted at encode time.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        fields = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            **fields,
        }
    if isinstance(obj, enum.Enum):
        cls = type(obj)
        return [f"{cls.__module__}.{cls.__qualname__}", obj.name]
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for fingerprint")
