"""Fundamental types shared across the simulator.

The reproduction models an abstract fixed-width ISA (4-byte instructions,
like the Alpha ISA used in the paper).  Control-flow instructions come in
five kinds; everything else is ``NONE`` from the front-end's perspective.
"""

from __future__ import annotations

import enum

#: Instruction size in bytes (Alpha-like fixed-width ISA).
INSTRUCTION_BYTES = 4


class BranchKind(enum.IntEnum):
    """Kind of the control-flow instruction terminating a basic block.

    ``NONE`` means the block simply falls through into its successor
    (no control instruction at the end).
    """

    NONE = 0
    #: Conditional direct branch: taken -> target, not-taken -> fall-through.
    COND = 1
    #: Unconditional direct jump.
    JUMP = 2
    #: Direct call; pushes the return address on the RAS.
    CALL = 3
    #: Return; target comes from the call stack / RAS.
    RET = 4
    #: Indirect jump (e.g. switch tables, virtual dispatch).
    IND = 5

    @property
    def is_control(self) -> bool:
        """True for any real control-flow instruction."""
        return self is not BranchKind.NONE

    @property
    def is_unconditional(self) -> bool:
        """True when the instruction always transfers control."""
        return self in _UNCONDITIONAL

    @property
    def has_static_target(self) -> bool:
        """True when the target is encoded in the instruction itself."""
        return self in _STATIC_TARGET


_UNCONDITIONAL = frozenset(
    {BranchKind.JUMP, BranchKind.CALL, BranchKind.RET, BranchKind.IND}
)
_STATIC_TARGET = frozenset({BranchKind.COND, BranchKind.JUMP, BranchKind.CALL})


class InstrClass(enum.IntEnum):
    """Execution class of an instruction, used by the back-end model."""

    ALU = 0
    MUL = 1
    LOAD = 2
    STORE = 3
    BRANCH = 4

    @property
    def base_latency(self) -> int:
        """Execution latency in cycles, before memory effects."""
        return _LATENCY[self]


_LATENCY = {
    InstrClass.ALU: 1,
    InstrClass.MUL: 3,
    InstrClass.LOAD: 1,  # plus D-cache latency modelled separately
    InstrClass.STORE: 1,
    InstrClass.BRANCH: 1,
}


def align_down(addr: int, granule: int) -> int:
    """Align ``addr`` down to a multiple of ``granule`` (a power of two)."""
    return addr & ~(granule - 1)


def instructions_to_line_end(addr: int, line_bytes: int) -> int:
    """Number of instructions from ``addr`` to the end of its cache line."""
    offset = addr & (line_bytes - 1)
    return (line_bytes - offset) // INSTRUCTION_BYTES
