"""Machine parameters mirroring Table 2 of the paper.

Every fetch architecture shares the *common settings* block of Table 2:
pipeline widths 2/4/8, 16 pipeline stages, a 4-entry FTQ, a 64KB 2-way
single-ported L1 instruction cache whose line size is four times the pipe
width, a 64KB 2-way L1 data cache, a 1MB 4-way unified L2 with 15-cycle
latency, and 100-cycle memory.  Architecture-specific predictor budgets
live in :mod:`repro.experiments.configs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import INSTRUCTION_BYTES


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency of one set-associative cache."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def instructions_per_line(self) -> int:
        return self.line_bytes // INSTRUCTION_BYTES


@dataclass(frozen=True)
class CoreParams:
    """Pipeline and window parameters of the simulated core."""

    width: int
    pipeline_depth: int = 16
    ftq_entries: int = 4
    #: Cycles from fetch to dispatch into the issue window.
    dispatch_depth: int = 8
    #: Cycles from fetch to the decode stage (decode-redirect bubble).
    decode_depth: int = 3
    #: Reorder-buffer capacity; gates fetch when full.
    rob_size: int = 0  # 0 -> derived from width in __post_init__

    def __post_init__(self) -> None:
        if self.width not in (1, 2, 4, 8, 16):
            raise ValueError(f"unsupported pipe width {self.width}")
        if self.rob_size == 0:
            object.__setattr__(self, "rob_size", 16 * self.width)


@dataclass(frozen=True)
class MemoryParams:
    """The memory hierarchy of Table 2."""

    il1: CacheParams
    dl1: CacheParams
    l2: CacheParams
    l2_latency: int = 15
    memory_latency: int = 100


@dataclass(frozen=True)
class MachineParams:
    """A complete machine configuration (core + memory)."""

    core: CoreParams
    memory: MemoryParams

    @property
    def width(self) -> int:
        return self.core.width

    def key_payload(self) -> dict:
        """Every parameter as plain data, for artifact-store fingerprints.

        Generated from the dataclass fields (via the store's
        canonicalizer, which tags each dataclass with its class name)
        so a new knob automatically becomes part of the cache key and
        two parameter types with equal fields cannot collide —
        forgetting to invalidate on a parameter change is not an
        available mistake.
        """
        from repro.common.canonical import canonical

        return canonical(self)


def default_memory(width: int) -> MemoryParams:
    """Table 2 memory hierarchy; the I-cache line is 4x the pipe width."""
    line_bytes = 4 * width * INSTRUCTION_BYTES  # 32 / 64 / 128 bytes
    return MemoryParams(
        il1=CacheParams(size_bytes=64 * 1024, assoc=2, line_bytes=line_bytes),
        dl1=CacheParams(size_bytes=64 * 1024, assoc=2, line_bytes=64),
        l2=CacheParams(size_bytes=1024 * 1024, assoc=4, line_bytes=64),
        l2_latency=15,
        memory_latency=100,
    )


def default_machine(width: int) -> MachineParams:
    """The Table 2 machine for a given pipe width (2, 4 or 8)."""
    return MachineParams(core=CoreParams(width=width), memory=default_memory(width))
