"""Path hashing for cascaded predictors.

The next stream predictor and the next trace predictor index their
second-level (path-correlated) tables with a **DOLC** hash of the recent
fetch-address history, the scheme used by the multiscalar control-flow
speculation work (Jacobson et al.) that the paper cites.

A DOLC specification ``(depth, older_bits, last_bits, current_bits)``
means: take the low ``older_bits`` bits of each of the ``depth - 1``
*older* history entries, the low ``last_bits`` bits of the most recent
history entry, and the low ``current_bits`` bits of the current address;
concatenate them and fold the result by XOR into the desired index width.

The paper's configurations (Table 2):

* streams: DOLC 12-2-4-10
* traces:  DOLC 9-4-7-9
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.types import INSTRUCTION_BYTES


def fold_xor(value: int, width_bits: int) -> int:
    """Fold an arbitrarily wide integer into ``width_bits`` bits by XOR.

    Negative inputs are reinterpreted as 64-bit two's complement — a
    Python negative never reaches zero under ``>>``, so masking keeps
    the fold total for any int.
    """
    if width_bits <= 0:
        raise ValueError("width_bits must be positive")
    value &= (1 << 64) - 1
    mask = (1 << width_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= width_bits
    return folded


@dataclass(frozen=True)
class DolcSpec:
    """A DOLC hash specification (see module docstring)."""

    depth: int
    older_bits: int
    last_bits: int
    current_bits: int

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("DOLC depth must be >= 1")
        for name in ("older_bits", "last_bits", "current_bits"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_bits(self) -> int:
        older = max(self.depth - 1, 0) * self.older_bits
        return older + self.last_bits + self.current_bits


class DolcHasher:
    """Computes table indices from (history, current-address) pairs.

    Addresses are word-aligned, so the two zero low-order bits are
    stripped before hashing to avoid wasting index entropy.
    """

    def __init__(self, spec: DolcSpec, index_bits: int) -> None:
        if index_bits <= 0:
            raise ValueError("index_bits must be positive")
        self.spec = spec
        self.index_bits = index_bits

    def index(self, history: Sequence[int], current: int) -> int:
        """Hash the most recent ``depth - 1`` history addresses + current.

        ``history`` is ordered oldest-first; entries beyond the DOLC depth
        are ignored, and a short history simply contributes fewer bits
        (cold-start behaviour of the real hardware registers).

        Each address contributes a *fold* of its full word value rather
        than its raw low-order bits: block addresses are strongly biased
        towards aligned low bits, and the hardware's DOLC bit selection
        is tuned to pick informative positions — folding is the
        software equivalent of that tuning.
        """
        spec = self.spec
        value = fold_xor(current >> _ADDR_SHIFT, spec.current_bits)
        width = spec.current_bits

        wanted = spec.depth - 1
        if wanted and history:
            recent = history[-wanted:]
            # Most recent history entry contributes `last_bits`.
            value |= fold_xor(recent[-1] >> _ADDR_SHIFT, spec.last_bits) << width
            width += spec.last_bits
            if spec.older_bits:
                for addr in reversed(recent[:-1]):
                    value |= (
                        fold_xor(addr >> _ADDR_SHIFT, spec.older_bits) << width
                    )
                    width += spec.older_bits
        return fold_xor(value, self.index_bits)

    def tag(self, history: Sequence[int], current: int) -> int:
        """A tag that disambiguates different paths mapping to one index.

        Combines the unfolded upper address bits with a secondary fold of
        the path so that two different streams rarely alias.
        """
        base = current >> (_ADDR_SHIFT + self.index_bits)
        path = 0
        wanted = self.spec.depth - 1
        if wanted and history:
            for addr in history[-wanted:]:
                path = ((path << 5) ^ (addr >> _ADDR_SHIFT)) & 0xFFFFFFFF
        return (base << 16) ^ fold_xor(path, 16)


# Word-aligned instruction addresses: strip the constant low bits.
_ADDR_SHIFT = INSTRUCTION_BYTES.bit_length() - 1
