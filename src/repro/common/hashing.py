"""Path hashing for cascaded predictors.

The next stream predictor and the next trace predictor index their
second-level (path-correlated) tables with a **DOLC** hash of the recent
fetch-address history, the scheme used by the multiscalar control-flow
speculation work (Jacobson et al.) that the paper cites.

A DOLC specification ``(depth, older_bits, last_bits, current_bits)``
means: take the low ``older_bits`` bits of each of the ``depth - 1``
*older* history entries, the low ``last_bits`` bits of the most recent
history entry, and the low ``current_bits`` bits of the current address;
concatenate them and fold the result by XOR into the desired index width.

The paper's configurations (Table 2):

* streams: DOLC 12-2-4-10
* traces:  DOLC 9-4-7-9
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.types import INSTRUCTION_BYTES


def fold_xor(value: int, width_bits: int) -> int:
    """Fold an arbitrarily wide integer into ``width_bits`` bits by XOR.

    Negative inputs are reinterpreted as 64-bit two's complement — a
    Python negative never reaches zero under ``>>``, so masking keeps
    the fold total for any int.
    """
    if width_bits <= 0:
        raise ValueError("width_bits must be positive")
    value &= (1 << 64) - 1
    mask = (1 << width_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= width_bits
    return folded


@dataclass(frozen=True)
class DolcSpec:
    """A DOLC hash specification (see module docstring)."""

    depth: int
    older_bits: int
    last_bits: int
    current_bits: int

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("DOLC depth must be >= 1")
        for name in ("older_bits", "last_bits", "current_bits"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_bits(self) -> int:
        older = max(self.depth - 1, 0) * self.older_bits
        return older + self.last_bits + self.current_bits


#: Shared DOLC memo dicts keyed by (spec, index_bits).  Both caches
#: memoize pure functions of their keys (no predictor state), so every
#: hasher with the same specification — across predictors, processors
#: and runs in one process — can share one pair and stay warm.
_DOLC_CACHES: dict = {}

#: Shared first-level (address-indexed) fold memos, keyed by index
#: width: addr -> (fold_xor(addr >> 2, bits), (addr >> 2) >> bits).
#: Pure per width, so predictors across processors share one dict;
#: the population spans every image simulated in the process, so
#: callers bound their inserts with :data:`T1_CACHE_LIMIT`.
_T1_CACHES: dict = {}

#: Deterministic size bounds for the shared pure memos (entries).
_FOLD_CACHE_LIMIT = 1 << 20
T1_CACHE_LIMIT = 1 << 20


def shared_t1_cache(index_bits: int) -> dict:
    """The shared address->(index, tag) memo for one index width."""
    cache = _T1_CACHES.get(index_bits)
    if cache is None:
        cache = _T1_CACHES[index_bits] = {}
    return cache


def make_t1_index_tag(index_bits: int):
    """A memoized ``addr -> (index, tag)`` first-level table hasher.

    The returned closure owns the shared per-width memo — both cascaded
    predictors bind one, so the fold logic and the deterministic size
    bound live here exactly once.
    """
    cache = shared_t1_cache(index_bits)
    cache_get = cache.get

    def t1_index_tag(addr: int) -> tuple:
        hit = cache_get(addr)
        if hit is None:
            if len(cache) > T1_CACHE_LIMIT:
                cache.clear()
            word = addr >> 2
            hit = cache[addr] = (
                fold_xor(word, index_bits), word >> index_bits
            )
        return hit

    return t1_index_tag


class DolcHasher:
    """Computes table indices from (history, current-address) pairs.

    Addresses are word-aligned, so the two zero low-order bits are
    stripped before hashing to avoid wasting index entropy.
    """

    def __init__(self, spec: DolcSpec, index_bits: int) -> None:
        if index_bits <= 0:
            raise ValueError("index_bits must be positive")
        self.spec = spec
        self.index_bits = index_bits
        caches = _DOLC_CACHES.get((spec, index_bits))
        if caches is None:
            caches = _DOLC_CACHES[(spec, index_bits)] = ({}, {})
        # Memoized per-address folds.  Shared process-wide per spec, so
        # the population spans every image simulated in this process —
        # bounded by a deterministic clear, like the window cache, so a
        # long-lived sweep service cannot grow it without limit.
        self._fold_cache = caches[0]
        # Memoized (history-window, current) -> (index, tag): loops make
        # the same windows recur constantly, and the commit-side update
        # re-hashes exactly what the fetch side hashed.  Bounded by a
        # deterministic clear so adversarial histories cannot leak.
        self._it_cache = caches[1]

    def _fold_addr(self, addr: int, width_bits: int) -> int:
        key = (addr, width_bits)
        cache = self._fold_cache
        folded = cache.get(key)
        if folded is None:
            if len(cache) > _FOLD_CACHE_LIMIT:
                cache.clear()
            folded = cache[key] = fold_xor(
                addr >> _ADDR_SHIFT, width_bits
            )
        return folded

    def index(self, history: Sequence[int], current: int) -> int:
        """Hash the most recent ``depth - 1`` history addresses + current.

        ``history`` is ordered oldest-first; entries beyond the DOLC depth
        are ignored, and a short history simply contributes fewer bits
        (cold-start behaviour of the real hardware registers).

        Each address contributes a *fold* of its full word value rather
        than its raw low-order bits: block addresses are strongly biased
        towards aligned low bits, and the hardware's DOLC bit selection
        is tuned to pick informative positions — folding is the
        software equivalent of that tuning.
        """
        spec = self.spec
        fold_addr = self._fold_addr
        value = fold_addr(current, spec.current_bits)
        width = spec.current_bits

        wanted = spec.depth - 1
        n = len(history)
        if wanted and n:
            take = wanted if wanted < n else n
            # Most recent history entry contributes `last_bits`.
            value |= fold_addr(history[-1], spec.last_bits) << width
            width += spec.last_bits
            older_bits = spec.older_bits
            if older_bits:
                # history[-2] .. history[-take], newest-to-oldest — the
                # same order the sliced version visited them in.
                for i in range(2, take + 1):
                    value |= fold_addr(history[-i], older_bits) << width
                    width += older_bits
        return fold_xor(value, self.index_bits)

    def index_tag(self, history: Sequence[int], current: int) -> tuple:
        """``(index, tag)`` computed in a single pass over the history.

        Equivalent to ``(self.index(h, c), self.tag(h, c))`` but shares
        the history walk and inlines the per-address fold memoization —
        this pair is computed once per predictor lookup, which makes it
        one of the hottest call sites in the whole simulator.
        """
        spec = self.spec
        wanted = spec.depth - 1
        n = len(history)
        window = tuple(history[n - wanted:]) if n > wanted else tuple(history)
        it_cache = self._it_cache
        it_key = (current, window)
        hit = it_cache.get(it_key)
        if hit is not None:
            return hit

        cache = self._fold_cache
        if len(cache) > _FOLD_CACHE_LIMIT:  # deterministic bound
            cache.clear()
        cache_get = cache.get

        current_bits = spec.current_bits
        key = (current, current_bits)
        value = cache_get(key)
        if value is None:
            value = cache[key] = fold_xor(current >> _ADDR_SHIFT, current_bits)
        width = current_bits

        path = 0
        if wanted and n:
            take = wanted if wanted < n else n
            last_bits = spec.last_bits
            last = history[-1]
            key = (last, last_bits)
            folded = cache_get(key)
            if folded is None:
                folded = cache[key] = fold_xor(last >> _ADDR_SHIFT, last_bits)
            value |= folded << width
            width += last_bits
            older_bits = spec.older_bits
            if older_bits:
                for i in range(2, take + 1):
                    addr = history[-i]
                    key = (addr, older_bits)
                    folded = cache_get(key)
                    if folded is None:
                        folded = cache[key] = fold_xor(
                            addr >> _ADDR_SHIFT, older_bits
                        )
                    value |= folded << width
                    width += older_bits
            # Path tag: oldest-to-newest over the same window.
            for i in range(n - take, n):
                path = ((path << 5) ^ (history[i] >> _ADDR_SHIFT)) & 0xFFFFFFFF
        index = fold_xor(value, self.index_bits)
        base = current >> (_ADDR_SHIFT + self.index_bits)
        result = (index, (base << 16) ^ fold_xor(path, 16))
        if len(it_cache) > (1 << 20):  # deterministic bound
            it_cache.clear()
        it_cache[it_key] = result
        return result

    def tag(self, history: Sequence[int], current: int) -> int:
        """A tag that disambiguates different paths mapping to one index.

        Combines the unfolded upper address bits with a secondary fold of
        the path so that two different streams rarely alias.
        """
        base = current >> (_ADDR_SHIFT + self.index_bits)
        path = 0
        wanted = self.spec.depth - 1
        n = len(history)
        if wanted and n:
            start = n - wanted if n > wanted else 0
            for i in range(start, n):
                path = ((path << 5) ^ (history[i] >> _ADDR_SHIFT)) & 0xFFFFFFFF
        return (base << 16) ^ fold_xor(path, 16)


# Word-aligned instruction addresses: strip the constant low bits.
_ADDR_SHIFT = INSTRUCTION_BYTES.bit_length() - 1
