"""One shared warn-once: a keyed warning that also feeds `repro.obs`.

Four layers grew four private copies of the same idiom — a flag or a
seen-set guarding ``warnings.warn`` so a degradation is announced once
and then handled quietly.  This module is the single implementation:
every call increments ``repro_warnings_total{key=...}`` and records a
typed ``warning`` event on any attached flight recorder (so the full
history survives in the event stream), while the user-visible warning
still fires exactly once per key.

``registry`` scopes the once-ness: the default is a process-global
set (module-global semantics, as in :mod:`repro.accel`), while a
caller that wants per-instance semantics (one warning per *pool*, as
in :class:`repro.exec.pool.Pool`) passes its own set.
"""

from __future__ import annotations

import threading
import warnings
from typing import Optional, Set

__all__ = ["reset_warn_once", "warn_once", "warned"]

_GLOBAL_SEEN: Set[str] = set()
_LOCK = threading.Lock()


def warn_once(
    key: str,
    message: str,
    *,
    category: type = RuntimeWarning,
    stacklevel: int = 2,
    registry: Optional[Set[str]] = None,
) -> bool:
    """Warn with ``message`` the first time ``key`` is seen.

    Every call — first or repeat — increments the warnings counter and
    records an obs event; only the first call per key per ``registry``
    emits the :mod:`warnings` warning.  ``stacklevel`` counts from the
    *caller* of ``warn_once`` (2 = the caller's caller), matching what
    the call site would have passed to ``warnings.warn`` directly.
    Returns True when the warning was emitted.
    """
    from repro import obs

    obs.WARNINGS.inc(key=key)
    obs.record_event("warning", key=key, message=str(message))
    seen = _GLOBAL_SEEN if registry is None else registry
    with _LOCK:
        if key in seen:
            return False
        seen.add(key)
    warnings.warn(message, category, stacklevel=stacklevel + 1)
    return True


def warned(key: str, registry: Optional[Set[str]] = None) -> bool:
    """Whether ``key`` has already warned in ``registry``."""
    seen = _GLOBAL_SEEN if registry is None else registry
    with _LOCK:
        return key in seen


def reset_warn_once(
    key: Optional[str] = None,
    registry: Optional[Set[str]] = None,
) -> None:
    """Forget one key (or all of them) so the next call warns again.

    Test hook — mirrors what tests previously did by poking the
    per-module flags directly.
    """
    seen = _GLOBAL_SEEN if registry is None else registry
    with _LOCK:
        if key is None:
            seen.clear()
        else:
            seen.discard(key)
