"""Shared transport plumbing for anything that dials a serve daemon.

Both :class:`repro.serve.client.ServeClient` and the remote-store
client (:mod:`repro.store.remote.client`) need the same connect-phase
behavior: retry transient refusals a bounded number of times, spaced
by the sha256-derived deterministically-jittered exponential backoff
that :func:`repro.exec.policy.backoff_delay` provides (keyed on the
address, so a fleet of clients does not retry in lockstep), and fail
fast on anything that is not transient.  This module is that one
implementation; the clients wrap the raised :class:`OSError` in their
own typed exceptions.
"""

from __future__ import annotations

import errno
import socket
import time
from typing import Optional, Tuple

from repro.exec.policy import FaultPolicy, backoff_delay

__all__ = [
    "TRANSIENT_CONNECT_ERRNOS",
    "connect_with_retries",
    "parse_hostport",
]

#: Connect-phase errnos worth retrying: a daemon that is restarting
#: (refused) or dropped the handshake (reset) is transiently gone, not
#: absent.  Anything else (EHOSTUNREACH, DNS failure, ...) fails fast.
TRANSIENT_CONNECT_ERRNOS = frozenset({
    errno.ECONNREFUSED, errno.ECONNRESET,
})


def parse_hostport(address: str) -> Tuple[str, int]:
    """``"host:port"`` or bare ``"port"`` -> ``(host, port)``.

    Raises :class:`ValueError` on anything else; callers wrap it in
    their own typed error.
    """
    host, sep, port = address.rpartition(":")
    if not sep:
        host = "127.0.0.1"
        port = address
    host = host or "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"bad address {address!r} (want host:port)") from None


def connect_with_retries(
    host: str,
    port: int,
    *,
    timeout: Optional[float],
    policy: FaultPolicy,
    key: Optional[str] = None,
) -> socket.socket:
    """Connect with bounded retries on transient refusals.

    ECONNREFUSED/ECONNRESET during the handshake get ``policy.retries``
    more chances, spaced by ``backoff_delay(policy, key, attempt)``;
    everything else raises immediately.  On exhaustion the last
    :class:`OSError` is raised.
    """
    if key is None:
        key = f"{host}:{port}"
    last: Optional[OSError] = None
    for attempt in range(policy.retries + 1):
        try:
            return socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            last = exc
            if exc.errno not in TRANSIENT_CONNECT_ERRNOS:
                break
            if attempt < policy.retries:
                time.sleep(backoff_delay(policy, key, attempt + 1))
    assert last is not None
    raise last
