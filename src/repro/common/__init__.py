"""Shared infrastructure: types, machine parameters, statistics, hashing."""

from repro.common.types import BranchKind, INSTRUCTION_BYTES
from repro.common.params import (
    CacheParams,
    CoreParams,
    MemoryParams,
    MachineParams,
    default_machine,
)
from repro.common.stats import CounterBag

__all__ = [
    "BranchKind",
    "INSTRUCTION_BYTES",
    "CacheParams",
    "CoreParams",
    "MemoryParams",
    "MachineParams",
    "default_machine",
    "CounterBag",
]
