"""Shared infrastructure: types, machine parameters, statistics, hashing."""

from repro.common.types import BranchKind, INSTRUCTION_BYTES
from repro.common.params import (
    CacheParams,
    CoreParams,
    MemoryParams,
    MachineParams,
    default_machine,
)
from repro.common.stats import CounterBag
from repro.common.warnonce import reset_warn_once, warn_once, warned

__all__ = [
    "BranchKind",
    "INSTRUCTION_BYTES",
    "CacheParams",
    "CoreParams",
    "MemoryParams",
    "MachineParams",
    "default_machine",
    "CounterBag",
    "reset_warn_once",
    "warn_once",
    "warned",
]
