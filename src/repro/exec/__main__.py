"""``python -m repro.exec selftest`` — prove the fault ladder end to end.

Runs one tiny experiment matrix fault-free, then re-runs it under each
injected fault class (worker SIGKILL, hang + deadline, transient
exceptions, store I/O errors, SIGKILL inside a store write) and checks
every run returns bit-identical results.  A smoke test for the whole
resilience stack on the machine at hand — cheap enough for CI, honest
enough to catch a platform where SIGALRM or pipe semantics differ.

Exits 0 when every scenario passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import sys
import tempfile
import warnings
from typing import Callable, List, Tuple

from repro.exec.faults import FAULTS_ENV, FaultSpec, active_plan, encode_plan
from repro.exec.policy import FaultPolicy

#: One small matrix: two architectures over one benchmark/layout/width,
#: so the pool has two cells to shard and the fault specs can target
#: one of them ("ev8") by key substring.
MATRIX = dict(
    benchmarks=("gzip",),
    widths=(8,),
    archs=("stream", "ev8"),
    layouts=(True,),
    instructions=3000,
    warmup=1000,
    scale=0.3,
)
FAST = FaultPolicy(retries=2, backoff=0.0)


def _baseline():
    from repro.experiments.runner import run_matrix

    return run_matrix(**MATRIX)


def _check_worker_kill(base) -> None:
    from repro.experiments.runner import run_matrix

    with active_plan(FaultSpec("kill", match="ev8", times=1)):
        got = run_matrix(**MATRIX, jobs=2, fault_policy=FAST)
    assert got.results == base.results, "results differ after worker kill"


def _check_hang(base) -> None:
    from repro.experiments.runner import run_matrix

    policy = FaultPolicy(timeout=20.0, retries=2, backoff=0.0)
    with active_plan(FaultSpec("hang", match="ev8", times=1, seconds=120)):
        got = run_matrix(**MATRIX, jobs=2, fault_policy=policy)
    assert got.results == base.results, "results differ after hang"


def _check_transient_exc(base) -> None:
    from repro.experiments.runner import run_matrix

    with active_plan(FaultSpec("exc", match="ev8", times=2)):
        got = run_matrix(**MATRIX, fault_policy=FAST)
    assert got.results == base.results, "results differ after exceptions"


def _check_store_errors(base) -> None:
    from repro.experiments.runner import run_matrix

    with tempfile.TemporaryDirectory() as root:
        with active_plan(FaultSpec("store_err", match="result", times=2)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                got = run_matrix(**MATRIX, store=root, fault_policy=FAST)
        assert got.results == base.results, \
            "results differ under store I/O errors"


def _store_kill_child(root: str) -> None:
    """Child body: run the matrix serially and die inside a store write."""
    os.environ[FAULTS_ENV] = encode_plan(
        FaultSpec("store_kill", match="result", times=1)
    )
    from repro.exec import faults
    from repro.experiments.runner import run_matrix

    faults.refresh()
    run_matrix(**MATRIX, store=root, fault_policy=FaultPolicy(retries=0))


def _check_store_kill(base) -> None:
    from repro.experiments.runner import run_matrix

    ctx = multiprocessing.get_context()
    with tempfile.TemporaryDirectory() as root:
        child = ctx.Process(target=_store_kill_child, args=(root,))
        child.start()
        child.join(timeout=300)
        assert child.exitcode == -9, (
            f"expected the child SIGKILLed mid-write, got exit "
            f"{child.exitcode}"
        )
        # The torn write must degrade to a clean miss: the resumed run
        # re-simulates it and still matches bit for bit.
        got = run_matrix(**MATRIX, store=root, resume=True)
        assert got.results == base.results, \
            "results differ after SIGKILL inside a store write"


CHECKS: List[Tuple[str, Callable]] = [
    ("worker-kill", _check_worker_kill),
    ("hang-deadline", _check_hang),
    ("transient-exception", _check_transient_exc),
    ("store-io-error", _check_store_errors),
    ("store-write-kill", _check_store_kill),
]


def selftest(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec selftest",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--only", metavar="NAME",
        help="run a single scenario (see the list in --help-scenarios)",
    )
    parser.add_argument(
        "--help-scenarios", action="store_true",
        help="list the fault scenarios and exit",
    )
    args = parser.parse_args(argv)
    if args.help_scenarios:
        for name, _ in CHECKS:
            print(name)
        return 0

    checks = CHECKS
    if args.only:
        checks = [(n, fn) for n, fn in CHECKS if n == args.only]
        if not checks:
            print(f"selftest: unknown scenario {args.only!r}",
                  file=sys.stderr)
            return 2

    print(f"selftest: baseline matrix "
          f"({MATRIX['instructions']} instructions x "
          f"{len(MATRIX['archs'])} cells)...", flush=True)
    base = _baseline()

    failed = 0
    for name, check in checks:
        print(f"selftest: {name}...", end=" ", flush=True)
        try:
            check(base)
        except Exception as exc:
            failed += 1
            print(f"FAIL ({type(exc).__name__}: {exc})")
        else:
            print("ok")
    if failed:
        print(f"selftest: {failed} scenario(s) FAILED", file=sys.stderr)
        return 1
    print(f"selftest: {len(checks)} scenario(s) passed, results "
          f"bit-identical under every injected fault")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.exec")
    parser.add_argument("command", choices=["selftest"])
    parser.add_argument("rest", nargs=argparse.REMAINDER)
    args = parser.parse_args(argv)
    if args.command == "selftest":
        return selftest(args.rest)
    return 2  # pragma: no cover - argparse rejects other commands


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
