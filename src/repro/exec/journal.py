"""Sweep checkpointing: a store-journaled record of completed cells.

A *sweep* is one ``run_matrix`` cross product, identified by the
fingerprint of its cell set (:func:`sweep_fingerprint` over the cells'
result fingerprints — everything that determines a cell's output is
already folded into those).  While the sweep runs, every completed
cell's result fingerprint is appended to
``<store-root>/runs/<sweep-fp>.journal`` immediately after the result
lands in the artifact store, with a single ``O_APPEND`` write per line
so concurrent writers and a SIGKILL mid-append can at worst produce a
torn *trailing* line, which the reader ignores.

The journal is a progress record, not a second source of truth: resume
correctness comes from the store itself (a re-run re-fingerprints every
cell and serves the hits), so a journal line whose result was since
garbage-collected simply re-simulates.  What the journal buys is
observability — "this sweep is 37/88 done" before any simulation starts
— and store-side lifecycle: ``gc`` can recognize completed or stale
sweeps and drop their journals (see
:meth:`repro.store.store.ArtifactStore.gc`).

The line format itself (header + fingerprint lines) lives in
:mod:`repro.store.store` next to the gc that consumes it; this module
owns the sweep-level semantics.
"""

from __future__ import annotations

import hashlib
import sys
from typing import Iterable, Optional, Set

from repro.store.store import (
    ArtifactStore,
    append_journal_lines,
    journal_header_line,
    read_journal,
)


def sweep_fingerprint(result_fps: Iterable[str]) -> str:
    """The identity of a sweep: a digest over its (sorted) cell set.

    Order-independent on purpose — the same cross product enumerated in
    a different axis order is the same sweep and must resume from the
    same journal.
    """
    digest = hashlib.sha256()
    for fp in sorted(result_fps):
        digest.update(fp.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


class SweepJournal:
    """Append-side view of one sweep's journal file.

    Failures degrade, never abort: the store was probed writable when
    the run attached it, but a mid-sweep I/O error on the journal costs
    only the checkpoint (the run itself continues and its results still
    land in the store) — one warning, then the journal goes quiet.
    """

    def __init__(self, store: ArtifactStore, sweep_fp: str,
                 cells: int) -> None:
        self.store = store
        self.sweep_fp = sweep_fp
        self.cells = cells
        self.path = store.journal_path(sweep_fp)
        self._recorded: Set[str] = set()
        self._header_written = False
        self._failed = False

    def read(self) -> Set[str]:
        """Fingerprints a previous (or concurrent) run already journaled.

        Also primes the dedup set, so resuming a half-done sweep does
        not re-append every cached cell.
        """
        record = read_journal(self.path)
        done: Set[str] = set(record["done"]) if record else set()
        if record is not None:
            self._header_written = True
        self._recorded |= done
        return done

    def append(self, result_fp: str) -> bool:
        """Record one completed cell; True when a line was written."""
        if self._failed or result_fp in self._recorded:
            return False
        lines = []
        if not self._header_written:
            lines.append(journal_header_line(self.sweep_fp, self.cells))
        lines.append(result_fp)
        try:
            append_journal_lines(self.path, lines)
        except OSError as exc:
            self._failed = True
            print(
                f"warning: sweep journal {self.path} is not writable "
                f"({exc}); resume checkpointing disabled for this run",
                file=sys.stderr,
            )
            return False
        self._header_written = True
        self._recorded.add(result_fp)
        return True

    def progress(self) -> Optional[str]:
        """A human-readable "k/n cells journaled" summary."""
        return f"{len(self._recorded)}/{self.cells}"
