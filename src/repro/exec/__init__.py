"""``repro.exec`` — fault-tolerant sweep execution.

The job-pool subsystem ``run_matrix`` dispatches through: a pluggable
:class:`~repro.exec.pool.Pool` interface with a serial and a forked
backend, a per-cell :class:`~repro.exec.policy.FaultPolicy` (timeouts,
bounded retries with deterministic backoff, crash rebuilds, graceful
degradation), store-journaled sweep checkpoints for interrupt/resume
(:mod:`repro.exec.journal`), and a deterministic fault-injection
harness (:mod:`repro.exec.faults`) that the test suite and
``python -m repro.exec selftest`` use to prove all of it keeps results
bit-identical.

See benchmarks/README.md ("Resilience") for the user-facing knobs.
"""

from __future__ import annotations

from repro.exec.faults import FAULTS_ENV, FaultSpec, TransientFault
from repro.exec.journal import SweepJournal, sweep_fingerprint
from repro.exec.policy import FaultPolicy, SweepError, backoff_delay
from repro.exec.pool import ForkServerPool, Job, Pool, SerialPool

__all__ = [
    "FAULTS_ENV",
    "FaultPolicy",
    "FaultSpec",
    "ForkServerPool",
    "Job",
    "Pool",
    "SerialPool",
    "SweepError",
    "SweepJournal",
    "TransientFault",
    "backoff_delay",
    "sweep_fingerprint",
]
